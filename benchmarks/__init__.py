"""Benchmark package regenerating the paper's figures (see conftest.py)."""
