"""Shared fixtures for the benchmark suite.

Every benchmark runs one (or a few) simulated experiments and records the
*simulated* throughput/latency in ``benchmark.extra_info`` — that is the
number to compare against the paper's figures.  The wall-clock time measured
by pytest-benchmark is the cost of running the simulation itself.

Set ``REPRO_BENCH_FULL=1`` to run the full-resolution sweeps (slower, closer
to the paper's exact methodology); the default keeps the whole suite to a few
minutes.

Everything recorded through :func:`record_metrics` / :func:`record_rows` is
also written as machine-readable JSON (``BENCH_results.json`` at the repo
root, or ``$REPRO_BENCH_JSON`` if set) when the session ends, so CI can
archive perf trajectories as artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List

import pytest

from repro.bench.runner import BenchmarkSettings

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")

_JSON_PATH = Path(
    os.environ.get("REPRO_BENCH_JSON", Path(__file__).resolve().parents[1] / "BENCH_results.json")
)
_ROWS: List[dict] = []


@pytest.fixture(scope="session")
def settings() -> BenchmarkSettings:
    """Benchmark settings: quick by default, full with REPRO_BENCH_FULL=1."""
    if FULL:
        return BenchmarkSettings(duration=3.0, drain=5.0, quick=False)
    return BenchmarkSettings(duration=1.0, drain=2.0, quick=True)


def record_rows(rows: Iterable[dict]) -> None:
    """Queue machine-readable result rows for the end-of-session JSON dump."""
    _ROWS.extend(dict(row) for row in rows)


def record_metrics(benchmark, metrics) -> None:
    """Stash a RunMetrics summary into the benchmark's extra_info (and the JSON)."""
    benchmark.extra_info["paradigm"] = metrics.paradigm
    benchmark.extra_info["offered_load_tps"] = round(metrics.offered_load, 1)
    benchmark.extra_info["throughput_tps"] = round(metrics.throughput, 1)
    benchmark.extra_info["latency_avg_ms"] = round(metrics.latency_avg * 1000.0, 2)
    benchmark.extra_info["abort_rate"] = round(metrics.abort_rate, 4)
    benchmark.extra_info["committed"] = metrics.committed
    benchmark.extra_info["aborted"] = metrics.aborted
    record_rows([{"benchmark": getattr(benchmark, "name", None), **benchmark.extra_info}])


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write everything recorded this session to ``BENCH_results.json``."""
    if not _ROWS:
        return
    _JSON_PATH.write_text(json.dumps(_ROWS, indent=2) + "\n")
