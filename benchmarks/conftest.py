"""Shared fixtures for the benchmark suite.

Every benchmark runs one (or a few) simulated experiments and records the
*simulated* throughput/latency in ``benchmark.extra_info`` — that is the
number to compare against the paper's figures.  The wall-clock time measured
by pytest-benchmark is the cost of running the simulation itself.

Set ``REPRO_BENCH_FULL=1`` to run the full-resolution sweeps (slower, closer
to the paper's exact methodology); the default keeps the whole suite to a few
minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import BenchmarkSettings

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")


@pytest.fixture(scope="session")
def settings() -> BenchmarkSettings:
    """Benchmark settings: quick by default, full with REPRO_BENCH_FULL=1."""
    if FULL:
        return BenchmarkSettings(duration=3.0, drain=5.0, quick=False)
    return BenchmarkSettings(duration=1.0, drain=2.0, quick=True)


def record_metrics(benchmark, metrics) -> None:
    """Stash a RunMetrics summary into the benchmark's extra_info."""
    benchmark.extra_info["paradigm"] = metrics.paradigm
    benchmark.extra_info["offered_load_tps"] = round(metrics.offered_load, 1)
    benchmark.extra_info["throughput_tps"] = round(metrics.throughput, 1)
    benchmark.extra_info["latency_avg_ms"] = round(metrics.latency_avg * 1000.0, 2)
    benchmark.extra_info["abort_rate"] = round(metrics.abort_rate, 4)
    benchmark.extra_info["committed"] = metrics.committed
    benchmark.extra_info["aborted"] = metrics.aborted
