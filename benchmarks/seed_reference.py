"""Faithful copies of the seed execution hot path, shared by two consumers.

The equivalence tests (:mod:`tests.test_scheduler_equivalence`) prove the
countdown scheduler dispatches identically to this code, and the scaling
benchmark (:mod:`benchmarks.test_execution_scaling`) measures against it —
one copy, so the equivalence proof and the perf baseline can never
desynchronise.  Nothing here is collected as a test.

Kept outside ``src/`` on purpose: this is the *pre-overhaul* implementation
(poll-by-rescan scheduling, rebuild of ``X_e ∪ C_e`` per poll) preserved as
a reference, exactly like the networkx copy in
:mod:`benchmarks.test_graph_scaling`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.dependency_graph import DependencyGraph
from repro.core.transaction import Transaction, TransactionResult


class SeedGraphScheduler:
    """The seed's Algorithm 1: rescan the waiting list on every poll."""

    def __init__(self, graph: DependencyGraph, assigned: Iterable[str]) -> None:
        self._graph = graph
        assigned_set = set(assigned)
        self._waiting: List[str] = [t for t in graph.transaction_ids if t in assigned_set]
        self._executed: Set[str] = set()
        self._committed: Set[str] = set()
        self._dispatched: Set[str] = set()

    def is_done(self) -> bool:
        return not self._waiting

    def ready_transactions(self) -> List[Transaction]:
        done = self._executed | self._committed
        ready = []
        for tx_id in self._waiting:
            if tx_id in self._dispatched:
                continue
            if self._graph.predecessors(tx_id) <= done:
                ready.append(self._graph.transaction(tx_id))
        for tx in ready:
            self._dispatched.add(tx.tx_id)
        return ready

    def mark_executed(self, tx_id: str) -> None:
        self._executed.add(tx_id)
        if tx_id in self._waiting:
            self._waiting.remove(tx_id)

    def mark_committed(self, tx_id: str) -> None:
        if tx_id not in self._graph:
            return
        self._committed.add(tx_id)

    def blocked_on(self, tx_id: str) -> Set[str]:
        return self._graph.predecessors(tx_id) - (self._executed | self._committed)


def seed_execute_with_graph(
    graph: DependencyGraph, contract_runner, state: Dict[str, object]
) -> List[TransactionResult]:
    """The seed ``ExecutionEngine.execute_with_graph`` loop, verbatim."""
    scheduler = SeedGraphScheduler(graph, assigned=graph.transaction_ids)
    results: Dict[str, TransactionResult] = {}
    while not scheduler.is_done():
        wave = scheduler.ready_transactions()
        if not wave:
            raise AssertionError("seed engine deadlocked")
        wave_results = [contract_runner(tx, state) for tx in wave]
        for result in wave_results:
            if not result.is_abort:
                state.update(result.updates)
            results[result.tx_id] = result
            scheduler.mark_executed(result.tx_id)
            scheduler.mark_committed(result.tx_id)
    return [results[tx_id] for tx_id in graph.transaction_ids]
