"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Commit-message batching (Algorithm 2) vs naive one-commit-per-transaction.
* Single-version vs multi-version (MVCC) dependency-graph rules.
* Consensus protocol plugged into the OXII ordering service.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_metrics
from repro.bench.runner import run_point
from repro.common.config import SystemConfig
from repro.core.dependency_graph import GraphMode, build_dependency_graph
from repro.core.execution import CommitBatcher
from repro.core.transaction import TransactionResult
from repro.workload.generator import ConflictScope, WorkloadConfig, WorkloadGenerator


def _block(contention: float, scope: ConflictScope, count: int = 200):
    generator = WorkloadGenerator(WorkloadConfig(contention=contention, conflict_scope=scope, seed=3))
    return [tx.with_timestamp(i + 1) for i, tx in enumerate(generator.generate(count))]


class TestCommitBatchingAblation:
    @pytest.mark.parametrize("contention", [0.2, 0.8])
    def test_commit_batching_message_savings(self, benchmark, contention):
        """Algorithm 2 sends far fewer COMMIT multicasts than one per transaction."""
        txs = _block(contention, ConflictScope.CROSS_APPLICATION)
        graph = build_dependency_graph(txs)

        def run():
            batcher = CommitBatcher(graph, executor="e0", block_sequence=1)
            batched = 0
            for tx in graph.transactions():
                result = TransactionResult(tx_id=tx.tx_id, application=tx.application, updates={})
                if batcher.add_result(result) is not None:
                    batched += 1
            if batcher.flush() is not None:
                batched += 1
            return batched

        batched_messages = benchmark(run)
        naive_messages = len(txs)  # one commit multicast per transaction
        benchmark.extra_info["batched_commit_messages"] = batched_messages
        benchmark.extra_info["naive_commit_messages"] = naive_messages
        assert batched_messages <= naive_messages
        assert batched_messages < naive_messages * 0.9


class TestMvccGraphAblation:
    def test_mvcc_rules_produce_sparser_graphs(self, benchmark):
        """Multi-version rules drop write-write and read-write edges."""
        txs = _block(0.8, ConflictScope.WITHIN_APPLICATION)

        def run():
            single = build_dependency_graph(txs, mode=GraphMode.SINGLE_VERSION)
            multi = build_dependency_graph(txs, mode=GraphMode.MULTI_VERSION)
            return single, multi

        single, multi = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["single_version_edges"] = single.edge_count
        benchmark.extra_info["multi_version_edges"] = multi.edge_count
        benchmark.extra_info["single_version_critical_path"] = single.critical_path_length()
        benchmark.extra_info["multi_version_critical_path"] = multi.critical_path_length()
        assert multi.edge_count < single.edge_count
        assert multi.critical_path_length() <= single.critical_path_length()


class TestConsensusAblation:
    @pytest.mark.parametrize("protocol,orderers,faulty", [
        ("kafka", 3, 0),
        ("raft", 3, 1),
        ("pbft", 4, 1),
    ])
    def test_oxii_with_different_ordering_services(self, benchmark, settings, protocol, orderers, faulty):
        """OXII keeps working (and keeps its ordering) with any plugged consensus."""
        config = SystemConfig(
            num_orderers=orderers,
            consensus_protocol=protocol,
            max_faulty_orderers=faulty,
        )

        def run():
            return run_point(
                "OXII",
                offered_load=2000,
                contention=0.2,
                settings=settings,
                system_config=config,
            )

        metrics = benchmark.pedantic(run, rounds=1, iterations=1)
        record_metrics(benchmark, metrics)
        benchmark.extra_info["consensus"] = protocol
        assert metrics.committed > 0
        assert metrics.abort_rate == 0.0
