"""Agent-population benchmark: the hot-key abort storm (retry amplification).

Runs the ``examples/specs/agent_storm.json`` spec — a million modeled users in
two cohorts, one grinding a single hot key — and gates the qualitative story
the closed-loop engine exists to tell:

* Under XOV, naive instant retries amplify the hot-key MVCC abort storm into
  endorser saturation and collapse goodput; exponential-backoff agents defer
  the retry load past the congestion window and recover it.
* OXII orders-then-executes, so the same grinder population produces no MVCC
  aborts at all and goodput stays at the offered rate.

All numbers are *simulated* (deterministic for a fixed spec + seed), so the
gates compare exact machine-independent values; ``REPRO_BENCH_NO_GATE=1``
records without enforcing.  The recorded ``goodput_tps`` row feeds the
perf-regression gate (``benchmarks/baselines.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import SweepEngine
from repro.experiments.spec import ExperimentSpec

from benchmarks.conftest import record_rows

NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")
SPEC_PATH = Path(__file__).resolve().parents[1] / "examples" / "specs" / "agent_storm.json"


@pytest.fixture(scope="module")
def storm_rows():
    """Run the storm spec once; map scenario name -> flat result row."""
    spec = ExperimentSpec.from_dict(json.loads(SPEC_PATH.read_text()))
    start = time.perf_counter()
    result = SweepEngine(parallel=False).run(spec)
    wall = time.perf_counter() - start
    rows = {row.point.scenario: row.as_dict() for row in result.rows}
    record_rows(
        {
            "benchmark": "agent_suite",
            "scenario": name,
            "goodput_tps": round(row["throughput"], 1),
            "aborted": row["aborted"],
            "retries": row["population_retries"],
            "population_users": row["population_users"],
            "wall_s": round(wall, 2),
        }
        for name, row in rows.items()
    )
    return rows


def test_storm_commits_everywhere(storm_rows):
    """Every scenario of the storm commits transactions (smoke floor)."""
    for name, row in storm_rows.items():
        assert row["committed"] > 0, f"{name} committed nothing"
        assert row["population_users"] == 1_000_000.0, name


def test_naive_retry_storms_the_hot_key(storm_rows):
    """The grinder cohort actually produces an MVCC abort storm plus retries."""
    naive = storm_rows["xov-naive"]
    assert naive["abort_reasons"].get("mvcc_conflict", 0) > 0
    assert naive["population_retries"] > 0
    grinders = naive["population"]["grinders"]
    assert grinders["aborted"] > grinders["committed"], grinders


def test_backoff_recovers_goodput(storm_rows):
    """Exponential backoff beats naive instant retry under the same storm."""
    if NO_GATE:
        pytest.skip("REPRO_BENCH_NO_GATE=1")
    naive = storm_rows["xov-naive"]["throughput"]
    backoff = storm_rows["xov-backoff"]["throughput"]
    assert backoff >= naive * 1.15, (naive, backoff)


def test_oxii_immune_to_retry_amplification(storm_rows):
    """OXII (order-execute-in-order) sees no MVCC aborts from the same storm."""
    if NO_GATE:
        pytest.skip("REPRO_BENCH_NO_GATE=1")
    oxii = storm_rows["oxii-naive"]
    assert oxii["aborted"] == 0
    assert oxii["throughput"] >= storm_rows["xov-naive"]["throughput"] * 2.0
