"""End-to-end scaling gate: wall-clock cost of the contended cluster scenario.

The hot-path overhaul (memoised canonical bytes, trusted fault-free channels,
block-batched commit loops, the contract replay cache, incremental metrics)
is only worth its complexity if the *same simulated run* finishes in at most
half the pre-overhaul wall time.  This benchmark pins that claim: one
contended 4096-transaction cluster scenario per paradigm — PBFT with 7
orderers, 3 executors per application, 256-transaction blocks, 50% contention
— timed against the pre-overhaul walls frozen in :data:`PRE_PR_WALL_S`.

Unlike the other benchmarks (which gate machine-independent *simulated*
numbers), this one intrinsically measures wall clock.  The frozen baselines
were measured on the reference CI machine as the min over alternating
current/baseline rounds; the gate takes the min of :data:`REPS` repetitions
(arrival order and results are deterministic, so reps differ only by
scheduler noise) and the measured speedups (~2.6–3.3×) leave >25% headroom
above the 2× floor.  ``REPRO_BENCH_NO_GATE=1`` records without enforcing.

Rows land in ``BENCH_results.json`` as ``"benchmark": "e2e_scaling"`` for the
perf-regression gate (``benchmarks/baselines.json``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.common.config import BlockCutPolicy, SystemConfig
from repro.paradigms.run import execute_run
from repro.profiling import PHASES
from repro.workload.generator import WorkloadConfig

from benchmarks.conftest import record_rows

NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")

PARADIGMS = ("ox", "xov", "oxii")

#: Pre-overhaul wall seconds for :func:`run_contended_cluster`, measured at
#: commit a14ae26 (min over 4 alternating rounds on the reference machine).
PRE_PR_WALL_S = {"ox": 1.568, "xov": 2.815, "oxii": 4.264}

#: The tentpole acceptance floor: ≥2× end-to-end speedup per paradigm.
SPEEDUP_FLOOR = 2.0

#: Wall-clock repetitions per paradigm; the gate takes the min (the runs are
#: deterministic, so repetitions differ only by machine noise).
REPS = 3

#: 2048 tx/s for 2 simulated seconds — 4096 transactions per run.
OFFERED_LOAD = 2048.0
DURATION = 2.0


def cluster_config() -> SystemConfig:
    return SystemConfig(
        num_orderers=7,
        consensus_protocol="pbft",
        max_faulty_orderers=2,
        executors_per_application=3,
        block_cut=BlockCutPolicy(max_transactions=256, max_delay=0.2),
    )


def run_contended_cluster(paradigm: str, profile: bool = False):
    """The gate scenario: the exact run the frozen baselines were timed on."""
    return execute_run(
        paradigm,
        system_config=cluster_config(),
        workload_config=WorkloadConfig(seed=11, contention=0.5),
        offered_load=OFFERED_LOAD,
        duration=DURATION,
        profile=profile,
    )


@pytest.fixture(scope="module")
def e2e_rows():
    """paradigm -> (min wall seconds over REPS, metrics of the last rep)."""
    rows = {}
    for paradigm in PARADIGMS:
        walls = []
        metrics = None
        for _ in range(REPS):
            start = time.perf_counter()
            metrics = run_contended_cluster(paradigm)
            walls.append(time.perf_counter() - start)
        wall = min(walls)
        rows[paradigm] = (wall, metrics)
        record_rows(
            [
                {
                    "benchmark": "e2e_scaling",
                    "paradigm": paradigm,
                    "offered_load_tps": OFFERED_LOAD,
                    "transactions": int(OFFERED_LOAD * DURATION),
                    "throughput_tps": round(metrics.throughput, 1),
                    "committed": metrics.committed,
                    "aborted": metrics.aborted,
                    "wall_s": round(wall, 3),
                    "pre_pr_wall_s": PRE_PR_WALL_S[paradigm],
                    "speedup": round(PRE_PR_WALL_S[paradigm] / wall, 2),
                }
            ]
        )
    return rows


def test_every_paradigm_commits(e2e_rows):
    """Sanity before timing claims: each paradigm commits real work."""
    for paradigm, (_, metrics) in e2e_rows.items():
        assert metrics.committed > 0, paradigm
        assert metrics.throughput > 0, paradigm


def test_end_to_end_speedup_floor(e2e_rows):
    """The tentpole gate: ≥2× wall-clock speedup per paradigm over the
    pre-overhaul baselines (measured ~3.0× OX, ~2.6× XOV, ~3.3× OXII)."""
    if NO_GATE:
        pytest.skip("REPRO_BENCH_NO_GATE=1")
    speedups = {
        paradigm: PRE_PR_WALL_S[paradigm] / wall
        for paradigm, (wall, _) in e2e_rows.items()
    }
    for paradigm, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (paradigm, speedups)


def test_profiled_run_reports_phase_times():
    """With profiling on, the same scenario (shortened) reports a per-phase
    wall breakdown covering the known phases — and nothing else."""
    metrics = execute_run(
        "ox",
        system_config=cluster_config(),
        workload_config=WorkloadConfig(seed=11, contention=0.5),
        offered_load=OFFERED_LOAD,
        duration=0.5,
        profile=True,
    )
    phase_times = metrics.extra.get("phase_times")
    assert isinstance(phase_times, dict) and phase_times
    assert set(phase_times) <= set(PHASES) | {"total"}
    assert all(v >= 0.0 for v in phase_times.values())
    assert phase_times.get("total", 0.0) > 0.0
