"""Execution hot-path benchmark: sparse frontier graphs + wave execution vs seed.

PR 1 made dependency-graph *construction* scale and PR 4 made scheduling
O(V+E); this benchmark tracks the remaining hot loop — building the graph a
block executes against and driving a contract runner through it — plus the
XOV endorsement loop against state snapshots.  Faithful copies of the seed
implementations are kept here (not in ``src/``): the poll-by-rescan
``GraphScheduler`` whose every poll rebuilt ``X_e ∪ C_e`` and re-derived
predecessor sets, and the full-dict-copy ``WorldState.snapshot``.

Since PR 6 the timed path is the *sparse* frontier-chain construction
(``GraphConstruction.SPARSE``) feeding the wave-stratified engine; each row
also executes the same block on the all-pairs graph and asserts both runs
produce identical results, state and wave profile — the sparse-vs-all-pairs
equivalence obligation.  ``edges`` is the sparse edge count;
``all_pairs_edges`` records the quadratic count it replaces (4,524,210 →
~17k at 4096/high).

Block sizes sweep 256 → 4096 under the same three Zipfian contention profiles
as :mod:`benchmarks.test_graph_scaling`.  The seed engine is quadratic in
block size on contended profiles, so by default it is timed up to
``LEGACY_EXEC_CAPS`` per profile (the ``high`` profile's seed engine needs
~3.5 minutes at 4096); rows above the cap carry ``seed_skipped: true``
instead of ``seed_ms``/``speedup`` so downstream baseline tooling can rely on
the marker rather than KeyError on absent columns.  Set ``REPRO_BENCH_FULL=1``
to time (and equivalence-check) the seed engine everywhere.

Rows land in ``BENCH_results.json`` (via the shared conftest recorder); the
``perf-regression`` CI job diffs them against ``benchmarks/baselines.json``
(see ``tools/perf_gate.py``).  In-test CI gates: >=2x over the seed engine on
the contended profiles at the largest seed-timed size, >=2x on endorsement
snapshots, and the PR-6 absolute floor of >=34 blocks/s at 4096/high
(measured here: ~58, vs 3.4 on the all-pairs countdown path this replaces).
``REPRO_BENCH_NO_GATE=1`` records timings without enforcing floors (the
tier-1 correctness matrix sets it so timing noise on a shared runner cannot
fail a correctness job).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import FULL, record_rows
from benchmarks.seed_reference import seed_execute_with_graph
from benchmarks.test_graph_scaling import CONTENTION_PROFILES, make_block
from repro.core.dependency_graph import GraphConstruction, build_dependency_graph
from repro.core.execution import ExecutionEngine
from repro.core.transaction import Transaction, TransactionResult
from repro.ledger.state import StateSnapshot, VersionedValue, WorldState

BLOCK_SIZES = (256, 1024, 4096)
#: Largest block size the seed engine is timed at per profile (it is
#: quadratic under contention); REPRO_BENCH_FULL=1 lifts the caps.
LEGACY_EXEC_CAPS = {"low": 4096, "medium": 4096, "high": 1024}
NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")
#: CI speedup floor over the seed engine on the contended profiles.
GATE_FLOOR = 2.0
#: PR-6 absolute floor at 4096/high: >=10x the 3.4 blocks/s the all-pairs
#: countdown path managed (measured with sparse graphs: ~58 blocks/s).
SPARSE_GATE_BLOCKS_PER_S = 34.0


# The seed implementations being measured against live in
# benchmarks/seed_reference.py, shared with tests/test_scheduler_equivalence.py
# so the equivalence proof and this perf baseline are the same code.


def contract_runner(tx: Transaction, state) -> TransactionResult:
    """A cheap deterministic contract, so scheduling overhead dominates."""
    updates = {k: state.get(k, 0) + 1 for k in tx.write_set}
    return TransactionResult(tx_id=tx.tx_id, application=tx.application, updates=updates)


# ----------------------------------------------------------- block execution
@pytest.mark.parametrize("profile", sorted(CONTENTION_PROFILES))
@pytest.mark.parametrize("size", BLOCK_SIZES)
def test_block_execution_scaling(size: int, profile: str) -> None:
    """Time sparse-graph whole-block execution; prove it matches all-pairs + seed."""
    txs = make_block(size, profile)
    all_pairs = build_dependency_graph(txs)

    start = time.perf_counter()
    sparse = build_dependency_graph(txs, construction=GraphConstruction.SPARSE)
    sparse_build_s = time.perf_counter() - start

    new_state: Dict[str, object] = {}
    start = time.perf_counter()
    results = ExecutionEngine(contract_runner, new_state).execute_with_graph(sparse)
    new_s = time.perf_counter() - start
    assert len(results) == size

    # Sparse-vs-all-pairs equivalence: identical waves, results and state.
    assert sparse.parallelism_profile() == all_pairs.parallelism_profile()
    ap_state: Dict[str, object] = {}
    start = time.perf_counter()
    ap_results = ExecutionEngine(contract_runner, ap_state).execute_with_graph(all_pairs)
    all_pairs_s = time.perf_counter() - start
    assert ap_state == new_state, "sparse and all-pairs executions diverged"
    assert ap_results == results

    row = {
        "benchmark": "execution_scaling",
        "block_size": size,
        "contention": profile,
        "edges": sparse.edge_count,
        "all_pairs_edges": all_pairs.edge_count,
        "critical_path": sparse.critical_path_length(),
        "sparse_build_ms": round(sparse_build_s * 1e3, 4),
        "countdown_ms": round(new_s * 1e3, 4),
        "countdown_blocks_per_s": round(1.0 / new_s, 1) if new_s else None,
        "all_pairs_ms": round(all_pairs_s * 1e3, 4),
    }
    if size <= LEGACY_EXEC_CAPS[profile] or FULL:
        seed_state: Dict[str, object] = {}
        start = time.perf_counter()
        seed_execute_with_graph(all_pairs, contract_runner, seed_state)
        seed_s = time.perf_counter() - start
        assert seed_state == new_state, "seed and sparse engines diverged"
        row["seed_ms"] = round(seed_s * 1e3, 4)
        row["speedup"] = round(seed_s / new_s, 2)
    else:
        # Explicit marker instead of silently absent seed_ms/speedup columns
        # (the seed numbers are recorded under REPRO_BENCH_FULL=1).
        row["seed_skipped"] = True
    record_rows([row])

    if size == 4096 and profile == "high" and not NO_GATE:
        assert row["countdown_blocks_per_s"] >= SPARSE_GATE_BLOCKS_PER_S, (
            f"only {row['countdown_blocks_per_s']} blocks/s at {size}/{profile} "
            f"(floor {SPARSE_GATE_BLOCKS_PER_S})"
        )
    gate_size = LEGACY_EXEC_CAPS[profile] if not FULL else max(BLOCK_SIZES)
    if size == gate_size and profile in ("medium", "high") and not NO_GATE:
        # CI floor: the sparse wave engine must beat the seed engine by >=2x
        # on the contended profiles at the largest size the seed is timed at.
        assert row["speedup"] >= GATE_FLOOR, f"only {row['speedup']}x at {size}/{profile}"


# ------------------------------------------------------------- endorsements
STATE_KEYS = 20_000
ENDORSEMENTS = 512
WRITES_PER_BLOCK = 32
ENDORSEMENTS_PER_BLOCK = 64


def _endorse(snapshot, keys: List[str]) -> Dict[str, int]:
    """One endorsement: speculative read + read-version collection."""
    for key in keys:
        snapshot.get_value(key)
    return snapshot.read_versions(keys)


def test_endorsement_snapshot_throughput() -> None:
    """XOV endorsement loop: COW snapshots vs the seed's per-proposal copy."""
    initial = {f"k{i}": i for i in range(STATE_KEYS)}
    read_keys = [[f"k{(17 * i + j) % STATE_KEYS}" for j in range(4)] for i in range(ENDORSEMENTS)]
    block_writes = [
        {f"k{(13 * b + j) % STATE_KEYS}": b * 1000 + j for j in range(WRITES_PER_BLOCK)}
        for b in range(ENDORSEMENTS // ENDORSEMENTS_PER_BLOCK)
    ]

    # Seed path: every snapshot copies the whole entry dict (StateSnapshot's
    # public constructor preserves exactly that behaviour).
    seed_data = {key: VersionedValue(value=value, version=0) for key, value in initial.items()}
    start = time.perf_counter()
    for i, keys in enumerate(read_keys):
        snapshot = StateSnapshot(seed_data)
        _endorse(snapshot, keys)
        if (i + 1) % ENDORSEMENTS_PER_BLOCK == 0:
            for key, value in block_writes[i // ENDORSEMENTS_PER_BLOCK].items():
                current = seed_data.get(key)
                version = current.version + 1 if current is not None else 0
                seed_data[key] = VersionedValue(value=value, version=version)
    seed_s = time.perf_counter() - start

    # COW path: snapshot() is O(1); the state re-copies once per block commit.
    state = WorldState(initial)
    start = time.perf_counter()
    last_versions: Dict[str, int] = {}
    for i, keys in enumerate(read_keys):
        snapshot = state.snapshot()
        last_versions = _endorse(snapshot, keys)
        if (i + 1) % ENDORSEMENTS_PER_BLOCK == 0:
            state.apply_updates(block_writes[i // ENDORSEMENTS_PER_BLOCK])
    cow_s = time.perf_counter() - start
    assert last_versions  # the loop really endorsed

    # Both paths must observe identical final state content.
    assert {k: v.value for k, v in seed_data.items()} == state.as_dict()

    speedup = seed_s / cow_s if cow_s else float("inf")
    record_rows(
        [
            {
                "benchmark": "endorsement_snapshots",
                "state_keys": STATE_KEYS,
                "endorsements": ENDORSEMENTS,
                "seed_ms": round(seed_s * 1e3, 2),
                "cow_ms": round(cow_s * 1e3, 2),
                "seed_endorsements_per_s": round(ENDORSEMENTS / seed_s, 1),
                "cow_endorsements_per_s": round(ENDORSEMENTS / cow_s, 1),
                "speedup": round(speedup, 2),
            }
        ]
    )
    if not NO_GATE:
        assert speedup >= GATE_FLOOR, f"endorsement snapshots only {speedup:.2f}x faster"
