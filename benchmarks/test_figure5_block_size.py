"""Figure 5 — throughput/latency vs block size (no-contention workload).

Each benchmark runs one paradigm at one block size at a load near that
paradigm's saturation point and records the simulated throughput and latency.
The OXII series should rise and then fall with a peak around ~200 transactions
per block; OX stays flat; XOV peaks around ~100.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_metrics
from repro.bench.runner import run_point
from repro.common.config import SystemConfig

BLOCK_SIZES = (50, 200, 800)
#: Offered load used to probe each paradigm near its ceiling.
PROBE_LOAD = {"OX": 1100, "XOV": 2000, "OXII": 7000}


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
@pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
def test_figure5_block_size(benchmark, settings, paradigm, block_size):
    config = SystemConfig().with_block_size(block_size)

    def run():
        return run_point(
            paradigm,
            offered_load=PROBE_LOAD[paradigm],
            contention=0.0,
            settings=settings,
            system_config=config,
            workload_config=None,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    benchmark.extra_info["block_size"] = block_size
    assert metrics.committed > 0


def test_figure5_oxii_peak_is_at_moderate_block_size(benchmark, settings):
    """OXII's throughput at a 200-transaction block beats both a tiny and a huge block."""

    def run():
        results = {}
        for block_size in (20, 200, 1000):
            config = SystemConfig().with_block_size(block_size)
            results[block_size] = run_point(
                "OXII",
                offered_load=7000,
                contention=0.0,
                settings=settings,
                system_config=config,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for block_size, metrics in results.items():
        benchmark.extra_info[f"throughput_at_{block_size}"] = round(metrics.throughput, 1)
    assert results[200].throughput > results[20].throughput
    assert results[200].throughput > results[1000].throughput
