"""Figure 6 — performance of OX / XOV / OXII / OXII* under contention.

One benchmark per (contention level, series).  Each probes the series at a
load near its no-contention ceiling and records the simulated committed
throughput — the quantity Figure 6 plots on its x axis.  The final benchmark
asserts the paper's qualitative ordering at high contention: OXII beats OX,
which beats XOV; and XOV collapses relative to its no-contention peak.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_metrics
from repro.bench.runner import run_point
from repro.workload.generator import ConflictScope

CONTENTION_LEVELS = (0.0, 0.2, 0.8, 1.0)
SERIES = (
    ("OX", "OX", ConflictScope.WITHIN_APPLICATION, 1100),
    ("XOV", "XOV", ConflictScope.WITHIN_APPLICATION, 2000),
    ("OXII", "OXII", ConflictScope.WITHIN_APPLICATION, 6500),
    ("OXII-star", "OXII", ConflictScope.CROSS_APPLICATION, 6500),
)


@pytest.mark.parametrize("contention", CONTENTION_LEVELS)
@pytest.mark.parametrize("label,paradigm,scope,load", SERIES, ids=[s[0] for s in SERIES])
def test_figure6_contention(benchmark, settings, contention, label, paradigm, scope, load):
    if label == "OXII-star" and contention == 0.0:
        pytest.skip("no cross-application contention exists in a no-contention workload")

    def run():
        return run_point(
            paradigm,
            offered_load=load,
            contention=contention,
            conflict_scope=scope,
            settings=settings,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    benchmark.extra_info["series"] = label
    benchmark.extra_info["contention"] = contention
    assert metrics.committed + metrics.aborted > 0


def test_figure6_qualitative_ordering_at_high_contention(benchmark, settings):
    """At 80% contention: OXII > OX > XOV, and XOV collapses vs its 0% peak."""

    def run():
        high = {
            label: run_point(paradigm, offered_load=load, contention=0.8, conflict_scope=scope,
                             settings=settings)
            for label, paradigm, scope, load in SERIES
            if label != "OXII-star"
        }
        xov_baseline = run_point("XOV", offered_load=2000, contention=0.0, settings=settings)
        return high, xov_baseline

    (high, xov_baseline) = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, metrics in high.items():
        benchmark.extra_info[f"throughput_{label}"] = round(metrics.throughput, 1)
    benchmark.extra_info["throughput_XOV_no_contention"] = round(xov_baseline.throughput, 1)
    assert high["OXII"].throughput > high["OX"].throughput > high["XOV"].throughput
    assert high["XOV"].throughput < 0.5 * xov_baseline.throughput
    # OX never aborts and OXII never aborts; XOV loses most transactions to aborts.
    assert high["OX"].abort_rate == 0.0
    assert high["OXII"].abort_rate == 0.0
    assert high["XOV"].abort_rate > 0.5
