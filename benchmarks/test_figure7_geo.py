"""Figure 7 — scalability over multiple data centers.

One benchmark per (moved node group, paradigm): the group is placed in the far
data center (100 ms one-way WAN latency) and the latency/throughput point at a
moderate load is recorded.  The summary benchmark asserts the paper's
qualitative claims: moving clients hurts XOV more than OXII, and moving the
non-executor peers leaves OXII untouched while XOV degrades.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_metrics
from repro.bench.figure7 import GROUPS
from repro.bench.runner import run_point
from repro.common.config import SystemConfig

PROBE_LOAD = 700.0


def _config(far_group=None):
    config = SystemConfig(num_non_executors=2)
    if far_group is not None:
        config = config.with_far_groups([far_group])
    return config


@pytest.mark.parametrize("group", list(GROUPS))
@pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
def test_figure7_moved_group(benchmark, settings, group, paradigm):
    if paradigm not in GROUPS[group]:
        pytest.skip("the paper omits OX from the executor / non-executor experiments")

    def run():
        return run_point(
            paradigm,
            offered_load=PROBE_LOAD,
            contention=0.0,
            settings=settings,
            system_config=_config(group),
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    benchmark.extra_info["moved_group"] = group
    assert metrics.committed > 0


def test_figure7_qualitative_claims(benchmark, settings):
    """Clients far: XOV hurt most.  Non-executors far: OXII unaffected, XOV affected."""

    def run():
        baseline = {
            paradigm: run_point(paradigm, offered_load=PROBE_LOAD, contention=0.0,
                                settings=settings, system_config=_config())
            for paradigm in ("XOV", "OXII")
        }
        clients_far = {
            paradigm: run_point(paradigm, offered_load=PROBE_LOAD, contention=0.0,
                                settings=settings, system_config=_config("clients"))
            for paradigm in ("XOV", "OXII")
        }
        nonexec_far = {
            paradigm: run_point(paradigm, offered_load=PROBE_LOAD, contention=0.0,
                                settings=settings, system_config=_config("non_executors"))
            for paradigm in ("XOV", "OXII")
        }
        return baseline, clients_far, nonexec_far

    baseline, clients_far, nonexec_far = benchmark.pedantic(run, rounds=1, iterations=1)
    xov_client_penalty = clients_far["XOV"].latency_avg - baseline["XOV"].latency_avg
    oxii_client_penalty = clients_far["OXII"].latency_avg - baseline["OXII"].latency_avg
    benchmark.extra_info["xov_client_penalty_ms"] = round(xov_client_penalty * 1000, 1)
    benchmark.extra_info["oxii_client_penalty_ms"] = round(oxii_client_penalty * 1000, 1)
    assert xov_client_penalty > oxii_client_penalty

    oxii_nonexec_penalty = nonexec_far["OXII"].latency_avg - baseline["OXII"].latency_avg
    xov_nonexec_penalty = nonexec_far["XOV"].latency_avg - baseline["XOV"].latency_avg
    benchmark.extra_info["oxii_nonexec_penalty_ms"] = round(oxii_nonexec_penalty * 1000, 1)
    benchmark.extra_info["xov_nonexec_penalty_ms"] = round(xov_nonexec_penalty * 1000, 1)
    assert abs(oxii_nonexec_penalty) < 0.02  # OXII unaffected (within noise)
    assert xov_nonexec_penalty > 0.05  # XOV pays roughly a WAN crossing
