"""Micro-benchmark: the native adjacency-list graph core vs the seed's networkx.

The orderer builds a dependency graph for every block and the executors
schedule off its topological structure, so ``build + topological sort +
critical path`` is the hottest code path in the system.  This benchmark sweeps
block sizes 64 → 4096 under three Zipfian contention profiles and compares the
native :mod:`repro.core.graph_core`-backed implementation against a faithful
copy of the seed's networkx-backed one (kept here, not in ``src/``, precisely
because networkx is no longer a runtime dependency).

Results are written to ``BENCH_graph.json`` at the repository root so CI can
archive the perf trajectory; the 1024-transaction rows carry the speedup the
acceptance gate checks (the native core must be at least 3x faster).

Set ``REPRO_BENCH_FULL=1`` to also time the legacy implementation at 4096
transactions (slow) — by default the largest size only times the native core
and the comparison rows stop at 1024.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import FULL, record_rows
from repro.core.dependency_graph import GraphMode, build_dependency_graph
from repro.core.transaction import ReadWriteSet, Transaction
from repro.workload.zipfian import ZipfianSampler

#: (record population, zipf exponent, reads per tx, writes per tx)
CONTENTION_PROFILES: Dict[str, Tuple[int, float, int, int]] = {
    "low": (10_000, 0.0, 2, 2),
    "medium": (1_024, 0.8, 2, 2),
    "high": (128, 1.1, 2, 2),
}

BLOCK_SIZES = (64, 256, 1024, 4096)
#: The legacy networkx build is only timed up to this size unless REPRO_BENCH_FULL=1.
LEGACY_SIZE_CAP = 1024
#: REPRO_BENCH_NO_GATE=1 records timings without enforcing the speedup floor —
#: set by the correctness CI matrix so timing noise cannot fail a tier-1 job
#: (the dedicated bench job runs with the gate on).
NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_graph.json"
_ROWS: List[dict] = []


def make_block(size: int, profile: str, seed: int = 7) -> List[Transaction]:
    """A block of ``size`` transactions with Zipfian record contention."""
    population, exponent, reads, writes = CONTENTION_PROFILES[profile]
    sampler = ZipfianSampler(population=population, exponent=exponent, seed=seed)
    txs: List[Transaction] = []
    for i in range(size):
        read_keys = {f"r{sampler.sample()}" for _ in range(reads)}
        write_keys = {f"r{sampler.sample()}" for _ in range(writes)}
        txs.append(
            Transaction(
                tx_id=f"tx{i}",
                application=f"app-{i % 4}",
                rw_set=ReadWriteSet.build(reads=read_keys, writes=write_keys),
                timestamp=i + 1,
            )
        )
    return txs


def native_build_and_sort(txs: List[Transaction]) -> Tuple[int, int]:
    """Build the graph with the adjacency-list core and walk its structure."""
    graph = build_dependency_graph(txs, mode=GraphMode.SINGLE_VERSION)
    order = graph.topological_order()
    assert len(order) == len(txs)
    return graph.edge_count, graph.critical_path_length()


def legacy_build_and_sort(txs: List[Transaction]) -> Tuple[int, int]:
    """The seed implementation: per-record pair finding on a networkx DiGraph,
    acyclicity check, lexicographic topological sort and longest path."""
    import networkx as nx

    ordered = sorted(txs, key=lambda t: t.timestamp)
    readers: Dict[str, List[Transaction]] = {}
    writers: Dict[str, List[Transaction]] = {}
    for tx in ordered:
        for key in tx.read_set:
            readers.setdefault(key, []).append(tx)
        for key in tx.write_set:
            writers.setdefault(key, []).append(tx)
    pairs: Dict[Tuple[str, str], set] = {}
    for key, key_writers in writers.items():
        key_readers = readers.get(key, [])
        for i, writer in enumerate(key_writers):
            for later_writer in key_writers[i + 1 :]:
                pairs.setdefault((writer.tx_id, later_writer.tx_id), set()).add("ww")
            for reader in key_readers:
                if reader.tx_id == writer.tx_id:
                    continue
                if reader.timestamp < writer.timestamp:
                    pairs.setdefault((reader.tx_id, writer.tx_id), set()).add("rw")
                elif reader.timestamp > writer.timestamp:
                    pairs.setdefault((writer.tx_id, reader.tx_id), set()).add("wr")
    graph = nx.DiGraph()
    timestamps = {}
    for tx in ordered:
        graph.add_node(tx.tx_id)
        timestamps[tx.tx_id] = tx.timestamp
    for (source, target), kinds in pairs.items():
        graph.add_edge(source, target, kinds=tuple(sorted(kinds)))
    if not nx.is_directed_acyclic_graph(graph):
        raise AssertionError("cycle")
    order = list(nx.lexicographical_topological_sort(graph, key=timestamps.__getitem__))
    assert len(order) == len(txs)
    critical = nx.dag_longest_path_length(graph) + 1 if ordered else 0
    return graph.number_of_edges(), critical


def _best_of(fn, txs, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(txs)
        best = min(best, time.perf_counter() - start)
    return best


def _repeats_for(size: int) -> int:
    return max(2, 4096 // size) if size <= LEGACY_SIZE_CAP else 1


@pytest.mark.parametrize("profile", sorted(CONTENTION_PROFILES))
@pytest.mark.parametrize("size", BLOCK_SIZES)
def test_graph_scaling(size: int, profile: str) -> None:
    """Time native build+sort (and the legacy networkx one where affordable)."""
    txs = make_block(size, profile)
    repeats = _repeats_for(size)
    native_edges, native_critical = native_build_and_sort(txs)
    native_s = _best_of(native_build_and_sort, txs, repeats)
    row = {
        "benchmark": "graph_scaling",
        "block_size": size,
        "contention": profile,
        "edges": native_edges,
        "critical_path": native_critical,
        "native_ms": round(native_s * 1e3, 4),
        "native_blocks_per_s": round(1.0 / native_s, 1) if native_s else None,
    }
    time_legacy = size <= LEGACY_SIZE_CAP or FULL
    if time_legacy:
        networkx = pytest.importorskip("networkx")
        assert networkx is not None
        legacy_edges, legacy_critical = legacy_build_and_sort(txs)
        assert legacy_edges == native_edges
        assert legacy_critical == native_critical
        legacy_s = _best_of(legacy_build_and_sort, txs, repeats)
        row["legacy_ms"] = round(legacy_s * 1e3, 4)
        row["speedup"] = round(legacy_s / native_s, 2)
    _ROWS.append(row)
    record_rows([row])
    _RESULTS_PATH.write_text(json.dumps(_ROWS, indent=2) + "\n")
    if size == 1024 and not NO_GATE:
        # The acceptance gate: the native core must beat the seed's networkx
        # implementation by at least 3x on 1024-transaction blocks.  The
        # nearly conflict-free profile is gated a notch lower (it measures
        # fixed per-transaction costs, ~3.5x here but noisier on shared CI).
        floor = 2.0 if profile == "low" else 3.0
        assert row["speedup"] >= floor, f"only {row['speedup']}x at {size}/{profile}"
