"""Micro-benchmarks of the hot code paths (real wall-clock measurements).

Unlike the figure benchmarks — which report *simulated* throughput — these
measure the Python implementation itself: dependency-graph construction,
block sealing and the thread-pool executor.
"""

from __future__ import annotations

import pytest

from repro.core.block import Block
from repro.core.dependency_graph import build_dependency_graph
from repro.core.parallel_executor import ParallelGraphExecutor
from repro.core.transaction import TransactionResult
from repro.crypto.merkle import MerkleTree
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _block_txs(count: int, contention: float):
    generator = WorkloadGenerator(WorkloadConfig(contention=contention, seed=11))
    return [tx.with_timestamp(i + 1) for i, tx in enumerate(generator.generate(count))]


@pytest.mark.parametrize("block_size", [100, 400])
@pytest.mark.parametrize("contention", [0.0, 0.8])
def test_dependency_graph_construction(benchmark, block_size, contention):
    txs = _block_txs(block_size, contention)
    graph = benchmark(build_dependency_graph, txs)
    assert len(graph) == block_size


@pytest.mark.parametrize("block_size", [200])
def test_block_sealing_with_merkle_root(benchmark, block_size):
    txs = _block_txs(block_size, 0.0)

    def seal():
        return Block.create(sequence=1, transactions=txs, previous_hash="0" * 64)

    block = benchmark(seal)
    assert block.verify_merkle_root()


def test_merkle_proof_generation(benchmark):
    tree = MerkleTree([f"tx-{i}" for i in range(512)])
    proof = benchmark(tree.proof, 255)
    assert MerkleTree.verify_proof("tx-255", proof, tree.root)


def test_thread_pool_graph_execution(benchmark):
    txs = _block_txs(64, 0.2)
    graph = build_dependency_graph(txs)

    def runner(tx, state):
        return TransactionResult(tx_id=tx.tx_id, application=tx.application,
                                 updates={key: 1 for key in tx.write_set})

    def run():
        return ParallelGraphExecutor(runner, max_workers=8).execute(graph, {})

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == 64
