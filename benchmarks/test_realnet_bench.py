"""First *real* throughput numbers: the asyncio backends at honest pacing.

Every other benchmark in this suite records simulated throughput — the
number to compare against the paper.  This one runs the same deployment on
the wall clock (``speed=1.0``: one simulated second takes one real second,
and all I/O is real asyncio machinery), so the recorded
``wall_clock_throughput`` is what this host actually sustains end-to-end.

Rows land in ``BENCH_results.json`` as ``"benchmark": "realnet"`` with the
backend name attached; they are informational (no gate) because wall-clock
numbers are machine-dependent by definition — the parity suite in
``tests/test_realnet_parity.py`` is what gates correctness.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench.runner import BenchmarkSettings, run_point
from repro.network.message import Message

from benchmarks.conftest import record_rows

#: Offered load for the wall-clock point: modest enough that a CI container
#: keeps up at speed=1 without the event loop becoming the bottleneck.
OFFERED_LOAD = 200.0
DURATION = 1.0


def _frames_pickle() -> bool:
    """TCP frames carry slotted frozen dataclasses — picklable on >= 3.11."""
    try:
        pickle.loads(pickle.dumps(Message(kind="PROBE", body={})))
    except Exception:
        return False
    return True


@pytest.mark.parametrize(
    "backend",
    (
        "asyncio",
        pytest.param(
            "asyncio-tcp",
            marks=pytest.mark.skipif(
                not _frames_pickle(),
                reason="TCP frames pickle slotted frozen dataclasses (requires Python >= 3.11)",
            ),
        ),
    ),
)
def test_realnet_wall_clock_point(backend) -> None:
    settings = BenchmarkSettings(
        duration=DURATION, drain=10.0, quick=True, backend=backend, realtime_speed=1.0
    )
    metrics = run_point("OX", offered_load=OFFERED_LOAD, settings=settings)
    assert metrics.committed > 0
    assert metrics.extra["backend"] == backend
    wall = metrics.extra["wall_clock_seconds"]
    assert wall > 0
    record_rows(
        [
            {
                "benchmark": "realnet",
                "backend": backend,
                "paradigm": metrics.paradigm,
                "offered_load_tps": round(metrics.offered_load, 1),
                "committed": metrics.committed,
                "aborted": metrics.aborted,
                "wall_clock_seconds": round(wall, 4),
                "wall_clock_throughput_tps": round(metrics.extra["wall_clock_throughput"], 1),
                "realtime_speed": 1.0,
            }
        ]
    )
