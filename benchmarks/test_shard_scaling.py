"""Shard-scaling benchmark: throughput vs shard count, and the spill ladder.

The sharding pitch (and the reason ParBlockchain-style designs shard at all)
is that N independent ordering services multiply ordering throughput by ~N as
long as cross-shard traffic stays rare.  This benchmark measures exactly
that, on the OX paradigm (whose single-shard bottleneck is the ordering
service) under the smallbank workload:

* **scaling sweep** — 1/2/4/8 shards at a saturating offered load with ~2%
  conflict spill; gates: ≥1.6× at 2 shards, ≥2.5× at 4, ≥4× at 8 over the
  1-shard baseline.
* **spill ladder** — 4 shards at 5%/15%/30% spill; the gate is *graceful*
  degradation (every 2PC round costs two ordered records per participant, so
  throughput must fall smoothly, not cliff).

All numbers are simulated and deterministic for a fixed seed, so the gates
compare machine-independent values; ``REPRO_BENCH_NO_GATE=1`` records without
enforcing.  Rows land in ``BENCH_results.json`` for the perf-regression gate
(``benchmarks/baselines.json``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.common.config import SystemConfig
from repro.paradigms.run import execute_run
from repro.workload.generator import WorkloadConfig

from benchmarks.conftest import record_rows

NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")

SHARD_COUNTS = (1, 2, 4, 8)
#: Saturates even the 8-shard cluster (one shard orders ~1000 tps).
SCALING_LOAD = 8000.0
SCALING_SPILL = 0.02
SPILL_LADDER = (0.05, 0.15, 0.30)
SPILL_LOAD = 3000.0
SPILL_SHARDS = 4


def run_sharded(num_shards: int, offered_load: float, spill: float, duration: float):
    system = SystemConfig().with_overrides(
        num_applications=8,
        seed=11,
        shards={"num_shards": num_shards},
        block_cut={"max_transactions": 50, "max_delay": 0.05},
    )
    workload = WorkloadConfig(
        num_applications=8, contention=0.0, seed=11
    ).with_overrides(conflict={"spill": spill})
    return execute_run(
        "OX",
        system_config=system,
        workload_config=workload,
        offered_load=offered_load,
        duration=duration,
        generator="smallbank",
        drain=20.0,
    )


@pytest.fixture(scope="module")
def scaling_rows(settings):
    """shard count -> metrics for the low-spill scaling sweep."""
    rows = {}
    for num_shards in SHARD_COUNTS:
        start = time.perf_counter()
        metrics = run_sharded(num_shards, SCALING_LOAD, SCALING_SPILL, settings.duration)
        wall = time.perf_counter() - start
        rows[num_shards] = metrics
        cross = metrics.extra.get("cross_shard", {})
        record_rows(
            [
                {
                    "benchmark": "shard_scaling",
                    "shards": num_shards,
                    "spill": SCALING_SPILL,
                    "offered_load_tps": SCALING_LOAD,
                    "throughput_tps": round(metrics.throughput, 1),
                    "committed": metrics.committed,
                    "aborted": metrics.aborted,
                    "cross_shard_submitted": cross.get("submitted", 0),
                    "cross_shard_committed": cross.get("committed", 0),
                    "wall_s": round(wall, 2),
                }
            ]
        )
    return rows


@pytest.fixture(scope="module")
def spill_rows(settings):
    """spill fraction -> metrics for the 4-shard spill ladder."""
    rows = {}
    for spill in SPILL_LADDER:
        start = time.perf_counter()
        metrics = run_sharded(SPILL_SHARDS, SPILL_LOAD, spill, settings.duration)
        wall = time.perf_counter() - start
        rows[spill] = metrics
        cross = metrics.extra.get("cross_shard", {})
        record_rows(
            [
                {
                    "benchmark": "shard_spill",
                    "shards": SPILL_SHARDS,
                    "spill": spill,
                    "offered_load_tps": SPILL_LOAD,
                    "throughput_tps": round(metrics.throughput, 1),
                    "committed": metrics.committed,
                    "aborted": metrics.aborted,
                    "cross_shard_submitted": cross.get("submitted", 0),
                    "cross_shard_committed": cross.get("committed", 0),
                    "wall_s": round(wall, 2),
                }
            ]
        )
    return rows


def test_every_scaling_point_commits(scaling_rows):
    for num_shards, metrics in scaling_rows.items():
        assert metrics.committed > 0, f"{num_shards} shards committed nothing"
        if num_shards > 1:
            assert metrics.extra["num_shards"] == num_shards
            assert metrics.extra["cross_shard"]["committed"] > 0, num_shards


def test_throughput_scales_with_shard_count(scaling_rows):
    """The acceptance gates: ≥1.6× at 2 shards, ≥2.5× at 4, ≥4× at 8
    (measured ~1.95×/3.8×/7.6× — per-shard ordering is the bottleneck)."""
    if NO_GATE:
        pytest.skip("REPRO_BENCH_NO_GATE=1")
    base = scaling_rows[1].throughput
    assert base > 0
    speedups = {n: scaling_rows[n].throughput / base for n in SHARD_COUNTS}
    assert speedups[2] >= 1.6, speedups
    assert speedups[4] >= 2.5, speedups
    assert speedups[8] >= 4.0, speedups


def test_spill_ladder_commits_cross_shard_everywhere(spill_rows):
    for spill, metrics in spill_rows.items():
        cross = metrics.extra["cross_shard"]
        assert cross["submitted"] > 0, spill
        assert cross["committed"] > 0, spill


def test_rising_spill_degrades_gracefully(spill_rows):
    """2PC overhead must shave throughput smoothly — no cliff, no collapse:
    30% cross-shard traffic keeps ≥half the 5% throughput (measured ~0.7×),
    and each ladder step loses at most half the previous step's throughput."""
    if NO_GATE:
        pytest.skip("REPRO_BENCH_NO_GATE=1")
    ladder = [spill_rows[spill].throughput for spill in SPILL_LADDER]
    assert ladder[-1] >= 0.5 * ladder[0], ladder
    for previous, current in zip(ladder, ladder[1:]):
        assert current >= 0.5 * previous, ladder
    # Aborts grow with spill but stay bounded (lock conflicts, not wedges).
    worst = spill_rows[SPILL_LADDER[-1]]
    assert worst.aborted / max(worst.committed + worst.aborted, 1) < 0.15
