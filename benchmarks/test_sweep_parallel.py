"""Sweep-engine scaling: parallel point execution vs serial, same results.

The sweep engine executes an experiment's point matrix across worker
processes; every point is an independent simulation, so the parallel run must
return bit-identical rows in the same order as a serial run — only faster.
This benchmark measures both on a multi-point quick sweep and enforces that
parallel beats serial wall-clock whenever the machine actually has cores to
parallelise over (skipped on single-core runners; REPRO_BENCH_NO_GATE=1
records timings without enforcing the floor).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import record_rows
from repro.experiments import ExperimentSpec, SweepEngine

NO_GATE = os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0", "false")
CORES = os.cpu_count() or 1

#: A 3-paradigm x 2-load quick sweep — 6 independent points, each sizeable
#: enough that process fan-out pays for itself.
SWEEP_SPEC = {
    "name": "sweep-parallel-bench",
    "duration": 1.0,
    "drain": 2.0,
    "scenarios": [
        {"name": "ox", "paradigm": "OX", "contention": 0.2, "loads": [700.0, 1100.0]},
        {"name": "xov", "paradigm": "XOV", "contention": 0.2, "loads": [1200.0, 2000.0]},
        {"name": "oxii", "paradigm": "OXII", "contention": 0.2, "loads": [3000.0, 6500.0]},
    ],
}


def test_sweep_parallel_matches_and_beats_serial() -> None:
    spec = ExperimentSpec.from_dict(SWEEP_SPEC)

    start = time.perf_counter()
    serial = SweepEngine(parallel=False).run(spec)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepEngine(workers=min(CORES, len(spec.expand()))).run(spec)
    parallel_s = time.perf_counter() - start

    # Determinism: parallel execution changes wall-clock time, nothing else.
    assert [r.metrics for r in serial.rows] == [r.metrics for r in parallel.rows]

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    record_rows(
        [
            {
                "benchmark": "sweep_parallel",
                "points": len(serial.rows),
                "cores": CORES,
                "serial_s": round(serial_s, 3),
                "parallel_s": round(parallel_s, 3),
                "speedup": round(speedup, 2),
            }
        ]
    )
    if NO_GATE:
        return
    if CORES < 2:
        pytest.skip("single-core machine: no parallelism to measure")
    assert speedup > 1.1, (
        f"parallel sweep ({parallel_s:.2f}s) should beat serial ({serial_s:.2f}s) "
        f"on {CORES} cores, got {speedup:.2f}x"
    )
