"""Workload suite — OX / XOV / OXII across the multi-application workloads.

One benchmark per (workload, skew level, paradigm).  Each runs the workload
through the declarative spec path (ScenarioSpec → SweepEngine) at a fixed
offered load and records the simulated committed throughput, so
BENCH_results.json carries a per-workload paradigm comparison at several skew
levels.  The simulation is deterministic, so the cross-paradigm assertions
are exact gates, not statistical ones.

Skew axes per workload:

* ``smallbank`` / ``kvstore`` — the Zipf exponent of key selection.
* ``supply_chain`` — the hot-asset fraction (fewer hot assets ⇒ the same
  chain-step budget concentrates on fewer, longer multi-hop chains).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_metrics
from repro.experiments import SweepEngine, single_point_spec

PARADIGMS = ("OX", "XOV", "OXII")

#: (generator, offered load, contention, skew axis) — skew axis is a list
#: of (skew label, workload override dict).
SUITE = (
    (
        "smallbank",
        800.0,
        0.2,
        [
            ("zipf-0.5", {"conflict": {"selection": "zipfian", "zipf_exponent": 0.5,
                                       "keyspace": 256, "write_set_size": 2}}),
            ("zipf-0.99", {"conflict": {"selection": "zipfian", "zipf_exponent": 0.99,
                                        "keyspace": 256, "write_set_size": 2}}),
            ("zipf-1.3", {"conflict": {"selection": "zipfian", "zipf_exponent": 1.3,
                                       "keyspace": 256, "write_set_size": 2}}),
        ],
    ),
    (
        "kvstore",
        1500.0,
        0.05,
        [
            ("zipf-0.5", {"conflict": {"selection": "zipfian", "zipf_exponent": 0.5,
                                       "read_set_size": 4}}),
            ("zipf-0.99", {"conflict": {"selection": "zipfian", "zipf_exponent": 0.99,
                                        "read_set_size": 4}}),
            ("zipf-1.3", {"conflict": {"selection": "zipfian", "zipf_exponent": 1.3,
                                       "read_set_size": 4}}),
        ],
    ),
    (
        "supply_chain",
        800.0,
        0.3,
        [
            ("hot-5pct", {"conflict": {"keyspace": 512, "hot_fraction": 0.05}}),
            ("hot-1pct", {"conflict": {"keyspace": 512, "hot_fraction": 0.01}}),
            ("hot-0.2pct", {"conflict": {"keyspace": 512, "hot_fraction": 0.002}}),
        ],
    ),
)

CASES = [
    (generator, skew_label, overrides, load, contention, paradigm)
    for generator, load, contention, skews in SUITE
    for skew_label, overrides in skews
    for paradigm in PARADIGMS
]


def _run_suite_point(generator, paradigm, load, contention, overrides, settings):
    spec = single_point_spec(
        name=f"{generator}-{paradigm}",
        paradigm=paradigm,
        offered_load=load,
        contention=contention,
        workload=overrides,
        duration=settings.duration,
        drain=settings.drain,
        seed=settings.seed,
        generator=generator,
    )
    result = SweepEngine(parallel=False).run(spec)
    return result.rows[0].metrics


@pytest.mark.parametrize(
    "generator,skew,overrides,load,contention,paradigm",
    CASES,
    ids=[f"{c[0]}-{c[1]}-{c[5]}" for c in CASES],
)
def test_workload_suite(benchmark, settings, generator, skew, overrides, load, contention, paradigm):
    metrics = benchmark.pedantic(
        lambda: _run_suite_point(generator, paradigm, load, contention, overrides, settings),
        rounds=1,
        iterations=1,
    )
    # Annotate before record_metrics: it snapshots extra_info into the
    # BENCH_results.json row.
    benchmark.extra_info["workload"] = generator
    benchmark.extra_info["skew"] = skew
    record_metrics(benchmark, metrics)
    assert metrics.committed + metrics.aborted > 0
    if paradigm != "XOV":
        # OX and OXII execute after ordering and never lose transactions to
        # optimistic-validation conflicts.
        assert metrics.committed > 0
        assert metrics.abort_rate == 0.0


def test_workload_suite_qualitative(benchmark, settings):
    """The suite's headline comparisons, at the highest skew of each workload.

    * SmallBank (contended read-modify-write): OXII sustains more committed
      throughput than XOV, which loses most transactions to validation aborts.
    * Read-heavy KV at standard skew (near-conflict-free): every paradigm
      commits nearly everything — aborts stay rare even for XOV.
    """

    def run():
        sb = {
            p: _run_suite_point("smallbank", p, 800.0, 0.2,
                                SUITE[0][3][2][1], settings)
            for p in PARADIGMS
        }
        # KV at the standard zipf-0.99 skew — the near-conflict-free regime
        # (at extreme skew XOV's optimistic aborts start to climb).
        kv = {
            p: _run_suite_point("kvstore", p, 1500.0, 0.05,
                                SUITE[1][3][1][1], settings)
            for p in PARADIGMS
        }
        return sb, kv

    sb, kv = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, metrics in {**{f"sb_{p}": m for p, m in sb.items()},
                           **{f"kv_{p}": m for p, m in kv.items()}}.items():
        benchmark.extra_info[f"throughput_{label}"] = round(metrics.throughput, 1)
    assert sb["OXII"].throughput > sb["XOV"].throughput
    assert sb["XOV"].abort_rate > 0.5
    for metrics in kv.values():
        assert metrics.abort_rate < 0.25
        assert metrics.committed > 0
