#!/usr/bin/env python3
"""Contention study: how each paradigm degrades as conflicts increase.

Sweeps the degree of contention of the accounting workload and prints, for
each paradigm, the committed throughput and abort rate at a fixed offered
load — a compact reproduction of the story told by Figure 6 of the paper,
including the cross-application OXII* variant.

Usage::

    python examples/contention_study.py [--load 1500] [--levels 0 0.2 0.8 1.0]
"""

from __future__ import annotations

import argparse

from repro.bench.runner import BenchmarkSettings, run_point
from repro.workload.generator import ConflictScope


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=1500.0)
    parser.add_argument("--levels", type=float, nargs="+", default=[0.0, 0.2, 0.8, 1.0])
    parser.add_argument("--duration", type=float, default=1.5)
    args = parser.parse_args()

    settings = BenchmarkSettings(duration=args.duration, drain=3.0)
    series = [
        ("OX", "OX", ConflictScope.WITHIN_APPLICATION),
        ("XOV", "XOV", ConflictScope.WITHIN_APPLICATION),
        ("OXII", "OXII", ConflictScope.WITHIN_APPLICATION),
        ("OXII*", "OXII", ConflictScope.CROSS_APPLICATION),
    ]

    header = f"{'contention':>10} | " + " | ".join(f"{label:>20}" for label, *_ in series)
    print(f"offered load: {args.load:.0f} tps  (throughput tps / abort rate)")
    print(header)
    print("-" * len(header))
    for contention in args.levels:
        cells = []
        for label, paradigm, scope in series:
            if label == "OXII*" and contention == 0.0:
                cells.append(f"{'same as OXII':>20}")
                continue
            metrics = run_point(
                paradigm,
                offered_load=args.load,
                contention=contention,
                conflict_scope=scope,
                settings=settings,
            )
            cells.append(f"{metrics.throughput:>9.0f} / {metrics.abort_rate:>6.1%}")
        print(f"{contention:>10.0%} | " + " | ".join(cells))

    print()
    print("OXII commits every conflicting transaction (no aborts) by executing along the")
    print("dependency graph; XOV aborts the losers of every conflict at validation time.")


if __name__ == "__main__":
    main()
