#!/usr/bin/env python3
"""A tour of the OXII core: dependency graphs and parallel execution.

Recreates the paper's Figure 2 example block, prints its dependency graph,
and then executes a larger accounting block two ways — sequentially and with a
real thread pool following the dependency graph — to show that the parallel
schedule produces exactly the same state while touching many transactions
concurrently.

Usage::

    python examples/dependency_graph_tour.py
"""

from __future__ import annotations

import time

from repro import AccountingContract, build_dependency_graph
from repro.core.execution import ExecutionEngine
from repro.core.parallel_executor import ParallelGraphExecutor
from repro.core.transaction import ReadWriteSet, Transaction
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def figure2_example() -> None:
    """The block of Figure 2: five transactions, two applications."""
    print("=== Figure 2 example ===")
    specs = [
        ("T1", "app-1", ["a"], ["b"]),
        ("T5", "app-2", ["e"], ["d"]),
        ("T4", "app-2", ["b"], ["f"]),
        ("T3", "app-1", ["g"], ["e"]),
        ("T2", "app-2", ["h"], ["d"]),
    ]
    txs = [
        Transaction(tx_id=name, application=app, rw_set=ReadWriteSet.build(reads, writes),
                    timestamp=i + 1)
        for i, (name, app, reads, writes) in enumerate(specs)
    ]
    graph = build_dependency_graph(txs)
    print(f"block order: {[t.tx_id for t in txs]}")
    print(f"ordering dependencies: {sorted((e.source, e.target) for e in graph.edges())}")
    print(f"roots (immediately executable): {graph.roots()}")
    print(f"critical path length: {graph.critical_path_length()} of {len(graph)} transactions")
    print(f"cross-application edges: {sorted((e.source, e.target) for e in graph.cross_application_edges())}")
    print()


def parallel_equals_sequential() -> None:
    """Execute a 200-transaction block with threads and check the state matches."""
    print("=== Parallel execution of a contended accounting block ===")
    generator = WorkloadGenerator(WorkloadConfig(contention=0.3, seed=42))
    txs = [tx.with_timestamp(i + 1) for i, tx in enumerate(generator.generate(200))]
    initial_state = generator.initial_state(txs)
    graph = build_dependency_graph(txs)
    print(f"block: {len(graph)} transactions, {graph.edge_count} dependencies, "
          f"critical path {graph.critical_path_length()}")

    contract = AccountingContract("any", enforce_ownership=True)
    runner = lambda tx, state: contract.execute(tx, state)  # noqa: E731

    sequential = ExecutionEngine(runner, dict(initial_state))
    start = time.perf_counter()
    sequential.execute_sequentially(txs)
    sequential_wall = time.perf_counter() - start

    parallel_state = dict(initial_state)
    start = time.perf_counter()
    ParallelGraphExecutor(runner, max_workers=8).execute(graph, parallel_state)
    parallel_wall = time.perf_counter() - start

    same = parallel_state == sequential.state
    total = AccountingContract.total_balance(parallel_state)
    print(f"states identical: {same}")
    print(f"total balance conserved: {total == AccountingContract.total_balance(initial_state)}")
    print(f"wall clock: sequential {sequential_wall * 1000:.1f} ms, "
          f"thread pool {parallel_wall * 1000:.1f} ms "
          f"(Python threads add overhead for CPU-light contracts; the simulator is used for the paper's performance claims)")
    print()


def main() -> None:
    figure2_example()
    parallel_equals_sequential()


if __name__ == "__main__":
    main()
