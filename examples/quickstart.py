#!/usr/bin/env python3
"""Quickstart: compare OX, XOV and ParBlockchain (OXII) on one workload.

Runs all three paradigms on the paper's accounting workload with a moderate
degree of contention and prints throughput, latency and abort rate — the
library's "hello world".

Usage::

    python examples/quickstart.py [--contention 0.2] [--load 1500]
"""

from __future__ import annotations

import argparse

from repro import quick_comparison
from repro.bench.reporting import format_comparison
from repro.bench.runner import BenchmarkSettings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--contention", type=float, default=0.2,
                        help="fraction of conflicting transactions (0.0 - 1.0)")
    parser.add_argument("--load", type=float, default=1500.0,
                        help="offered load in transactions per second")
    parser.add_argument("--duration", type=float, default=1.5,
                        help="length of the submission phase in simulated seconds")
    args = parser.parse_args()

    settings = BenchmarkSettings(duration=args.duration, drain=3.0)
    results = quick_comparison(
        contention=args.contention, offered_load=args.load, settings=settings
    )
    print(format_comparison(
        results,
        title=f"Accounting workload, contention {args.contention:.0%}, offered load {args.load:.0f} tps",
    ))
    print()
    oxii = results["OXII"]
    xov = results["XOV"]
    ox = results["OX"]
    print(f"OXII commits {oxii.throughput / max(ox.throughput, 1):.1f}x more than OX "
          f"and {oxii.throughput / max(xov.throughput, 1):.1f}x more than XOV on this workload.")


if __name__ == "__main__":
    main()
