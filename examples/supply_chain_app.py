#!/usr/bin/env python3
"""A cross-organisation supply-chain application on ParBlockchain (OXII).

Deploys a custom OXII cluster in which two organisations run their own
applications (a supply-chain contract and an accounting/payments contract) on
separate executor groups, submits a workload where shipments and payments
conflict on shared records, and shows that every replica converges to the same
asset custody history without aborting a single transaction — the scenario the
paper's introduction motivates.

Usage::

    python examples/supply_chain_app.py
"""

from __future__ import annotations

from repro.common.config import BlockCutPolicy, SystemConfig
from repro.contracts.accounting import AccountingContract, Transfer
from repro.contracts.base import ContractRegistry
from repro.contracts.supply_chain import SupplyChainContract
from repro.paradigms.oxii import OXIIDeployment
from repro.workload.arrivals import constant_rate


class SupplyChainDeployment(OXIIDeployment):
    """An OXII deployment hosting a supply-chain app and a payments app."""

    def build_contracts(self) -> ContractRegistry:
        contracts = ContractRegistry()
        contracts.install(SupplyChainContract("app-0"), agents=self.agents_of_application(0))
        contracts.install(AccountingContract("app-1"), agents=self.agents_of_application(1))
        return contracts


def build_workload():
    """Shipments of ten assets interleaved with the payments for them."""
    transactions = []
    assets = [f"pallet-{i}" for i in range(10)]
    for index, asset in enumerate(assets):
        transactions.append(
            SupplyChainContract.make_register(f"reg-{asset}", "app-0", asset, owner="factory")
        )
        transactions.append(
            SupplyChainContract.make_ship(f"ship-{asset}", "app-0", asset,
                                          sender="factory", recipient="retailer")
        )
        transactions.append(
            AccountingContract.make_transfer_transaction(
                tx_id=f"pay-{asset}",
                application="app-1",
                client="retailer",
                transfers=[Transfer(source="retailer-account", destination="factory-account", amount=100.0)],
            )
        )
        transactions.append(
            SupplyChainContract.make_inspect(f"inspect-{asset}", "app-0", asset,
                                             inspector="auditor", verdict="accepted")
        )
    initial_state = AccountingContract.initial_state(
        [("retailer-account", 10_000.0, "retailer"), ("factory-account", 0.0, "factory")]
    )
    return transactions, initial_state


def main() -> None:
    config = SystemConfig(
        num_applications=2,
        executors_per_application=1,
        block_cut=BlockCutPolicy(max_transactions=8, max_delay=0.05),
    )
    transactions, initial_state = build_workload()
    schedule = constant_rate(len(transactions), rate=400.0)

    deployment = SupplyChainDeployment(config)
    metrics = deployment.run(
        transactions=transactions,
        schedule=schedule,
        initial_state=initial_state,
        warmup_fraction=0.0,
        drain=20.0,
    )
    collector = deployment.handles.collector
    peers = deployment.handles.peers

    print(f"submitted {len(transactions)} transactions across 2 applications")
    print(f"committed everywhere: {collector.committed_count}, aborted: {collector.aborted_count}")
    print(f"blocks on the ledger: {peers[0].ledger.height}, chain valid: {peers[0].ledger.verify_chain()}")
    states = [peer.state.as_dict() for peer in peers]
    print(f"replicas converged: {all(state == states[0] for state in states)}")
    sample = states[0]["asset/pallet-0"]
    print(f"pallet-0 custody: owner={sample['owner']} status={sample['status']}")
    print(f"pallet-0 history: {list(sample['history'])}")
    factory_balance = AccountingContract.balance_of(states[0], "factory-account")
    print(f"factory received payments totalling {factory_balance:.0f}")


if __name__ == "__main__":
    main()
