"""Setup shim for environments without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` can fall back to a legacy editable install
on machines where PEP 517 editable builds are unavailable (no ``wheel``).
"""

from setuptools import setup

setup()
