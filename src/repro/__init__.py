"""ParBlockchain reproduction: transaction parallelism for permissioned blockchains.

This library reproduces *ParBlockchain: Leveraging Transaction Parallelism in
Permissioned Blockchain Systems* (Amiri, Agrawal, El Abbadi — ICDCS 2019).  It
implements the three permissioned-blockchain paradigms the paper compares —

* **OX** (order-execute, sequential execution on every node),
* **XOV** (execute-order-validate, Hyperledger-Fabric style), and
* **OXII / ParBlockchain** (order, generate a dependency graph, execute in
  parallel following the graph) —

on top of a shared substrate: a deterministic discrete-event simulator, an
asynchronous authenticated network, pluggable consensus (PBFT / Raft / a
Kafka-style ordering service), a hash-chained ledger with a versioned world
state, smart contracts and a pluggable suite of multi-application benchmark
workloads built on one general conflict model (see ``docs/workloads.md``).

Quickstart::

    from repro import quick_comparison
    report = quick_comparison(contention=0.2, offered_load=1500)
    for paradigm, point in report.items():
        print(paradigm, point.throughput, point.latency_avg)

See ``examples/`` for complete scripts, ``docs/architecture.md`` for the
layered tour and ``docs/experiments.md`` for the declarative experiment API.
"""

from repro.common.config import BlockCutPolicy, CostModel, LatencyConfig, SystemConfig
from repro.core import (
    Block,
    DependencyGraph,
    ParallelGraphExecutor,
    ReadWriteSet,
    Transaction,
    TransactionResult,
    build_dependency_graph,
)
from repro.contracts import (
    AccountingContract,
    KeyValueContract,
    SmartContract,
    SupplyChainContract,
)
from repro.workload import (
    ConflictModel,
    ConflictScope,
    KeyValueWorkload,
    SmallBankWorkload,
    SupplyChainWorkload,
    WorkloadBase,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.paradigms import OXDeployment, OXIIDeployment, XOVDeployment, run_paradigm
from repro.metrics.collector import RunMetrics
from repro.bench.runner import quick_comparison
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    ScenarioSpec,
    SweepEngine,
    register_contract,
    register_paradigm,
    register_workload,
)

__all__ = [
    "AccountingContract",
    "Block",
    "BlockCutPolicy",
    "ConflictModel",
    "ConflictScope",
    "CostModel",
    "DependencyGraph",
    "ExperimentResult",
    "ExperimentSpec",
    "KeyValueContract",
    "KeyValueWorkload",
    "LatencyConfig",
    "OXDeployment",
    "OXIIDeployment",
    "ParallelGraphExecutor",
    "ReadWriteSet",
    "RunMetrics",
    "ScenarioSpec",
    "SmallBankWorkload",
    "SmartContract",
    "SupplyChainContract",
    "SupplyChainWorkload",
    "SweepEngine",
    "SystemConfig",
    "Transaction",
    "TransactionResult",
    "WorkloadBase",
    "WorkloadConfig",
    "WorkloadGenerator",
    "XOVDeployment",
    "build_dependency_graph",
    "quick_comparison",
    "register_contract",
    "register_paradigm",
    "register_workload",
    "run_paradigm",
]

__version__ = "0.1.0"
