"""Agent-based workload engine: million-user populations at O(cohorts) memory.

The layer that turns the static, open-loop workload generators into a living
population: stateful :class:`Agent` sessions grouped into exact-statistics
:class:`CohortAgent` aggregates, driven against a deployment by the
clock-integrated :class:`PopulationEngine`, with a :class:`FeedbackChannel`
closing the loop — every commit/abort (+ stable abort reason and latency)
reaches the submitting agent's behaviour policy, enabling retry backoff,
session bursts, latency-reactive throttling, churn, diurnal curves, flash
crowds and adversarial behaviours (hot-key grinding, duplicate submission).

Select it from specs as the ``agents`` workload type; configure it through
``workload.agents`` (see :class:`AgentPopulationConfig` and docs/workloads.md).
"""

from repro.agents.engine import (
    CohortRollup,
    FeedbackChannel,
    PopulationEngine,
    TxOutcome,
    build_population_engine,
)
from repro.agents.policy import AgentPolicy, agent_policy_registry, register_agent_policy
from repro.agents.population import (
    Agent,
    AgentPopulationConfig,
    ChurnConfig,
    CohortAgent,
    CohortSpec,
    DiurnalConfig,
    FlashEvent,
    Population,
)
from repro.agents.workload import AgentWorkload

__all__ = [
    "Agent",
    "AgentPolicy",
    "AgentPopulationConfig",
    "AgentWorkload",
    "ChurnConfig",
    "CohortAgent",
    "CohortRollup",
    "CohortSpec",
    "DiurnalConfig",
    "FeedbackChannel",
    "FlashEvent",
    "Population",
    "PopulationEngine",
    "TxOutcome",
    "agent_policy_registry",
    "build_population_engine",
    "register_agent_policy",
]
