"""The population engine: closed-loop, clock-integrated workload driving.

:class:`PopulationEngine` is a *driver* in the sense of
:meth:`repro.paradigms.base.Deployment.run`: instead of replaying a
pre-generated transaction list (the open-loop :class:`ScheduleDriver`), it
runs one simulated process per cohort that samples the cohort's aggregate
arrival stream by thinning — draw candidate arrivals at the cohort's upper
rate bound, accept each with probability ``rate_at(t) / bound`` — which yields
the exact non-homogeneous Poisson process of the modeled population under
diurnal curves, churn and flash crowds.

Each accepted arrival is attributed to one live session
(:class:`~repro.agents.population.Agent`), whose behaviour policy chooses the
destination and think time; the resulting transfer is submitted through
:meth:`ClientGateway.submit_now`.  The :class:`FeedbackChannel` subscribes to
the metrics collector's completion events and routes every commit/abort —
with its stable abort reason and end-to-end latency — back to the submitting
agent's policy, which may schedule retries (fresh tx_id), session bursts,
duplicates (same tx_id, exercising orderer dedup) or cohort-level throttling.

All scheduling flows through the simulated clock and labelled child RNG
streams, so a run is bit-identical from (spec, seed): the per-agent event log
digests identically across serial and multiprocessing sweep backends.

New submissions (arrivals, retries, bursts, duplicates) stop at ``duration``;
actions that would fire later are counted as ``dropped`` per cohort.  That
bounds the run: the engine is complete once the clock passed ``duration``,
no scheduled actions remain, and every unique submitted transaction completed
at every measurement peer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.agents.policy import AgentPolicy, agent_policy_registry
from repro.agents.population import Agent, CohortAgent, Population
from repro.contracts.accounting import AccountingContract, Transfer
from repro.core.transaction import Transaction
from repro.metrics.collector import CompletionEvent


@dataclass(frozen=True)
class TxOutcome:
    """What the feedback channel tells a policy about one finished transaction."""

    tx_id: str
    committed: bool
    abort_reason: str
    latency: float
    attempt: int
    destination: str
    submitted_at: float
    completed_at: float


class FeedbackChannel:
    """Routes collector completion events back to the submitting agent's policy."""

    def __init__(self, engine: "PopulationEngine") -> None:
        self._engine = engine

    def __call__(self, event: CompletionEvent) -> None:
        self._engine._on_completion(event)


class _Pending:
    """Book-keeping for one in-flight transaction."""

    __slots__ = ("agent", "destination", "attempt", "submitted_at")

    def __init__(self, agent: Agent, destination: str, attempt: int, submitted_at: float) -> None:
        self.agent = agent
        self.destination = destination
        self.attempt = attempt
        self.submitted_at = submitted_at


@dataclass
class CohortRollup:
    """Per-cohort commit/abort/retry/latency aggregates surfaced in RunMetrics."""

    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    duplicates: int = 0
    bursts: int = 0
    giveups: int = 0
    dropped: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    abort_reasons: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "retries": self.retries,
            "duplicates": self.duplicates,
            "bursts": self.bursts,
            "giveups": self.giveups,
            "dropped": self.dropped,
            "latency_avg": self.latency_sum / self.committed if self.committed else 0.0,
            "latency_max": self.latency_max,
            "abort_reasons": dict(sorted(self.abort_reasons.items())),
        }


class PopulationEngine:
    """Drives a :class:`Population` against a live deployment (driver protocol)."""

    def __init__(
        self,
        population: Population,
        duration: float,
        transfer_amount: float = 1.0,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.population = population
        self.duration = duration
        self.transfer_amount = transfer_amount
        #: One policy instance per cohort (sessions share it; unknown names
        #: fail here with the registry's standard error message).
        self.policies: Dict[str, AgentPolicy] = {}
        for cohort in population.cohorts:
            policy_cls = agent_policy_registry.get(cohort.spec.policy)
            self.policies[cohort.name] = policy_cls(
                dict(cohort.spec.policy_params), cohort.policy_rng
            )
        self._by_name: Dict[str, CohortAgent] = {c.name: c for c in population.cohorts}
        self.rollups: Dict[str, CohortRollup] = {c.name: CohortRollup() for c in population.cohorts}
        self._inflight: Dict[str, _Pending] = {}
        self._submitted: List[Transaction] = []
        self._unique_submitted = 0
        self._pending_actions = 0
        self._events: List[Tuple[float, str, int, str, str]] = []
        self.env = None
        self.gateway = None

    # -------------------------------------------------------- driver protocol
    @property
    def offered_rate(self) -> float:
        """Aggregate base rate the population offers (tx/s)."""
        return self.population.total_rate

    def start(self, handles, deployment) -> None:
        """Install the feedback channel and start per-cohort clock processes."""
        self.env = handles.env
        self.gateway = handles.gateway
        handles.collector.subscribe(FeedbackChannel(self))
        self.gateway.start()
        for cohort in self.population.cohorts:
            self.env.process(self._arrival_loop(cohort), name=f"agents-{cohort.name}")
            if cohort.churn.enabled:
                self.env.process(self._churn_loop(cohort), name=f"agents-{cohort.name}-churn")

    def is_complete(self, handles) -> bool:
        """Done: past ``duration``, no scheduled actions, everything completed."""
        if self.env is None or self.env.now < self.duration:
            return False
        if self._pending_actions > 0:
            return False
        return handles.collector.all_complete(self._unique_submitted)

    def submitted_transactions(self) -> Tuple[Transaction, ...]:
        """Every unique transaction submitted, in submission order."""
        return tuple(self._submitted)

    def extra_metrics(self, handles) -> Dict[str, Any]:
        """Per-cohort rollups + determinism digests, merged into RunMetrics.extra."""
        population = {
            cohort.name: {
                "users": cohort.spec.users,
                "sessions": len(cohort.agents),
                "policy": cohort.spec.policy,
                "base_rate": cohort.base_rate,
                "throttle": cohort.throttle,
                "churn_factor": cohort.churn_factor,
                **self.rollups[cohort.name].as_dict(),
            }
            for cohort in self.population.cohorts
        }
        ledger_tip = ""
        if handles.peers:
            ledger_tip = handles.peers[0].ledger.tip.digest()
        return {
            "population": population,
            "population_users": float(self.population.total_users),
            "population_agents": float(self.population.agent_count()),
            "population_submitted": float(self._unique_submitted),
            "population_retries": float(sum(r.retries for r in self.rollups.values())),
            "population_duplicates": float(sum(r.duplicates for r in self.rollups.values())),
            "population_events_digest": self.events_digest(),
            "ledger_tip": ledger_tip,
        }

    # ------------------------------------------------------------ clock loops
    def _arrival_loop(self, cohort: CohortAgent):
        """Thinned Poisson sampling of the cohort's aggregate arrival process."""
        rng = cohort.arrival_rng
        bound = cohort.max_rate()
        if bound <= 0.0:
            return
        while True:
            delay = rng.expovariate(bound)
            if self.env.now + delay > self.duration:
                return
            yield delay
            if rng.random() * bound > cohort.rate_at(self.env.now):
                continue  # thinning rejection: exact non-homogeneous sampling
            agent = cohort.pick_agent()
            self._dispatch(agent, kind="arrival")

    def _churn_loop(self, cohort: CohortAgent):
        """Step the cohort's churn random walk on the simulated clock."""
        interval = cohort.churn.interval
        while self.env.now + interval <= self.duration:
            yield interval
            factor = cohort.churn_step()
            self._log("churn", cohort.name, -1, f"{factor:.6f}")

    # ------------------------------------------------------------ submissions
    def _dispatch(self, agent: Agent, kind: str) -> None:
        """Let the agent's policy pick destination + think time, then submit."""
        policy = self.policies[agent.cohort]
        destination = policy.choose_destination(agent, self)
        think = policy.think_time(agent)
        if think > 0.0:
            self._defer(agent, destination, attempt=1, kind=kind, delay=think)
        else:
            self._submit(agent, destination, attempt=1, kind=kind)

    def _submit(self, agent: Agent, destination: str, attempt: int, kind: str) -> None:
        if self.env.now > self.duration:
            self.rollups[agent.cohort].dropped += 1
            self._log("dropped", agent.cohort, agent.slot, kind)
            return
        agent.seq += 1
        tx_id = f"ag-{agent.cohort}-{agent.slot}-{agent.seq}"
        tx = AccountingContract.make_transfer_transaction(
            tx_id=tx_id,
            application=agent.application,
            client=agent.client,
            transfers=[
                Transfer(source=agent.account, destination=destination, amount=self.transfer_amount)
            ],
            client_timestamp=self.env.now,
        )
        self._inflight[tx_id] = _Pending(agent, destination, attempt, self.env.now)
        self._submitted.append(tx)
        self._unique_submitted += 1
        self.rollups[agent.cohort].submitted += 1
        self._log(kind, agent.cohort, agent.slot, tx_id)
        self.gateway.submit_now(tx)
        self.policies[agent.cohort].after_submit(agent, tx, self)

    def _defer(self, agent: Agent, destination: str, attempt: int, kind: str, delay: float) -> None:
        """Schedule a future submission, tracked so completion waits for it."""
        self._pending_actions += 1

        def fire() -> None:
            self._pending_actions -= 1
            self._submit(agent, destination, attempt, kind)

        self.env.call_at(self.env.now + max(delay, 0.0), fire)

    # ----------------------------------------------------------- feedback path
    def _on_completion(self, event: CompletionEvent) -> None:
        pending = self._inflight.pop(event.tx_id, None)
        if pending is None:
            return  # not ours (or a duplicate completion)
        agent = pending.agent
        rollup = self.rollups[agent.cohort]
        latency = event.completed_at - pending.submitted_at
        if event.aborted:
            rollup.aborted += 1
            reason = event.reason or "abort"
            rollup.abort_reasons[reason] = rollup.abort_reasons.get(reason, 0) + 1
            self._log(f"abort:{reason}", agent.cohort, agent.slot, event.tx_id)
        else:
            rollup.committed += 1
            rollup.latency_sum += latency
            if latency > rollup.latency_max:
                rollup.latency_max = latency
            self._log("commit", agent.cohort, agent.slot, event.tx_id)
        outcome = TxOutcome(
            tx_id=event.tx_id,
            committed=not event.aborted,
            abort_reason=event.reason,
            latency=latency,
            attempt=pending.attempt,
            destination=pending.destination,
            submitted_at=pending.submitted_at,
            completed_at=event.completed_at,
        )
        self.policies[agent.cohort].on_outcome(agent, outcome, self)

    # ------------------------------------------------------------- policy API
    def hot_key(self, rng) -> str:
        """A shared contended account (adversarial / contended traffic)."""
        keys = self.population.hot_keys
        return keys[rng.randrange(len(keys))] if len(keys) > 1 else keys[0]

    def sink(self, rng) -> str:
        """An uncontended destination account."""
        sinks = self.population.sinks
        return sinks[rng.randrange(len(sinks))] if len(sinks) > 1 else sinks[0]

    def schedule_retry(self, agent: Agent, outcome: TxOutcome, delay: float) -> None:
        """Resubmit the failed intent (same destination, fresh tx_id) after ``delay``."""
        self.rollups[agent.cohort].retries += 1
        self._defer(agent, outcome.destination, outcome.attempt + 1, "retry", delay)

    def schedule_followup(self, agent: Agent, delay: float, kind: str = "burst") -> None:
        """Submit a fresh transaction from ``agent`` after ``delay`` (session bursts)."""
        policy = self.policies[agent.cohort]
        self.rollups[agent.cohort].bursts += 1
        destination = policy.choose_destination(agent, self)
        self._defer(agent, destination, attempt=1, kind=kind, delay=delay)

    def schedule_duplicate(self, agent: Agent, tx: Transaction, delay: float) -> None:
        """Resubmit ``tx`` verbatim (same tx_id) — at-least-once adversarial delivery."""
        self._pending_actions += 1

        def fire() -> None:
            self._pending_actions -= 1
            if self.env.now > self.duration:
                self.rollups[agent.cohort].dropped += 1
                return
            self.rollups[agent.cohort].duplicates += 1
            self._log("duplicate", agent.cohort, agent.slot, tx.tx_id)
            self.gateway.submit_now(tx)

        self.env.call_at(self.env.now + max(delay, 0.0), fire)

    def adjust_throttle(self, cohort_name: str, factor: float, floor: float = 0.1) -> None:
        """Multiply the cohort's throttle by ``factor``, clamped to [floor, 1]."""
        cohort = self._by_name[cohort_name]
        cohort.throttle = min(1.0, max(floor, cohort.throttle * factor))

    def record_giveup(self, agent: Agent) -> None:
        """A policy exhausted its retry budget for one intent."""
        self.rollups[agent.cohort].giveups += 1

    # -------------------------------------------------------------- event log
    def _log(self, kind: str, cohort: str, slot: int, detail: str) -> None:
        self._events.append((self.env.now, cohort, slot, kind, detail))

    @property
    def events(self) -> Tuple[Tuple[float, str, int, str, str], ...]:
        """The per-agent event log (time, cohort, session, kind, detail)."""
        return tuple(self._events)

    def events_digest(self) -> str:
        """sha256 over the event log — the bit-identical-rerun fingerprint."""
        digest = hashlib.sha256()
        for event in self._events:
            digest.update(repr(event).encode("utf-8"))
        return digest.hexdigest()


def build_population_engine(
    config,
    applications,
    seed: int,
    offered_load: Optional[float],
    duration: float,
    initial_balance: float = 1.0e9,
    transfer_amount: float = 1.0,
) -> PopulationEngine:
    """Convenience constructor: config → population → engine."""
    population = Population(
        config,
        applications=applications,
        seed=seed,
        offered_load=offered_load,
        initial_balance=initial_balance,
    )
    return PopulationEngine(population, duration=duration, transfer_amount=transfer_amount)
