"""Behaviour policies: what an agent submits next, and how it reacts to outcomes.

A policy is a per-cohort strategy object (sessions share the instance; their
individual state lives on the :class:`~repro.agents.population.Agent`).  The
engine calls three hooks:

* :meth:`AgentPolicy.choose_destination` — pick the destination account of the
  next transfer (hot key vs. uncontended sink, controlled by
  ``hot_probability``).
* :meth:`AgentPolicy.after_submit` — fired right after a submission (the
  duplicate-submitter's hook).
* :meth:`AgentPolicy.on_outcome` — the feedback hook: fired when the
  submitting agent's transaction completes (committed or aborted) with its
  abort reason and end-to-end latency.  Retry, burst and throttling behaviour
  lives here.

Policies are registered by name in :data:`agent_policy_registry` (the same
:class:`~repro.common.registry.Registry` machinery as paradigms/contracts/
workloads), so an unknown policy name in a spec fails with the standard
"expected one of [...]" configuration error, and third-party policies plug in
with ``@register_agent_policy``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Mapping

from repro.common.config import reject_unknown_fields
from repro.common.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.engine import PopulationEngine, TxOutcome
    from repro.agents.population import Agent

#: Global catalogue of agent behaviour policies.
agent_policy_registry: Registry = Registry("agent policy")


def register_agent_policy(name: str, policy=None, *, replace: bool = False):
    """Register an :class:`AgentPolicy` subclass under ``name`` (decorator-friendly)."""
    return agent_policy_registry.register(name, policy, replace=replace)


class AgentPolicy:
    """Base behaviour: submit transfers to uncontended sinks, never react."""

    #: Registered name (set for the built-ins; used in metrics/rollups).
    name: str = "abstract"
    #: Recognised parameters and their defaults; unknown keys are rejected so
    #: a typo in ``policy_params`` fails loudly at population build time.
    defaults: Mapping[str, Any] = {"hot_probability": 0.0}

    def __init__(self, params: Mapping[str, Any], rng: random.Random) -> None:
        reject_unknown_fields(f"agent policy {self.name!r}", params, set(self.defaults))
        merged = dict(self.defaults)
        merged.update(params)
        self.params = merged
        self.rng = rng
        self.hot_probability = float(merged["hot_probability"])

    # ---------------------------------------------------------------- intents
    def think_time(self, agent: "Agent") -> float:
        """Delay between deciding to transact and submitting (seconds)."""
        return 0.0

    def choose_destination(self, agent: "Agent", engine: "PopulationEngine") -> str:
        """Destination account of the next transfer."""
        if self.hot_probability > 0.0 and self.rng.random() < self.hot_probability:
            return engine.hot_key(self.rng)
        return engine.sink(self.rng)

    # --------------------------------------------------------------- feedback
    def after_submit(self, agent: "Agent", tx, engine: "PopulationEngine") -> None:
        """Hook fired right after ``tx`` was handed to the gateway."""

    def on_outcome(self, agent: "Agent", outcome: "TxOutcome", engine: "PopulationEngine") -> None:
        """Hook fired when one of the agent's transactions completes."""


@register_agent_policy("steady")
class SteadyPolicy(AgentPolicy):
    """Open-loop honest traffic: fire and forget, mostly uncontended."""

    name = "steady"
    defaults = {"hot_probability": 0.0}


@register_agent_policy("naive-retry")
class NaiveRetryPolicy(AgentPolicy):
    """Retry every abort immediately — the retry-amplification anti-pattern.

    Under contention each abort triggers an instant resubmission of the same
    conflicting intent, which keeps the hot key saturated and collapses
    goodput (the abort-storm scenario the agent bench gates on).
    """

    name = "naive-retry"
    defaults = {"hot_probability": 0.0, "retry_limit": 4}

    def on_outcome(self, agent, outcome, engine) -> None:
        if outcome.committed:
            return
        if outcome.attempt >= int(self.params["retry_limit"]):
            engine.record_giveup(agent)
            return
        engine.schedule_retry(agent, outcome, delay=0.0)


@register_agent_policy("backoff-retry")
class BackoffRetryPolicy(AgentPolicy):
    """Retry with exponential backoff + seeded jitter — the well-behaved client."""

    name = "backoff-retry"
    defaults = {
        "hot_probability": 0.0,
        "retry_limit": 6,
        "base_delay": 0.05,
        "factor": 2.0,
        "max_delay": 1.0,
        "jitter": 0.5,
    }

    def on_outcome(self, agent, outcome, engine) -> None:
        if outcome.committed:
            return
        if outcome.attempt >= int(self.params["retry_limit"]):
            engine.record_giveup(agent)
            return
        delay = min(
            float(self.params["max_delay"]),
            float(self.params["base_delay"]) * float(self.params["factor"]) ** (outcome.attempt - 1),
        )
        delay *= 1.0 + float(self.params["jitter"]) * self.rng.random()
        engine.schedule_retry(agent, outcome, delay=delay)


@register_agent_policy("session-burst")
class SessionBurstPolicy(AgentPolicy):
    """A commit can open a burst: several follow-up transactions in quick succession."""

    name = "session-burst"
    defaults = {
        "hot_probability": 0.0,
        "burst_probability": 0.4,
        "burst_length": 3,
        "think": 0.02,
    }

    def on_outcome(self, agent, outcome, engine) -> None:
        if not outcome.committed:
            agent.bursting = 0
            return
        think = float(self.params["think"])
        if agent.bursting > 0:
            agent.bursting -= 1
            engine.schedule_followup(agent, delay=think, kind="burst")
        elif self.rng.random() < float(self.params["burst_probability"]):
            agent.bursting = int(self.params["burst_length"]) - 1
            engine.schedule_followup(agent, delay=think, kind="burst")


@register_agent_policy("latency-throttle")
class LatencyThrottlePolicy(AgentPolicy):
    """Latency-reactive load shedding: slow the whole cohort when commits lag."""

    name = "latency-throttle"
    defaults = {
        "hot_probability": 0.0,
        "latency_threshold": 0.4,
        "backoff": 0.7,
        "recovery": 1.05,
        "floor": 0.1,
    }

    def on_outcome(self, agent, outcome, engine) -> None:
        slow = (not outcome.committed) or outcome.latency > float(self.params["latency_threshold"])
        if slow:
            engine.adjust_throttle(agent.cohort, float(self.params["backoff"]), floor=float(self.params["floor"]))
        else:
            engine.adjust_throttle(agent.cohort, float(self.params["recovery"]), floor=float(self.params["floor"]))


@register_agent_policy("hot-key-grinder")
class HotKeyGrinderPolicy(AgentPolicy):
    """Adversarial: every transaction writes a shared hot key (contention grinder)."""

    name = "hot-key-grinder"
    defaults = {"hot_probability": 1.0}


@register_agent_policy("duplicate-submitter")
class DuplicateSubmitterPolicy(AgentPolicy):
    """Adversarial: resubmit the same tx_id, exercising orderer dedup (at-least-once)."""

    name = "duplicate-submitter"
    defaults = {"hot_probability": 0.0, "duplicate_probability": 0.5, "delay": 0.02}

    def after_submit(self, agent, tx, engine) -> None:
        if self.rng.random() < float(self.params["duplicate_probability"]):
            engine.schedule_duplicate(agent, tx, delay=float(self.params["delay"]))
