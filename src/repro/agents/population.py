"""Agent populations: per-session state at O(cohorts) memory for 1M+ users.

The scaling trick mirrors monerosim-style agent frameworks: instead of one
object per modeled user, a :class:`CohortAgent` represents ``users`` modeled
users with a handful of live :class:`Agent` *sessions*.  Arrivals are drawn
from the cohort's aggregate non-homogeneous Poisson process (superposition of
the users' individual processes — the aggregate rate ``users * tx_rate`` is
exact, not an approximation), and each arrival is attributed to one session by
weighted selection.  Session weights come from the cohort's rate model
(constant, lognormal, or an empirical histogram), so per-session heterogeneity
is preserved while memory stays proportional to ``sum(sessions)`` — a few
dozen objects for a million modeled users.

Load shaping is multiplicative on the cohort base rate:

``rate(t) = base * diurnal(t) * churn(t) * flash(t) * throttle(t)``

* ``diurnal(t)`` — a deterministic sinusoid (amplitude/period/phase).
* ``churn(t)`` — a seeded multiplicative random walk, stepped every
  ``interval`` seconds and clamped to ``[min_factor, max_factor]`` (population
  joining/leaving).
* ``flash(t)`` — configured flash-crowd events, each multiplying the rate of
  one cohort (or all) during ``[at, at + duration]``.
* ``throttle(t)`` — in ``(0, 1]``, adjusted by latency-reactive policies
  through the feedback loop.

Everything random derives from labelled :func:`repro.common.rng.child_seed`
streams, so two runs of the same (spec, seed) reproduce churn steps, session
picks and arrival times bit-identically.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import (
    apply_overrides,
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import child_rng

RATE_MODELS = ("constant", "lognormal", "empirical")


@dataclass(frozen=True)
class CohortSpec:
    """One homogeneous slice of the population (same policy, same rate model)."""

    name: str = "cohort"
    #: Modeled users this cohort stands for (memory cost stays O(sessions)).
    users: int = 1000
    #: Per-user transaction rate (tx/s); the cohort's aggregate base rate is
    #: ``users * tx_rate`` exactly (Poisson superposition).
    tx_rate: float = 0.5
    #: Live :class:`Agent` sessions carrying the cohort's per-agent state.
    sessions: int = 8
    #: Behaviour policy name (see :mod:`repro.agents.policy`).
    policy: str = "steady"
    policy_params: Mapping[str, Any] = field(default_factory=dict)
    #: How per-session rates spread around the mean: ``constant`` (uniform),
    #: ``lognormal`` (sigma = ``rate_sigma``) or ``empirical``
    #: (``rate_weights`` cycled over the sessions).
    rate_model: str = "constant"
    rate_sigma: float = 0.5
    rate_weights: Tuple[float, ...] = ()
    #: Home application ("" — assigned round-robin over the deployment's apps).
    application: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("cohort name must be non-empty")
        check_positive_int("users", self.users)
        check_positive("tx_rate", self.tx_rate)
        check_positive_int("sessions", self.sessions)
        check_non_negative("rate_sigma", self.rate_sigma)
        if self.rate_model not in RATE_MODELS:
            raise ConfigurationError(
                f"rate_model must be one of {list(RATE_MODELS)}, got {self.rate_model!r}"
            )
        if isinstance(self.rate_weights, list):
            object.__setattr__(self, "rate_weights", tuple(self.rate_weights))
        if self.rate_model == "empirical":
            if not self.rate_weights:
                raise ConfigurationError("rate_model 'empirical' needs non-empty rate_weights")
            if any(w <= 0 for w in self.rate_weights):
                raise ConfigurationError("rate_weights must all be positive")
        if not isinstance(self.policy_params, Mapping):
            raise ConfigurationError(
                f"policy_params must be a mapping, got {self.policy_params!r}"
            )


@dataclass(frozen=True)
class DiurnalConfig:
    """Deterministic sinusoidal load curve: ``1 + amplitude*sin(2π(t+phase)/period)``."""

    amplitude: float = 0.0
    period: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("amplitude", self.amplitude)
        check_positive("period", self.period)

    def factor(self, t: float) -> float:
        if self.amplitude == 0.0:
            return 1.0
        return 1.0 + self.amplitude * math.sin(2.0 * math.pi * (t + self.phase) / self.period)

    @property
    def max_factor(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True)
class ChurnConfig:
    """Seeded multiplicative random walk on the cohort's active population."""

    #: Lognormal step scale per interval (0 — churn disabled).
    sigma: float = 0.0
    interval: float = 0.25
    min_factor: float = 0.5
    max_factor: float = 1.5

    def __post_init__(self) -> None:
        check_non_negative("sigma", self.sigma)
        check_positive("interval", self.interval)
        check_positive("min_factor", self.min_factor)
        check_positive("max_factor", self.max_factor)
        if self.min_factor > 1.0 or self.max_factor < 1.0:
            raise ConfigurationError(
                "churn clamp must bracket 1.0 (min_factor <= 1 <= max_factor), "
                f"got [{self.min_factor}, {self.max_factor}]"
            )

    @property
    def enabled(self) -> bool:
        return self.sigma > 0.0


@dataclass(frozen=True)
class FlashEvent:
    """A flash crowd: multiply one cohort's (or every cohort's) rate for a while."""

    at: float = 0.0
    duration: float = 0.5
    multiplier: float = 2.0
    cohort: str = ""

    def __post_init__(self) -> None:
        check_non_negative("at", self.at)
        check_positive("duration", self.duration)
        check_positive("multiplier", self.multiplier)

    def applies(self, cohort: str, t: float) -> bool:
        if self.cohort and self.cohort != cohort:
            return False
        return self.at <= t < self.at + self.duration


@dataclass(frozen=True)
class AgentPopulationConfig:
    """The ``workload.agents`` section of a spec: cohorts plus load shaping."""

    cohorts: Tuple[CohortSpec, ...] = (CohortSpec(),)
    diurnal: DiurnalConfig = field(default_factory=DiurnalConfig)
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    events: Tuple[FlashEvent, ...] = ()
    #: Shared contended accounts adversarial policies grind on.
    hot_keys: int = 1
    #: Uncontended destination pool for well-behaved traffic.
    sinks: int = 32
    #: Scale cohort base rates so their sum equals the experiment point's
    #: offered load (keeps load sweeps meaningful); False uses them as-is.
    scale_to_offered: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "cohorts", _coerce_tuple(self.cohorts, CohortSpec, "cohorts"))
        if not self.cohorts:
            raise ConfigurationError("agents config needs at least one cohort")
        names = [c.name for c in self.cohorts]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"cohort names must be unique, got {names}")
        if isinstance(self.diurnal, Mapping):
            object.__setattr__(self, "diurnal", apply_overrides(DiurnalConfig(), self.diurnal))
        if isinstance(self.churn, Mapping):
            object.__setattr__(self, "churn", apply_overrides(ChurnConfig(), self.churn))
        object.__setattr__(self, "events", _coerce_tuple(self.events, FlashEvent, "events"))
        check_positive_int("hot_keys", self.hot_keys)
        check_positive_int("sinks", self.sinks)

    @property
    def total_users(self) -> int:
        return sum(c.users for c in self.cohorts)

    @property
    def total_sessions(self) -> int:
        return sum(c.sessions for c in self.cohorts)

    def max_flash_multiplier(self, cohort: str) -> float:
        """Upper bound on the flash factor ever applied to ``cohort``."""
        relevant = [e.multiplier for e in self.events if not e.cohort or e.cohort == cohort]
        return max(relevant, default=1.0)


def _coerce_tuple(value: Any, cls: type, what: str) -> tuple:
    """Coerce a list/tuple of mappings (spec JSON) into frozen dataclasses."""
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"{what} must be a list, got {value!r}")
    out = []
    for item in value:
        if isinstance(item, cls):
            out.append(item)
        elif isinstance(item, Mapping):
            out.append(apply_overrides(cls(), item))
        else:
            raise ConfigurationError(f"{what} entries must be {cls.__name__} or mappings, got {item!r}")
    return tuple(out)


class Agent:
    """One live session: owned account, issuing client, per-agent policy state.

    A session stands for ``weight`` of its cohort's traffic; its mutable
    fields (sequence number, retry bookkeeping, burst budget) are the
    "session state" behaviour policies read and write through the feedback
    loop.
    """

    __slots__ = (
        "cohort",
        "slot",
        "application",
        "account",
        "client",
        "weight",
        "seq",
        "bursting",
        "state",
    )

    def __init__(
        self, cohort: str, slot: int, application: str, weight: float
    ) -> None:
        self.cohort = cohort
        self.slot = slot
        self.application = application
        self.account = f"agent-{cohort}-{slot}"
        self.client = f"agent-{cohort}-{slot}"
        self.weight = weight
        self.seq = 0
        self.bursting = 0
        #: Free-form per-agent policy scratch space.
        self.state: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Agent({self.cohort}/{self.slot}, w={self.weight:.3f})"


class CohortAgent:
    """Exact-statistics aggregate of one cohort's modeled users.

    Owns the cohort's arrival/churn RNG streams, its live sessions and the
    multiplicative load modifiers.  ``rate_at`` is the instantaneous aggregate
    rate; ``max_rate`` bounds it so the engine can thin a homogeneous Poisson
    stream into the exact non-homogeneous one.
    """

    def __init__(
        self,
        spec: CohortSpec,
        application: str,
        base_rate: float,
        seed: int,
        diurnal: DiurnalConfig,
        churn: ChurnConfig,
        events: Tuple[FlashEvent, ...],
        max_flash: float,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.application = application
        self.base_rate = base_rate
        self.diurnal = diurnal
        self.churn = churn
        self.events = tuple(e for e in events if not e.cohort or e.cohort == spec.name)
        self._max_flash = max_flash
        self.churn_factor = 1.0
        self.throttle = 1.0
        self.arrival_rng = child_rng(seed, f"agents/{spec.name}/arrivals")
        self._churn_rng = child_rng(seed, f"agents/{spec.name}/churn")
        self.policy_rng = child_rng(seed, f"agents/{spec.name}/policy")
        weights = self._session_weights(seed)
        self.agents: List[Agent] = [
            Agent(spec.name, slot, application, weight)
            for slot, weight in enumerate(weights)
        ]
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            self._cumulative.append(acc)
        self._total_weight = acc

    # ------------------------------------------------------------- statistics
    def _session_weights(self, seed: int) -> List[float]:
        spec = self.spec
        if spec.rate_model == "constant":
            return [1.0 / spec.sessions] * spec.sessions
        if spec.rate_model == "empirical":
            raw = [spec.rate_weights[i % len(spec.rate_weights)] for i in range(spec.sessions)]
        else:  # lognormal
            rng = child_rng(seed, f"agents/{spec.name}/weights")
            raw = [math.exp(rng.gauss(0.0, spec.rate_sigma)) for _ in range(spec.sessions)]
        total = sum(raw)
        return [w / total for w in raw]

    def flash_factor(self, t: float) -> float:
        factor = 1.0
        for event in self.events:
            if event.applies(self.name, t):
                factor *= event.multiplier
        return factor

    def rate_at(self, t: float) -> float:
        """Instantaneous aggregate arrival rate of the cohort at time ``t``."""
        return (
            self.base_rate
            * self.diurnal.factor(t)
            * self.churn_factor
            * self.flash_factor(t)
            * self.throttle
        )

    def max_rate(self) -> float:
        """An upper bound on ``rate_at`` over the whole run (thinning envelope)."""
        bound = self.base_rate * self.diurnal.max_factor * self._max_flash
        if self.churn.enabled:
            bound *= self.churn.max_factor
        return bound

    # --------------------------------------------------------------- sampling
    def pick_agent(self) -> Agent:
        """Attribute one aggregate arrival to a session (weighted, seeded)."""
        point = self.arrival_rng.random() * self._total_weight
        index = min(bisect.bisect_left(self._cumulative, point), len(self.agents) - 1)
        return self.agents[index]

    def churn_step(self) -> float:
        """Advance the churn random walk by one interval; returns the factor."""
        step = math.exp(self._churn_rng.gauss(0.0, self.churn.sigma))
        self.churn_factor = min(
            self.churn.max_factor, max(self.churn.min_factor, self.churn_factor * step)
        )
        return self.churn_factor


class Population:
    """Every cohort of a run plus the shared account universe they transact on."""

    def __init__(
        self,
        config: AgentPopulationConfig,
        applications: Sequence[str],
        seed: int,
        offered_load: Optional[float] = None,
        initial_balance: float = 1.0e9,
    ) -> None:
        self.config = config
        self.seed = seed
        self.initial_balance = initial_balance
        natural_total = sum(c.users * c.tx_rate for c in config.cohorts)
        scale = 1.0
        if config.scale_to_offered and offered_load is not None and offered_load > 0:
            scale = offered_load / natural_total
        self.cohorts: List[CohortAgent] = []
        for index, spec in enumerate(config.cohorts):
            application = spec.application or applications[index % len(applications)]
            self.cohorts.append(
                CohortAgent(
                    spec=spec,
                    application=application,
                    base_rate=spec.users * spec.tx_rate * scale,
                    seed=seed,
                    diurnal=config.diurnal,
                    churn=config.churn,
                    events=config.events,
                    max_flash=config.max_flash_multiplier(spec.name),
                )
            )
        self.hot_keys = [f"hot-agent-{i}" for i in range(config.hot_keys)]
        self.sinks = [f"sink-agent-{i}" for i in range(config.sinks)]

    # ---------------------------------------------------------------- queries
    @property
    def total_rate(self) -> float:
        """Aggregate base offered rate (tx/s) across every cohort."""
        return sum(c.base_rate for c in self.cohorts)

    @property
    def total_users(self) -> int:
        return self.config.total_users

    def agent_count(self) -> int:
        """Live Agent objects — O(cohorts), never O(users)."""
        return sum(len(c.agents) for c in self.cohorts)

    def cohort(self, name: str) -> CohortAgent:
        for cohort in self.cohorts:
            if cohort.name == name:
                return cohort
        raise ConfigurationError(f"unknown cohort {name!r}")

    def initial_state(self) -> Dict[str, Dict[str, object]]:
        """World state for every account any agent transaction can touch."""
        from repro.contracts.accounting import account_key

        state: Dict[str, Dict[str, object]] = {}
        for cohort in self.cohorts:
            for agent in cohort.agents:
                state[account_key(agent.account)] = {
                    "balance": self.initial_balance,
                    "owner": agent.client,
                }
        for name in self.hot_keys + self.sinks:
            state[account_key(name)] = {"balance": 0.0, "owner": "treasury"}
        return state
