"""The ``agents`` workload type: population-driven, closed-loop load.

Registered in the global workload registry like any generator, but marked
``population_driven``: the run layer (:func:`repro.paradigms.run.prepare_driver`)
builds a :class:`~repro.agents.engine.PopulationEngine` driver from it instead
of pre-generating an open-loop transaction list.  The classic
``generate()`` / ``initial_state()`` interface still works — it samples the
population open-loop without feedback — so tools that only know the
:class:`~repro.workload.base.WorkloadBase` contract keep functioning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.agents.engine import PopulationEngine
from repro.agents.policy import agent_policy_registry
from repro.agents.population import AgentPopulationConfig, Population
from repro.common.registry import register_workload
from repro.contracts.accounting import AccountingContract, Transfer
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workload.generator import WorkloadConfig


@register_workload("agents")
class AgentWorkload(WorkloadBase):
    """Stateful agent population driving the deployment through feedback."""

    contract = "accounting"
    #: The run layer builds a PopulationEngine driver instead of replaying a list.
    population_driven = True
    config_hint = (
        "workload.agents = {cohorts: [{name, users, tx_rate, sessions, policy, "
        "policy_params, rate_model, rate_sigma, rate_weights, application}], "
        "diurnal: {amplitude, period, phase}, churn: {sigma, interval, min_factor, "
        "max_factor}, events: [{at, duration, multiplier, cohort}], hot_keys, "
        "sinks, scale_to_offered}"
    )

    def __init__(self, config: "WorkloadConfig") -> None:
        super().__init__(config)
        self.agents_config: AgentPopulationConfig = config.agents or AgentPopulationConfig()
        # Fail fast on unknown policy names — before any cluster is built —
        # with the registry's standard "expected one of [...]" error.
        for cohort in self.agents_config.cohorts:
            agent_policy_registry.get(cohort.policy)
        self._sample: Optional[Population] = None

    # ------------------------------------------------------------ driver path
    def build_driver(self, offered_load: Optional[float], duration: float) -> PopulationEngine:
        """The closed-loop driver for one run at one offered load."""
        population = Population(
            self.agents_config,
            applications=self._applications,
            seed=self.config.seed,
            offered_load=offered_load,
            initial_balance=self.config.initial_balance,
        )
        return PopulationEngine(
            population, duration=duration, transfer_amount=self.config.transfer_amount
        )

    # -------------------------------------------- open-loop fallback sampling
    def _sample_population(self) -> Population:
        if self._sample is None:
            self._sample = Population(
                self.agents_config,
                applications=self._applications,
                seed=self.config.seed,
                offered_load=None,
                initial_balance=self.config.initial_balance,
            )
        return self._sample

    def _build_transaction(self, index: int) -> Transaction:
        """Open-loop sample: round-robin cohorts/sessions, policy-shaped targets."""
        population = self._sample_population()
        cohorts = population.cohorts
        cohort = cohorts[index % len(cohorts)]
        agent = cohort.agents[(index // len(cohorts)) % len(cohort.agents)]
        agent.seq += 1
        hot_probability = float(
            cohort.spec.policy_params.get(
                "hot_probability", 1.0 if cohort.spec.policy == "hot-key-grinder" else 0.0
            )
        )
        if self._rng.random() < hot_probability:
            destination = population.hot_keys[index % len(population.hot_keys)]
        else:
            destination = population.sinks[index % len(population.sinks)]
        return AccountingContract.make_transfer_transaction(
            tx_id=f"ag-{agent.cohort}-{agent.slot}-{agent.seq}",
            application=agent.application,
            client=agent.client,
            transfers=[
                Transfer(
                    source=agent.account,
                    destination=destination,
                    amount=self.config.transfer_amount,
                )
            ],
        )

    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, object]:
        """The population's account universe covers every sampled transaction."""
        return self._sample_population().initial_state()

    # -------------------------------------------------------------- analytics
    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["cohorts"] = len(self.agents_config.cohorts)
        summary["modeled_users"] = self.agents_config.total_users
        summary["live_sessions"] = self.agents_config.total_sessions
        return summary
