"""Benchmark harness regenerating every figure of the paper's evaluation.

Each figure is declared as an :class:`~repro.experiments.ExperimentSpec`
(``figure5_spec`` / ``figure6_spec`` / ``figure7_spec``) and executed by the
:class:`~repro.experiments.SweepEngine`:

* :mod:`repro.bench.figure5` — throughput/latency vs. block size (Figure 5).
* :mod:`repro.bench.figure6` — latency/throughput curves for workloads with
  0 %, 20 %, 80 % and 100 % contention, including the cross-application
  variant OXII* (Figure 6).
* :mod:`repro.bench.figure7` — multi-datacenter scalability, moving one node
  group at a time to a far data center (Figure 7).

Each module keeps a ``run_*`` function returning the paper-shaped structured
results plus a ``format`` helper.  The :mod:`repro.bench.cli` module wires
them — and the generic ``run`` / ``matrix`` / ``list`` spec commands — into
``python -m repro.bench``.
"""

from repro.bench.runner import BenchmarkSettings, quick_comparison, run_point
from repro.bench.figure5 import Figure5Result, figure5_spec, run_figure5
from repro.bench.figure6 import Figure6Result, figure6_spec, run_figure6
from repro.bench.figure7 import Figure7Result, figure7_spec, run_figure7

__all__ = [
    "BenchmarkSettings",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "quick_comparison",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_point",
]
