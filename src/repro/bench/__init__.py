"""Benchmark harness regenerating every figure of the paper's evaluation.

* :mod:`repro.bench.figure5` — throughput/latency vs. block size (Figure 5).
* :mod:`repro.bench.figure6` — latency/throughput curves for workloads with
  0 %, 20 %, 80 % and 100 % contention, including the cross-application
  variant OXII* (Figure 6).
* :mod:`repro.bench.figure7` — multi-datacenter scalability, moving one node
  group at a time to a far data center (Figure 7).

Each module exposes a ``run_*`` function returning structured results plus a
``format`` helper that prints the same series the paper plots.  The
:mod:`repro.bench.cli` module wires them into ``python -m repro.bench``.
"""

from repro.bench.runner import BenchmarkSettings, quick_comparison, run_point
from repro.bench.figure5 import Figure5Result, run_figure5
from repro.bench.figure6 import Figure6Result, run_figure6
from repro.bench.figure7 import Figure7Result, run_figure7

__all__ = [
    "BenchmarkSettings",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "quick_comparison",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_point",
]
