"""Command-line entry point: ``python -m repro.bench <command>``.

The generic, spec-driven interface::

    python -m repro.bench run examples/specs/smoke.json --json out.json
    python -m repro.bench run figure6 --quick --workers 4
    python -m repro.bench matrix examples/specs/contention_sweep.toml
    python -m repro.bench list

plus the legacy figure shortcuts (thin wrappers over the same engine)::

    python -m repro.bench quick --contention 0.2
    python -m repro.bench figure5 --quick
    python -m repro.bench figure6 --contention 0 0.8 --quick
    python -m repro.bench figure7 --group clients --quick --json out.json
"""

from __future__ import annotations

import argparse
import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.figure5 import figure5_spec, format_figure5, run_figure5
from repro.bench.figure6 import (
    DEFAULT_CONTENTION_LEVELS,
    figure6_spec,
    format_figure6,
    run_figure6,
)
from repro.bench.figure7 import GROUPS, figure7_spec, format_figure7, run_figure7
from repro.bench.reporting import (
    format_comparison,
    format_experiment_result,
    format_matrix,
    rows_to_json,
)
from repro.bench.runner import BenchmarkSettings, quick_comparison
from repro.experiments import (
    ExperimentSpec,
    SweepEngine,
    contract_registry,
    ensure_builtins,
    paradigm_registry,
    workload_registry,
)

#: Built-in named specs usable wherever a spec file path is expected.
BUILTIN_SPECS: Dict[str, Callable[[BenchmarkSettings], ExperimentSpec]] = {
    "figure5": lambda settings: figure5_spec(settings=settings),
    "figure6": lambda settings: figure6_spec(settings=settings),
    "figure7": lambda settings: figure7_spec(settings=settings),
}


#: Post-parse defaults for the shared flags.  These deliberately live outside
#: the parser: ``parser.set_defaults`` mutates the default on the matching
#: actions, and ``parents=[common]`` *shares* those action objects with every
#: subcommand parser — so a ``set_defaults`` value would replace the
#: subcommands' ``SUPPRESS`` defaults and clobber any flag given *before* the
#: subcommand (``bench --quick quick`` would silently drop ``--quick``).
_SHARED_DEFAULTS = dict(
    quick=False, duration=None, json_path=None, workers=None,
    profile=False, profile_out=None, backend="sim", realtime_speed=None,
)


def parse_args(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    """Parse ``argv`` and fill in the shared-flag defaults post-parse."""
    args = build_parser().parse_args(argv)
    for dest, default in _SHARED_DEFAULTS.items():
        if not hasattr(args, dest):
            setattr(args, dest, default)
    return args


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the benchmark CLI.

    The shared flags (``--quick``, ``--duration``, ``--json``, ``--workers``)
    are accepted both before and after the subcommand; every copy uses
    ``SUPPRESS`` defaults so they only bind when actually given (defaults are
    applied afterwards by :func:`parse_args`).
    """
    common = argparse.ArgumentParser(add_help=False, argument_default=argparse.SUPPRESS)
    common.add_argument("--quick", action="store_true", help="smaller sweeps, shorter runs")
    common.add_argument("--duration", type=float, help="submission phase length [s]")
    common.add_argument("--json", dest="json_path", help="write results to a JSON file")
    common.add_argument(
        "--workers",
        type=int,
        help="run experiment points in parallel across N worker processes",
    )
    common.add_argument(
        "--profile",
        action="store_true",
        help="profile the run: per-phase wall-clock breakdown plus a cProfile "
        "top-N hotspot report (implies in-process execution)",
    )
    common.add_argument(
        "--profile-out",
        dest="profile_out",
        help="where to write the JSON hotspot artifact (default: profile.json)",
    )
    common.add_argument(
        "--backend",
        choices=("sim", "asyncio", "asyncio-tcp"),
        help="transport/clock backend: 'sim' (deterministic simulation, the "
        "default) or a real asyncio backend measuring wall clock "
        "(see docs/performance.md)",
    )
    common.add_argument(
        "--realtime-speed",
        dest="realtime_speed",
        type=float,
        help="pacing factor for real backends: one simulated second takes "
        "1/SPEED wall seconds (default 1.0, the honest wall clock)",
    )

    parser = argparse.ArgumentParser(
        prog="parblockchain-bench",
        description="Run declarative experiment specs and regenerate the paper's figures.",
        parents=[common],
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny end-to-end run of all three paradigms (CI perf smoke); no subcommand needed",
    )
    subparsers = parser.add_subparsers(dest="command", required=False)

    run = subparsers.add_parser(
        "run", parents=[common], help="execute an experiment spec (file or built-in name)"
    )
    run.add_argument("spec", help=f"path to a .json/.toml spec, or one of {sorted(BUILTIN_SPECS)}")
    run.add_argument("--serial", action="store_true", default=False,
                     help="force serial in-process execution")

    matrix = subparsers.add_parser(
        "matrix", parents=[common], help="expand a spec into its point matrix (no runs)"
    )
    matrix.add_argument("spec", help=f"path to a .json/.toml spec, or one of {sorted(BUILTIN_SPECS)}")

    subparsers.add_parser(
        "list", parents=[common],
        help="registered paradigms/contracts/workloads and built-in specs",
    )

    quick = subparsers.add_parser(
        "quick", parents=[common], help="one-shot comparison of the three paradigms"
    )
    quick.add_argument("--contention", type=float, default=0.0)
    quick.add_argument("--load", type=float, default=1500.0)

    subparsers.add_parser("figure5", parents=[common], help="throughput/latency vs block size")

    figure6 = subparsers.add_parser("figure6", parents=[common], help="performance under contention")
    figure6.add_argument(
        "--contention", type=float, nargs="+", default=list(DEFAULT_CONTENTION_LEVELS)
    )

    figure7 = subparsers.add_parser("figure7", parents=[common], help="multi-datacenter scalability")
    figure7.add_argument("--group", choices=sorted(GROUPS), nargs="+", default=list(GROUPS))
    return parser


def _settings(args: argparse.Namespace) -> BenchmarkSettings:
    settings = BenchmarkSettings(quick=args.quick)
    if args.duration is not None:
        settings = settings.with_duration(args.duration)
    if args.backend != "sim":
        settings = settings.with_overrides(
            backend=args.backend,
            realtime_speed=args.realtime_speed if args.realtime_speed is not None else 1.0,
        )
    return settings


def _engine(args: argparse.Namespace) -> Optional[SweepEngine]:
    """Engine for figure subcommands: parallel only when --workers is given."""
    if args.workers is not None:
        return SweepEngine(workers=args.workers, parallel=args.workers > 1)
    return None


def _resolve_spec(ref: str, args: argparse.Namespace, settings: BenchmarkSettings) -> ExperimentSpec:
    """A spec from a file path or a built-in builder name.

    ``--duration`` overrides the spec's duration either way; ``--quick`` only
    shapes the built-in specs (a file spec carries its own loads), so it is
    called out rather than silently ignored.
    """
    path = Path(ref)
    if path.exists():
        spec = ExperimentSpec.from_file(path)
        if args.quick:
            print("note: --quick only affects built-in specs; using the file's loads as written")
    elif ref in BUILTIN_SPECS:
        spec = BUILTIN_SPECS[ref](settings)
    else:
        raise SystemExit(
            f"error: {ref!r} is neither a spec file nor a built-in spec "
            f"(expected one of {sorted(BUILTIN_SPECS)})"
        )
    if args.duration is not None and spec.duration != args.duration:
        spec = dataclasses.replace(spec, duration=args.duration)
    if args.backend != "sim":
        spec = _with_backend(spec, args.backend, args.realtime_speed or 1.0)
    return spec


def _with_backend(spec: ExperimentSpec, backend: str, realtime_speed: float) -> ExperimentSpec:
    """Rewrite every scenario's system overrides to run on ``backend``."""
    scenarios = tuple(
        dataclasses.replace(
            scenario,
            system={**dict(scenario.system), "backend": backend, "realtime_speed": realtime_speed},
        )
        for scenario in spec.scenarios
    )
    return dataclasses.replace(spec, scenarios=scenarios)


def _cmd_run(
    args: argparse.Namespace,
    settings: BenchmarkSettings,
    rows_sink: Optional[List[dict]] = None,
) -> int:
    spec = _resolve_spec(args.spec, args, settings)
    engine = SweepEngine(
        workers=args.workers,
        # --profile forces in-process execution so the cProfile capture (and
        # the phase profiler installed via REPRO_PROFILE) sees the actual runs.
        parallel=not args.serial and not args.profile
        and (args.workers is None or args.workers > 1),
    )
    points, workers, use_pool = engine.plan(spec)
    if use_pool:
        # Parallel pools report nothing per point, so announce the shape up front.
        print(f"running {len(points)} point(s) on {workers} worker(s)...")
    result = engine.run(spec, progress=lambda p: print(f"  running {p.scenario} @ {p.offered_load:.0f} tps"))
    print(format_experiment_result(result))
    if rows_sink is not None:
        rows_sink.extend(row.metrics.as_dict() for row in result.rows)
    if args.json_path:
        result.to_json(args.json_path)
        print(f"\nwrote {len(result.rows)} rows (provenance included) to {args.json_path}")
    if not all(row.metrics.committed > 0 for row in result.rows):
        print("FAILED: a scenario point committed no transactions")
        return 1
    return 0


def _cmd_matrix(args: argparse.Namespace, settings: BenchmarkSettings) -> int:
    spec = _resolve_spec(args.spec, args, settings)
    points = spec.expand()
    print(f"Experiment {spec.name!r} (spec {spec.spec_hash()})")
    print(format_matrix(points))
    if args.json_path:
        rows_to_json([p.as_dict() for p in points], args.json_path)
        print(f"\nwrote {len(points)} points to {args.json_path}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    ensure_builtins()
    print("paradigms: ", ", ".join(paradigm_registry.names()))
    print("contracts: ", ", ".join(contract_registry.names()))
    print("workloads:")
    for name in workload_registry.names():
        factory = workload_registry.get(name)
        contract = getattr(factory, "contract", None)
        closed_loop = getattr(factory, "population_driven", False)
        tags = f" (contract: {contract}{', closed-loop' if closed_loop else ''})" if contract else ""
        print(f"  {name}{tags}")
        hint = getattr(factory, "config_hint", "")
        for line in str(hint).strip().splitlines():
            print(f"      {line.strip()}")
    from repro.agents import agent_policy_registry

    print("agent policies:", ", ".join(agent_policy_registry.names()))
    print("built-in specs:", ", ".join(sorted(BUILTIN_SPECS)))
    return 0


def _aggregate_phase_times(rows: List[dict]) -> Dict[str, float]:
    """Sum the per-run ``phase_times`` breakdowns across result rows."""
    totals: Dict[str, float] = {}
    for row in rows:
        phase_times = row.get("phase_times")
        if not isinstance(phase_times, dict):
            continue
        for phase, seconds in phase_times.items():
            totals[phase] = totals.get(phase, 0.0) + float(seconds)
    return totals


def _profiled(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the selected command under the profilers and write the artifact.

    Two layers, matching :mod:`repro.profiling`: the phase profiler (enabled
    via the ``REPRO_PROFILE`` environment flag so every ``execute_run`` in the
    process picks it up) attributes simulated work to run phases, and a
    ``cProfile`` capture over the whole dispatch yields the top-N hotspot
    table that becomes the CI artifact.
    """
    import os

    from repro.profiling import (
        ENV_FLAG,
        capture_profile,
        format_hotspots,
        hotspot_rows,
        write_hotspot_report,
    )

    previous = os.environ.get(ENV_FLAG)
    os.environ[ENV_FLAG] = "1"
    rows: List[dict] = []
    try:
        code, profile = capture_profile(_dispatch, args, parser, rows)
    finally:
        if previous is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = previous
    hotspots = hotspot_rows(profile)
    phase_times = _aggregate_phase_times(rows)
    if phase_times:
        print("\nPhase breakdown (wall-clock seconds, summed over runs):")
        for phase, seconds in phase_times.items():
            print(f"  {phase:<12} {seconds:9.4f}")
    print("\nTop hotspots (by own time):")
    print(format_hotspots(hotspots[:15]))
    target = write_hotspot_report(
        args.profile_out or "profile.json",
        hotspots,
        phase_times=phase_times or None,
        meta={"command": args.command or "smoke", "quick": args.quick},
    )
    print(f"\nwrote profile artifact to {target}")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the selected benchmark and print (and optionally save) its results."""
    parser = build_parser()
    args = parse_args(argv)
    if args.profile:
        return _profiled(args, parser)
    return _dispatch(args, parser)


def _dispatch(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    rows_sink: Optional[List[dict]] = None,
) -> int:
    """Execute the selected subcommand (``rows_sink`` collects result rows)."""
    rows: List[dict]

    if args.smoke:
        if args.command is not None:
            parser.error(f"--smoke cannot be combined with the {args.command!r} subcommand")
        settings = BenchmarkSettings(
            duration=args.duration if args.duration is not None else 1.0,
            drain=2.0,
            quick=True,
        )
        if args.backend != "sim":
            settings = settings.with_overrides(
                backend=args.backend,
                realtime_speed=args.realtime_speed if args.realtime_speed is not None else 1.0,
            )
        results = quick_comparison(contention=0.2, offered_load=500.0, settings=settings)
        print(format_comparison(results, title="Smoke: contention 20% @ 500 tps"))
        rows = [m.as_dict() for m in results.values()]
        if rows_sink is not None:
            rows_sink.extend(rows)
        if args.json_path:
            rows_to_json(rows, args.json_path)
            print(f"\nwrote {len(rows)} rows to {args.json_path}")
        if not all(m.committed > 0 for m in results.values()):
            print("smoke FAILED: a paradigm committed no transactions")
            return 1
        return 0

    if args.command is None:
        parser.error("a subcommand is required unless --smoke is given")

    settings = _settings(args)

    if args.command == "run":
        return _cmd_run(args, settings, rows_sink)
    if args.command == "matrix":
        return _cmd_matrix(args, settings)
    if args.command == "list":
        return _cmd_list(args)

    if args.command == "quick":
        results = quick_comparison(
            contention=args.contention, offered_load=args.load, settings=settings
        )
        print(format_comparison(results, title=f"Contention {args.contention:.0%} @ {args.load:.0f} tps"))
        rows = [m.as_dict() for m in results.values()]
    elif args.command == "figure5":
        result = run_figure5(settings=settings, engine=_engine(args))
        print(format_figure5(result))
        rows = result.as_rows()
    elif args.command == "figure6":
        result = run_figure6(
            contention_levels=args.contention, settings=settings, engine=_engine(args)
        )
        print(format_figure6(result))
        rows = result.as_rows()
    elif args.command == "figure7":
        result = run_figure7(groups=args.group, settings=settings, engine=_engine(args))
        print(format_figure7(result))
        rows = result.as_rows()
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2

    if rows_sink is not None:
        rows_sink.extend(rows)
    if args.json_path:
        rows_to_json(rows, args.json_path)
        print(f"\nwrote {len(rows)} rows to {args.json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
