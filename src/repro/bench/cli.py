"""Command-line entry point: ``python -m repro.bench <figure>``.

Examples::

    python -m repro.bench quick --contention 0.2
    python -m repro.bench figure5 --quick
    python -m repro.bench figure6 --contention 0 0.8 --quick
    python -m repro.bench figure7 --group clients --quick --json out.json
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.bench.figure5 import format_figure5, run_figure5
from repro.bench.figure6 import DEFAULT_CONTENTION_LEVELS, format_figure6, run_figure6
from repro.bench.figure7 import GROUPS, format_figure7, run_figure7
from repro.bench.reporting import format_comparison, rows_to_json
from repro.bench.runner import BenchmarkSettings, quick_comparison


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the benchmark CLI."""
    parser = argparse.ArgumentParser(
        prog="parblockchain-bench",
        description="Regenerate the ParBlockchain paper's evaluation figures.",
    )
    parser.add_argument("--quick", action="store_true", help="smaller sweeps, shorter runs")
    parser.add_argument("--duration", type=float, default=None, help="submission phase length [s]")
    parser.add_argument("--json", dest="json_path", default=None, help="write result rows to a JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny end-to-end run of all three paradigms (CI perf smoke); no subcommand needed",
    )
    subparsers = parser.add_subparsers(dest="command", required=False)

    quick = subparsers.add_parser("quick", help="one-shot comparison of the three paradigms")
    quick.add_argument("--contention", type=float, default=0.0)
    quick.add_argument("--load", type=float, default=1500.0)

    subparsers.add_parser("figure5", help="throughput/latency vs block size")

    figure6 = subparsers.add_parser("figure6", help="performance under contention")
    figure6.add_argument(
        "--contention", type=float, nargs="+", default=list(DEFAULT_CONTENTION_LEVELS)
    )

    figure7 = subparsers.add_parser("figure7", help="multi-datacenter scalability")
    figure7.add_argument("--group", choices=sorted(GROUPS), nargs="+", default=list(GROUPS))
    return parser


def _settings(args: argparse.Namespace) -> BenchmarkSettings:
    settings = BenchmarkSettings(quick=args.quick)
    if args.duration is not None:
        settings = settings.with_duration(args.duration)
    return settings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the selected benchmark and print (and optionally save) its results."""
    parser = build_parser()
    args = parser.parse_args(argv)
    rows: List[dict]

    if args.smoke:
        if args.command is not None:
            parser.error(f"--smoke cannot be combined with the {args.command!r} subcommand")
        settings = BenchmarkSettings(
            duration=args.duration if args.duration is not None else 1.0,
            drain=2.0,
            quick=True,
        )
        results = quick_comparison(contention=0.2, offered_load=500.0, settings=settings)
        print(format_comparison(results, title="Smoke: contention 20% @ 500 tps"))
        rows = [m.as_dict() for m in results.values()]
        if args.json_path:
            rows_to_json(rows, args.json_path)
            print(f"\nwrote {len(rows)} rows to {args.json_path}")
        if not all(m.committed > 0 for m in results.values()):
            print("smoke FAILED: a paradigm committed no transactions")
            return 1
        return 0

    if args.command is None:
        parser.error("a subcommand is required unless --smoke is given")

    settings = _settings(args)

    if args.command == "quick":
        results = quick_comparison(
            contention=args.contention, offered_load=args.load, settings=settings
        )
        print(format_comparison(results, title=f"Contention {args.contention:.0%} @ {args.load:.0f} tps"))
        rows = [m.as_dict() for m in results.values()]
    elif args.command == "figure5":
        result = run_figure5(settings=settings)
        print(format_figure5(result))
        rows = result.as_rows()
    elif args.command == "figure6":
        result = run_figure6(contention_levels=args.contention, settings=settings)
        print(format_figure6(result))
        rows = result.as_rows()
    elif args.command == "figure7":
        result = run_figure7(groups=args.group, settings=settings)
        print(format_figure7(result))
        rows = result.as_rows()
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2

    if args.json_path:
        rows_to_json(rows, args.json_path)
        print(f"\nwrote {len(rows)} rows to {args.json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
