"""Figure 5 — throughput and latency as a function of the block size.

The paper sweeps the number of transactions per block from 10 to 1000 on a
no-contention workload and reports, for each paradigm, the peak throughput and
the end-to-end latency at that peak.  OXII's curve rises (fixed per-block
costs amortise) until ~200 transactions per block and then falls again because
dependency-graph generation is quadratic in the block size; OX is essentially
flat (sequential execution dominates) and XOV peaks around ~100 transactions
per block.

The sweep is declared as an :class:`~repro.experiments.ExperimentSpec`
(:func:`figure5_spec`) and executed by the sweep engine; :func:`run_figure5`
reshapes the result rows into the paper's per-paradigm peak series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.bench.runner import BenchmarkSettings
from repro.common.config import SystemConfig
from repro.experiments import ExperimentSpec, ScenarioSpec, SweepEngine, config_overrides
from repro.metrics.saturation import find_peak

DEFAULT_BLOCK_SIZES: Sequence[int] = (10, 50, 100, 200, 400, 700, 1000)
QUICK_BLOCK_SIZES: Sequence[int] = (50, 200, 800)
PARADIGM_ORDER: Sequence[str] = ("OX", "XOV", "OXII")


@dataclass(frozen=True)
class Figure5Point:
    """Peak throughput and its latency for one (paradigm, block size) cell."""

    paradigm: str
    block_size: int
    peak_throughput: float
    latency_at_peak: float

    def as_dict(self) -> dict:
        return {
            "paradigm": self.paradigm,
            "block_size": self.block_size,
            "peak_throughput": self.peak_throughput,
            "latency_at_peak": self.latency_at_peak,
        }


@dataclass(frozen=True)
class Figure5Result:
    """All points of the block-size sweep (Figures 5(a) and 5(b))."""

    points: Sequence[Figure5Point]

    def series(self, paradigm: str) -> List[Figure5Point]:
        """Points of one paradigm ordered by block size."""
        return sorted(
            (p for p in self.points if p.paradigm == paradigm), key=lambda p: p.block_size
        )

    def best_block_size(self, paradigm: str) -> int:
        """Block size at which ``paradigm`` peaks."""
        series = self.series(paradigm)
        if not series:
            raise ValueError(f"no points for paradigm {paradigm!r}")
        return max(series, key=lambda p: p.peak_throughput).block_size

    def as_rows(self) -> List[dict]:
        """Flat list of dict rows (one per point)."""
        return [p.as_dict() for p in self.points]


def figure5_spec(
    block_sizes: Optional[Sequence[int]] = None,
    settings: Optional[BenchmarkSettings] = None,
    paradigms: Sequence[str] = PARADIGM_ORDER,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentSpec:
    """The Figure 5 sweep as a declarative experiment spec."""
    settings = settings or BenchmarkSettings()
    if block_sizes is None:
        block_sizes = QUICK_BLOCK_SIZES if settings.quick else DEFAULT_BLOCK_SIZES
    base = base_config or SystemConfig()
    scenarios = []
    for block_size in block_sizes:
        for paradigm in paradigms:
            config = base.with_block_size(block_size)
            scenarios.append(
                ScenarioSpec(
                    name=f"bs{block_size}/{paradigm}",
                    paradigm=paradigm,
                    contention=0.0,
                    loads=tuple(settings.loads_for(paradigm)),
                    system=config_overrides(config),
                    tags=(f"block_size:{block_size}",),
                )
            )
    return ExperimentSpec(
        name="figure5",
        description="Peak throughput/latency vs block size (paper Figure 5)",
        scenarios=tuple(scenarios),
        duration=settings.duration,
        drain=settings.drain,
        warmup_fraction=settings.warmup_fraction,
        seeds=(settings.seed,),
        tags=("figure5",),
    )


def run_figure5(
    block_sizes: Optional[Sequence[int]] = None,
    settings: Optional[BenchmarkSettings] = None,
    paradigms: Sequence[str] = PARADIGM_ORDER,
    base_config: Optional[SystemConfig] = None,
    engine: Optional[SweepEngine] = None,
) -> Figure5Result:
    """Regenerate Figure 5: for every block size, find each paradigm's peak."""
    settings = settings or BenchmarkSettings()
    if block_sizes is None:
        block_sizes = QUICK_BLOCK_SIZES if settings.quick else DEFAULT_BLOCK_SIZES
    spec = figure5_spec(block_sizes, settings, paradigms, base_config)
    result = (engine or SweepEngine(parallel=False)).run(spec)
    points: List[Figure5Point] = []
    for block_size in block_sizes:
        for paradigm in paradigms:
            sweep = find_peak(result.metrics_for(f"bs{block_size}/{paradigm}"))
            points.append(
                Figure5Point(
                    paradigm=paradigm,
                    block_size=block_size,
                    peak_throughput=sweep.peak_throughput,
                    latency_at_peak=sweep.peak_latency,
                )
            )
    return Figure5Result(points=tuple(points))


def format_figure5(result: Figure5Result) -> str:
    """Render the Figure 5 series as a text table."""
    lines = ["Figure 5 — peak throughput [txn/s] and latency [s] vs block size"]
    header = f"{'block size':>10} " + " ".join(f"{p:>22}" for p in PARADIGM_ORDER)
    lines.append(header)
    block_sizes = sorted({p.block_size for p in result.points})
    table: Mapping[tuple, Figure5Point] = {(p.paradigm, p.block_size): p for p in result.points}
    for block_size in block_sizes:
        cells = []
        for paradigm in PARADIGM_ORDER:
            point = table.get((paradigm, block_size))
            if point is None:
                cells.append(f"{'-':>22}")
            else:
                cells.append(f"{point.peak_throughput:>12.0f} @ {point.latency_at_peak:>6.3f}s")
        lines.append(f"{block_size:>10} " + " ".join(cells))
    return "\n".join(lines)
