"""Figure 6 — latency/throughput curves under increasing contention.

For each degree of contention (0 %, 20 %, 80 %, 100 %) the paper plots, per
paradigm, average latency against measured throughput while the offered load
increases.  Four series appear in each sub-figure: OX, XOV, OXII (conflicts
within an application) and OXII* (conflicts across applications, the dashed
line), except at 0 % contention where OXII and OXII* coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.runner import BenchmarkSettings, run_point
from repro.common.config import SystemConfig
from repro.metrics.collector import RunMetrics
from repro.workload.generator import ConflictScope

DEFAULT_CONTENTION_LEVELS: Sequence[float] = (0.0, 0.2, 0.8, 1.0)
#: Series plotted in every sub-figure: (label, paradigm, conflict scope).
SERIES: Sequence[Tuple[str, str, ConflictScope]] = (
    ("OX", "OX", ConflictScope.WITHIN_APPLICATION),
    ("XOV", "XOV", ConflictScope.WITHIN_APPLICATION),
    ("OXII", "OXII", ConflictScope.WITHIN_APPLICATION),
    ("OXII*", "OXII", ConflictScope.CROSS_APPLICATION),
)


@dataclass(frozen=True)
class Figure6Result:
    """Measured points for every (contention level, series, offered load)."""

    #: contention -> series label -> list of RunMetrics ordered by offered load.
    curves: Mapping[float, Mapping[str, Sequence[RunMetrics]]]

    def contention_levels(self) -> List[float]:
        """The evaluated degrees of contention."""
        return sorted(self.curves)

    def series(self, contention: float, label: str) -> Sequence[RunMetrics]:
        """One latency/throughput curve."""
        return self.curves[contention][label]

    def peak_throughput(self, contention: float, label: str) -> float:
        """Highest measured throughput of one series."""
        return max(point.throughput for point in self.series(contention, label))

    def as_rows(self) -> List[dict]:
        """Flat list of dict rows (one per measured point)."""
        rows: List[dict] = []
        for contention, by_label in self.curves.items():
            for label, points in by_label.items():
                for point in points:
                    row = point.as_dict()
                    row["series"] = label
                    row["contention"] = contention
                    rows.append(row)
        return rows


def run_figure6(
    contention_levels: Sequence[float] = DEFAULT_CONTENTION_LEVELS,
    settings: Optional[BenchmarkSettings] = None,
    base_config: Optional[SystemConfig] = None,
    include_cross_application: bool = True,
) -> Figure6Result:
    """Regenerate Figure 6: latency/throughput curves per contention level."""
    settings = settings or BenchmarkSettings()
    curves: Dict[float, Dict[str, List[RunMetrics]]] = {}
    for contention in contention_levels:
        by_label: Dict[str, List[RunMetrics]] = {}
        for label, paradigm, scope in SERIES:
            if label == "OXII*" and (not include_cross_application or contention == 0.0):
                # With no conflicting transactions there is no cross-application
                # contention; the paper plots a single OXII curve in Figure 6(a).
                continue
            points: List[RunMetrics] = []
            for load in settings.loads_for(paradigm):
                points.append(
                    run_point(
                        paradigm,
                        offered_load=load,
                        contention=contention,
                        conflict_scope=scope,
                        settings=settings,
                        system_config=base_config,
                    )
                )
            by_label[label] = points
        curves[contention] = by_label
    return Figure6Result(curves=curves)


def format_figure6(result: Figure6Result) -> str:
    """Render the Figure 6 curves as text tables (one per contention level)."""
    lines: List[str] = []
    for contention in result.contention_levels():
        lines.append(
            f"Figure 6 — contention {contention:.0%}: latency [s] vs throughput [txn/s]"
        )
        for label in ("OX", "XOV", "OXII", "OXII*"):
            try:
                points = result.series(contention, label)
            except KeyError:
                continue
            series = ", ".join(
                f"({p.throughput:.0f} tps, {p.latency_avg:.3f}s)" for p in points
            )
            lines.append(f"  {label:<6} {series}")
        lines.append("")
    return "\n".join(lines)
