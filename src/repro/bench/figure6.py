"""Figure 6 — latency/throughput curves under increasing contention.

For each degree of contention (0 %, 20 %, 80 %, 100 %) the paper plots, per
paradigm, average latency against measured throughput while the offered load
increases.  Four series appear in each sub-figure: OX, XOV, OXII (conflicts
within an application) and OXII* (conflicts across applications, the dashed
line), except at 0 % contention where OXII and OXII* coincide.

The grid is declared as an :class:`~repro.experiments.ExperimentSpec`
(:func:`figure6_spec`) — one scenario per (contention, series) — and executed
by the sweep engine; :func:`run_figure6` reshapes the rows into the paper's
curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.runner import BenchmarkSettings
from repro.common.config import SystemConfig
from repro.experiments import ExperimentSpec, ScenarioSpec, SweepEngine, config_overrides
from repro.metrics.collector import RunMetrics
from repro.workload.generator import ConflictScope

DEFAULT_CONTENTION_LEVELS: Sequence[float] = (0.0, 0.2, 0.8, 1.0)
#: Series plotted in every sub-figure: (label, paradigm, conflict scope).
SERIES: Sequence[Tuple[str, str, ConflictScope]] = (
    ("OX", "OX", ConflictScope.WITHIN_APPLICATION),
    ("XOV", "XOV", ConflictScope.WITHIN_APPLICATION),
    ("OXII", "OXII", ConflictScope.WITHIN_APPLICATION),
    ("OXII*", "OXII", ConflictScope.CROSS_APPLICATION),
)


def _series_grid(
    contention_levels: Sequence[float], include_cross_application: bool
) -> List[Tuple[float, str, str, ConflictScope]]:
    """The (contention, label, paradigm, scope) cells the figure actually plots."""
    grid: List[Tuple[float, str, str, ConflictScope]] = []
    for contention in contention_levels:
        for label, paradigm, scope in SERIES:
            if label == "OXII*" and (not include_cross_application or contention == 0.0):
                # With no conflicting transactions there is no cross-application
                # contention; the paper plots a single OXII curve in Figure 6(a).
                continue
            grid.append((contention, label, paradigm, scope))
    return grid


def scenario_name(contention: float, label: str) -> str:
    """Canonical scenario id for one (contention, series) cell."""
    return f"c{contention:g}/{label}"


@dataclass(frozen=True)
class Figure6Result:
    """Measured points for every (contention level, series, offered load)."""

    #: contention -> series label -> list of RunMetrics ordered by offered load.
    curves: Mapping[float, Mapping[str, Sequence[RunMetrics]]]

    def contention_levels(self) -> List[float]:
        """The evaluated degrees of contention."""
        return sorted(self.curves)

    def series(self, contention: float, label: str) -> Sequence[RunMetrics]:
        """One latency/throughput curve."""
        return self.curves[contention][label]

    def peak_throughput(self, contention: float, label: str) -> float:
        """Highest measured throughput of one series."""
        return max(point.throughput for point in self.series(contention, label))

    def as_rows(self) -> List[dict]:
        """Flat list of dict rows (one per measured point)."""
        rows: List[dict] = []
        for contention, by_label in self.curves.items():
            for label, points in by_label.items():
                for point in points:
                    row = point.as_dict()
                    row["series"] = label
                    row["contention"] = contention
                    rows.append(row)
        return rows


def figure6_spec(
    contention_levels: Sequence[float] = DEFAULT_CONTENTION_LEVELS,
    settings: Optional[BenchmarkSettings] = None,
    base_config: Optional[SystemConfig] = None,
    include_cross_application: bool = True,
) -> ExperimentSpec:
    """The Figure 6 contention grid as a declarative experiment spec."""
    settings = settings or BenchmarkSettings()
    scenarios = []
    for contention, label, paradigm, scope in _series_grid(
        contention_levels, include_cross_application
    ):
        # An explicit base_config is used exactly as supplied (block size
        # included), matching the legacy run_point contract; the per-paradigm
        # block-size defaults only apply when no config is given.
        config = base_config if base_config is not None else settings.system_config_for(paradigm)
        scenarios.append(
            ScenarioSpec(
                name=scenario_name(contention, label),
                paradigm=paradigm,
                contention=contention,
                conflict_scope=scope.value,
                loads=tuple(settings.loads_for(paradigm)),
                system=config_overrides(config),
                tags=(f"series:{label}",),
            )
        )
    return ExperimentSpec(
        name="figure6",
        description="Latency/throughput under contention (paper Figure 6)",
        scenarios=tuple(scenarios),
        duration=settings.duration,
        drain=settings.drain,
        warmup_fraction=settings.warmup_fraction,
        seeds=(settings.seed,),
        tags=("figure6",),
    )


def run_figure6(
    contention_levels: Sequence[float] = DEFAULT_CONTENTION_LEVELS,
    settings: Optional[BenchmarkSettings] = None,
    base_config: Optional[SystemConfig] = None,
    include_cross_application: bool = True,
    engine: Optional[SweepEngine] = None,
) -> Figure6Result:
    """Regenerate Figure 6: latency/throughput curves per contention level."""
    settings = settings or BenchmarkSettings()
    spec = figure6_spec(contention_levels, settings, base_config, include_cross_application)
    result = (engine or SweepEngine(parallel=False)).run(spec)
    curves: Dict[float, Dict[str, List[RunMetrics]]] = {}
    for contention, label, _paradigm, _scope in _series_grid(
        contention_levels, include_cross_application
    ):
        by_label = curves.setdefault(contention, {})
        by_label[label] = result.metrics_for(scenario_name(contention, label))
    return Figure6Result(curves=curves)


def format_figure6(result: Figure6Result) -> str:
    """Render the Figure 6 curves as text tables (one per contention level)."""
    lines: List[str] = []
    for contention in result.contention_levels():
        lines.append(
            f"Figure 6 — contention {contention:.0%}: latency [s] vs throughput [txn/s]"
        )
        for label in ("OX", "XOV", "OXII", "OXII*"):
            try:
                points = result.series(contention, label)
            except KeyError:
                continue
            series = ", ".join(
                f"({p.throughput:.0f} tps, {p.latency_avg:.3f}s)" for p in points
            )
            lines.append(f"  {label:<6} {series}")
        lines.append("")
    return "\n".join(lines)
