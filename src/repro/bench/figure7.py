"""Figure 7 — scalability over multiple data centers.

The paper moves one node group at a time (clients, orderers, executors,
non-executors) to a far data center and re-measures the latency/throughput
curve on a no-contention workload.  Moving the clients hurts XOV the most
(clients participate in the endorsement round trip), moving the orderers hurts
every paradigm, moving the executors adds one WAN phase to OXII but two to
XOV, and moving the non-executors affects only XOV (OXII's passive peers are
not on the measured path).  OX has no executor / non-executor distinction, so
it only appears in the first two sub-figures, as in the paper.

The placement grid is declared as an :class:`~repro.experiments.ExperimentSpec`
(:func:`figure7_spec`) — one scenario per (moved group, paradigm) — and
executed by the sweep engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench.runner import BenchmarkSettings
from repro.common.config import SystemConfig
from repro.experiments import ExperimentSpec, ScenarioSpec, SweepEngine, config_overrides
from repro.metrics.collector import RunMetrics

#: Sub-figures of Figure 7 in paper order, with the paradigms each one plots.
GROUPS: Mapping[str, Sequence[str]] = {
    "clients": ("OX", "XOV", "OXII"),
    "orderers": ("OX", "XOV", "OXII"),
    "executors": ("XOV", "OXII"),
    "non_executors": ("XOV", "OXII"),
}


@dataclass(frozen=True)
class Figure7Result:
    """Latency/throughput curves per moved group and paradigm."""

    #: group -> paradigm -> points ordered by offered load.
    curves: Mapping[str, Mapping[str, Sequence[RunMetrics]]]

    def groups(self) -> List[str]:
        """The node groups that were moved to the far data center."""
        return list(self.curves)

    def series(self, group: str, paradigm: str) -> Sequence[RunMetrics]:
        """One latency/throughput curve."""
        return self.curves[group][paradigm]

    def latency_at_lowest_load(self, group: str, paradigm: str) -> float:
        """Average latency of the first (lowest-load) point of a series."""
        return self.series(group, paradigm)[0].latency_avg

    def as_rows(self) -> List[dict]:
        """Flat list of dict rows (one per measured point)."""
        rows: List[dict] = []
        for group, by_paradigm in self.curves.items():
            for paradigm, points in by_paradigm.items():
                for point in points:
                    row = point.as_dict()
                    row["moved_group"] = group
                    rows.append(row)
        return rows


def _selected_groups(groups: Optional[Sequence[str]]) -> List[str]:
    selected = list(groups) if groups is not None else list(GROUPS)
    for group in selected:
        if group not in GROUPS:
            raise ValueError(f"unknown node group {group!r}; expected one of {list(GROUPS)}")
    return selected


def figure7_spec(
    groups: Optional[Sequence[str]] = None,
    settings: Optional[BenchmarkSettings] = None,
    base_config: Optional[SystemConfig] = None,
    num_non_executors: int = 2,
) -> ExperimentSpec:
    """The Figure 7 placement grid as a declarative experiment spec."""
    settings = settings or BenchmarkSettings()
    base = base_config or SystemConfig()
    if base.num_non_executors < num_non_executors:
        base = replace(base, num_non_executors=num_non_executors)
    scenarios = []
    for group in _selected_groups(groups):
        for paradigm in GROUPS[group]:
            config = settings.system_config_for(paradigm, base).with_far_groups([group])
            scenarios.append(
                ScenarioSpec(
                    name=f"{group}/{paradigm}",
                    paradigm=paradigm,
                    contention=0.0,
                    loads=tuple(settings.loads_for(paradigm)),
                    system=config_overrides(config),
                    tags=(f"moved_group:{group}",),
                )
            )
    return ExperimentSpec(
        name="figure7",
        description="Multi-datacenter scalability (paper Figure 7)",
        scenarios=tuple(scenarios),
        duration=settings.duration,
        drain=settings.drain,
        warmup_fraction=settings.warmup_fraction,
        seeds=(settings.seed,),
        tags=("figure7",),
    )


def run_figure7(
    groups: Optional[Sequence[str]] = None,
    settings: Optional[BenchmarkSettings] = None,
    base_config: Optional[SystemConfig] = None,
    num_non_executors: int = 2,
    engine: Optional[SweepEngine] = None,
) -> Figure7Result:
    """Regenerate Figure 7: move one group to the far DC and re-measure."""
    settings = settings or BenchmarkSettings()
    selected = _selected_groups(groups)
    spec = figure7_spec(selected, settings, base_config, num_non_executors)
    result = (engine or SweepEngine(parallel=False)).run(spec)
    curves: Dict[str, Dict[str, List[RunMetrics]]] = {}
    for group in selected:
        curves[group] = {
            paradigm: result.metrics_for(f"{group}/{paradigm}") for paradigm in GROUPS[group]
        }
    return Figure7Result(curves=curves)


def format_figure7(result: Figure7Result) -> str:
    """Render the Figure 7 curves as text tables (one per moved group)."""
    lines: List[str] = []
    for group in result.groups():
        lines.append(f"Figure 7 — {group} moved to the far data center")
        for paradigm in ("OX", "XOV", "OXII"):
            try:
                points = result.series(group, paradigm)
            except KeyError:
                continue
            series = ", ".join(
                f"({p.throughput:.0f} tps, {p.latency_avg:.3f}s)" for p in points
            )
            lines.append(f"  {paradigm:<5} {series}")
        lines.append("")
    return "\n".join(lines)
