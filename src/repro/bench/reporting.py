"""Plain-text and JSON reporting helpers for the benchmark harness."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.metrics.collector import RunMetrics


def format_run_metrics(metrics: RunMetrics) -> str:
    """One-line human-readable summary of a single run."""
    return (
        f"{metrics.paradigm:<6} load={metrics.offered_load:>7.0f} tps "
        f"throughput={metrics.throughput:>7.0f} tps "
        f"latency={metrics.latency_avg * 1000.0:>8.1f} ms "
        f"committed={metrics.committed:>6d} aborted={metrics.aborted:>6d} "
        f"abort_rate={metrics.abort_rate:>5.1%}"
    )


def format_comparison(results: Mapping[str, RunMetrics], title: str = "Paradigm comparison") -> str:
    """Table comparing several paradigms on the same workload."""
    lines = [title, f"{'paradigm':<8} {'throughput':>12} {'latency':>12} {'aborts':>8}"]
    for name, metrics in results.items():
        lines.append(
            f"{name:<8} {metrics.throughput:>9.0f} tps {metrics.latency_avg * 1000.0:>9.1f} ms "
            f"{metrics.abort_rate:>7.1%}"
        )
    return "\n".join(lines)


def rows_to_json(rows: Sequence[Mapping[str, object]], path: Optional[str] = None) -> str:
    """Serialise result rows to JSON; optionally also write them to ``path``."""
    payload = json.dumps(list(rows), indent=2, sort_keys=True)
    if path:
        Path(path).write_text(payload + "\n", encoding="utf-8")
    return payload


def format_experiment_result(result) -> str:
    """Table of an :class:`~repro.experiments.ExperimentResult`'s rows."""
    spec = result.spec
    lines = [
        f"Experiment {spec.name!r} — {len(result.rows)} point(s), "
        f"spec {result.provenance.get('spec_hash', '?')} @ {result.provenance.get('git_rev', '?')}",
        f"{'scenario':<24} {'paradigm':<8} {'load':>8} {'seed':>6} "
        f"{'throughput':>12} {'latency':>12} {'aborts':>8}",
    ]
    for row in result.rows:
        point, metrics = row.point, row.metrics
        lines.append(
            f"{point.scenario:<24} {point.paradigm:<8} {point.offered_load:>8.0f} {point.seed:>6d} "
            f"{metrics.throughput:>9.0f} tps {metrics.latency_avg * 1000.0:>9.1f} ms "
            f"{metrics.abort_rate:>7.1%}"
        )
    return "\n".join(lines)


def format_matrix(points: Sequence) -> str:
    """Table of an expanded (but not executed) experiment point matrix."""
    lines = [
        f"{len(points)} point(s)",
        f"{'#':>4} {'scenario':<24} {'paradigm':<8} {'load':>8} {'seed':>6} {'repeat':>6}",
    ]
    for point in points:
        lines.append(
            f"{point.index:>4} {point.scenario:<24} {point.paradigm:<8} "
            f"{point.offered_load:>8.0f} {point.seed:>6d} {point.repeat:>6d}"
        )
    return "\n".join(lines)


def summarise_series(points: Iterable[RunMetrics]) -> dict:
    """Peak throughput and the latency observed at that peak for one series."""
    materialised: List[RunMetrics] = list(points)
    if not materialised:
        return {"peak_throughput": 0.0, "latency_at_peak": 0.0}
    peak = max(materialised, key=lambda p: p.throughput)
    return {"peak_throughput": peak.throughput, "latency_at_peak": peak.latency_avg}
