"""Shared benchmark plumbing: single experiment points and load sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.common.config import SystemConfig, apply_overrides
from repro.metrics.collector import RunMetrics
from repro.metrics.saturation import LoadSweepResult, sweep_offered_load
from repro.paradigms.run import execute_run
from repro.workload.generator import ConflictScope, WorkloadConfig

#: Default offered-load sweeps per paradigm (transactions per second).  The
#: ranges bracket each paradigm's saturation point in the default cost model.
DEFAULT_LOADS: Mapping[str, Sequence[float]] = {
    "OX": (400, 700, 900, 1000, 1150),
    "XOV": (500, 1000, 1500, 1800, 2100),
    "OXII": (1000, 2000, 3500, 5000, 6000, 7000),
}

#: Reduced sweeps used by the pytest benchmarks so a full run stays fast.
QUICK_LOADS: Mapping[str, Sequence[float]] = {
    "OX": (700, 1100),
    "XOV": (1200, 2000),
    "OXII": (3000, 6500),
}


@dataclass(frozen=True)
class BenchmarkSettings:
    """Knobs controlling how long/precise a benchmark run is."""

    duration: float = 2.0
    drain: float = 3.0
    warmup_fraction: float = 0.2
    quick: bool = False
    block_size: int = 200
    xov_block_size: int = 100
    seed: int = 7
    #: Transport/clock backend the runs execute on ("sim", "asyncio",
    #: "asyncio-tcp"); real backends measure wall clock (see repro.realnet).
    backend: str = "sim"
    #: Pacing factor for real backends (1.0 = honest wall-clock pacing).
    realtime_speed: float = 1.0

    def loads_for(self, paradigm: str) -> Sequence[float]:
        """The offered-load sweep for ``paradigm``."""
        table = QUICK_LOADS if self.quick else DEFAULT_LOADS
        return table[paradigm.upper()]

    def with_overrides(self, **overrides: Any) -> "BenchmarkSettings":
        """Validated copy with ``overrides`` applied."""
        return apply_overrides(self, overrides)

    def with_duration(self, duration: float) -> "BenchmarkSettings":
        """Copy with a different submission duration."""
        return self.with_overrides(duration=duration)

    def system_config_for(self, paradigm: str, base: Optional[SystemConfig] = None) -> SystemConfig:
        """Default per-paradigm system config: XOV runs its own (smaller) block size.

        The paper uses 200 transactions per block for OX and OXII and tunes
        XOV's block size for its peak (around 100); these are the defaults
        applied when the caller does not supply an explicit configuration.
        """
        config = base or SystemConfig()
        if self.backend != "sim":
            config = config.with_overrides(
                backend=self.backend, realtime_speed=self.realtime_speed
            )
        if paradigm.upper() == "XOV":
            return config.with_block_size(self.xov_block_size)
        return config.with_block_size(self.block_size)


def run_point(
    paradigm: str,
    offered_load: float,
    contention: float = 0.0,
    conflict_scope: ConflictScope = ConflictScope.WITHIN_APPLICATION,
    settings: Optional[BenchmarkSettings] = None,
    system_config: Optional[SystemConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
) -> RunMetrics:
    """Run one (paradigm, workload, offered load) measurement point.

    When ``system_config`` is given it is used exactly as supplied (the block
    size included); otherwise the settings' per-paradigm defaults apply.
    """
    settings = settings or BenchmarkSettings()
    config = system_config if system_config is not None else settings.system_config_for(paradigm)
    workload = workload_config or WorkloadConfig(
        num_applications=config.num_applications,
        contention=contention,
        conflict_scope=conflict_scope,
        seed=settings.seed,
    )
    return execute_run(
        paradigm,
        system_config=config,
        workload_config=workload,
        offered_load=offered_load,
        duration=settings.duration,
        warmup_fraction=settings.warmup_fraction,
        drain=settings.drain,
    )


def sweep_paradigm(
    paradigm: str,
    contention: float = 0.0,
    conflict_scope: ConflictScope = ConflictScope.WITHIN_APPLICATION,
    settings: Optional[BenchmarkSettings] = None,
    system_config: Optional[SystemConfig] = None,
    loads: Optional[Sequence[float]] = None,
) -> LoadSweepResult:
    """Sweep the offered load for one paradigm and locate its saturation knee."""
    settings = settings or BenchmarkSettings()
    loads = loads if loads is not None else settings.loads_for(paradigm)
    return sweep_offered_load(
        lambda load: run_point(
            paradigm,
            offered_load=load,
            contention=contention,
            conflict_scope=conflict_scope,
            settings=settings,
            system_config=system_config,
        ),
        loads=loads,
    )


def quick_comparison(
    contention: float = 0.0,
    offered_load: float = 1500.0,
    conflict_scope: ConflictScope = ConflictScope.WITHIN_APPLICATION,
    settings: Optional[BenchmarkSettings] = None,
) -> Dict[str, RunMetrics]:
    """Run all three paradigms once at the same offered load and contention.

    This is the library's "hello world": it returns a paradigm-name ->
    :class:`RunMetrics` mapping showing who wins on the chosen workload.
    """
    settings = settings or BenchmarkSettings(duration=1.5, drain=3.0)
    # The paper's three paradigms in paper order — deliberately not the live
    # registry, so third-party registrations don't change what "hello world"
    # (or the CI smoke gate) runs.
    return {
        paradigm: run_point(
            paradigm,
            offered_load=offered_load,
            contention=contention,
            conflict_scope=conflict_scope,
            settings=settings,
        )
        for paradigm in ("OX", "XOV", "OXII")
    }
