"""Shared low-level utilities used by every ParBlockchain subsystem.

This package intentionally has no dependencies on the rest of the library so
that any subsystem (simulation, network, consensus, ledger, ...) can import it
without creating cycles.
"""

from repro.common.errors import (
    ConfigurationError,
    DependencyGraphError,
    LedgerError,
    ParBlockchainError,
    ProtocolError,
    SignatureError,
    TransactionError,
)
from repro.common.identifiers import (
    ApplicationId,
    BlockId,
    NodeId,
    TransactionId,
    deterministic_uuid,
)
from repro.common.config import (
    CostModel,
    SystemConfig,
)

__all__ = [
    "ApplicationId",
    "BlockId",
    "ConfigurationError",
    "CostModel",
    "DependencyGraphError",
    "LedgerError",
    "NodeId",
    "ParBlockchainError",
    "ProtocolError",
    "SignatureError",
    "SystemConfig",
    "TransactionError",
    "TransactionId",
    "deterministic_uuid",
]
