"""Configuration objects shared by every paradigm deployment.

Two configuration families live here:

* :class:`CostModel` — the simulated-time cost of the primitive operations the
  paper's testbed performs for real (executing a transaction on a smart
  contract, hashing, signing, checking one read/write-set pair while building
  a dependency graph, ...).  The defaults are calibrated so that the
  reproduction exhibits the same *shape* as the paper's figures (see
  docs/experiments.md): OX saturates around ~1k txn/s, XOV around ~1.8k txn/s and
  OXII above 6k txn/s on a no-contention workload.

* :class:`SystemConfig` — the deployment-level knobs the paper varies: number
  of orderers, executors, applications, block-cut conditions, the required
  number of matching results per application (``tau``), and the placement of
  node groups across data centers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Sequence, TypeVar

from repro.common.errors import ConfigurationError

ConfigT = TypeVar("ConfigT")


def check_positive(name: str, value: Any) -> None:
    """Require ``value`` to be a positive number, naming the offending field."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_positive_int(name: str, value: Any) -> None:
    """Require ``value`` to be a positive integer, naming the offending field."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")


def check_non_negative(name: str, value: Any) -> None:
    """Require ``value`` to be >= 0, naming the offending field."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value: Any) -> None:
    """Require ``value`` to lie in [0, 1], naming the offending field."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def reject_unknown_fields(kind: str, given: Mapping[str, Any], valid: "set[str]") -> None:
    """Raise :class:`ConfigurationError` naming any key of ``given`` not in ``valid``."""
    unknown = set(given) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} field(s) {sorted(unknown)}; expected a subset of {sorted(valid)}"
        )


def apply_overrides(config: ConfigT, overrides: Mapping[str, Any]) -> ConfigT:
    """Validated copy of a (frozen) config dataclass with ``overrides`` applied.

    Unknown field names raise :class:`ConfigurationError`.  A dict supplied for
    a field that currently holds a nested dataclass (``block_cut``,
    ``cost_model``, ``latency``, ...) is applied recursively, so callers can
    override one knob of a nested config without spelling out the rest::

        config.with_overrides(block_cut={"max_transactions": 100})

    The copy re-runs the dataclass' ``__post_init__`` validation.
    """
    if not dataclasses.is_dataclass(config):
        raise ConfigurationError(f"{type(config).__name__} is not a config dataclass")
    valid = {f.name for f in dataclasses.fields(config)}
    reject_unknown_fields(type(config).__name__, overrides, valid)
    resolved: Dict[str, Any] = {}
    for name, value in overrides.items():
        current = getattr(config, name)
        if dataclasses.is_dataclass(current) and isinstance(value, Mapping):
            value = apply_overrides(current, value)
        elif isinstance(current, tuple) and isinstance(value, list):
            value = tuple(value)
        resolved[name] = value
    return replace(config, **resolved)

#: Canonical node-group names used by the multi-datacenter experiments
#: (Figure 7 in the paper).
NODE_GROUPS = ("clients", "orderers", "executors", "non_executors")


@dataclass(frozen=True)
class CostModel:
    """Simulated cost (in seconds) of the primitive operations.

    The defaults approximate a c4.2xlarge-class machine (8 vCPUs) running the
    paper's simple accounting contract.  Every cost is charged to simulated
    time by the node that performs the operation; CPU-bound costs additionally
    occupy one of the node's cores for their duration.
    """

    #: Executing one transaction against a smart contract (CPU-bound).
    tx_execution: float = 1.0e-3
    #: Validating one transaction during XOV's validation phase (read/write
    #: conflict check against the committed state, signature checks amortised).
    tx_validation: float = 5.0e-5
    #: Checking a single ordered pair of transactions for an ordering
    #: dependency while generating a dependency graph.
    dependency_pair_check: float = 8.0e-7
    #: Verifying or producing one signature.
    signature: float = 3.0e-5
    #: Hashing one block header / chaining one block.
    block_hash: float = 5.0e-5
    #: Fixed CPU cost of assembling a block (serialisation, bookkeeping).
    block_assembly: float = 2.5e-3
    #: Per-transaction cost of assembling a block (serialisation).
    block_assembly_per_tx: float = 2.0e-6
    #: Applying one transaction's write set to the world state.
    state_update: float = 1.0e-5
    #: Fixed CPU cost of one consensus message handling step.
    consensus_step: float = 5.0e-5
    #: Client-side cost of assembling a request / endorsement transaction.
    client_assembly: float = 2.0e-5
    #: Per-endorsement overhead at an XOV endorser on top of executing the
    #: transaction (proposal checks, response assembly and signing).
    endorsement_overhead: float = 5.0e-4

    def dependency_graph_cost(self, block_size: int) -> float:
        """Total CPU cost of building a dependency graph over ``block_size`` txns.

        Construction compares every ordered pair of transactions, so the cost
        is quadratic in the block size; this is the overhead that makes OXII's
        throughput curve bend downwards after ~200 transactions per block
        (Figure 5 in the paper).
        """
        if block_size < 0:
            raise ConfigurationError(f"block_size must be >= 0, got {block_size}")
        pairs = block_size * (block_size - 1) // 2
        return pairs * self.dependency_pair_check

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy of the cost model with every cost multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return CostModel(
            tx_execution=self.tx_execution * factor,
            tx_validation=self.tx_validation * factor,
            dependency_pair_check=self.dependency_pair_check * factor,
            signature=self.signature * factor,
            block_hash=self.block_hash * factor,
            block_assembly=self.block_assembly * factor,
            block_assembly_per_tx=self.block_assembly_per_tx * factor,
            state_update=self.state_update * factor,
            consensus_step=self.consensus_step * factor,
            client_assembly=self.client_assembly * factor,
            endorsement_overhead=self.endorsement_overhead * factor,
        )


@dataclass(frozen=True)
class LatencyConfig:
    """One-way network latency parameters (seconds).

    ``lan`` applies between nodes in the same data center, ``wan`` between
    nodes in different data centers.  ``jitter_fraction`` adds a deterministic
    pseudo-random +/- jitter to each message so that message arrival order is
    not artificially synchronous.
    """

    lan: float = 5.0e-4
    wan: float = 0.1
    jitter_fraction: float = 0.1
    bandwidth_bytes_per_sec: float = 1.25e9  # 10 Gbit/s
    per_tx_bytes: int = 256
    per_message_bytes: int = 128

    def transfer_delay(self, payload_bytes: int) -> float:
        """Serialisation delay for ``payload_bytes`` at the configured bandwidth."""
        if payload_bytes <= 0:
            return 0.0
        return payload_bytes / self.bandwidth_bytes_per_sec


@dataclass(frozen=True)
class BlockCutPolicy:
    """The three block-cut conditions described in Section IV-B of the paper.

    A block is cut when it reaches ``max_transactions`` transactions, when its
    serialised size reaches ``max_bytes``, or when ``max_delay`` seconds have
    elapsed since the first transaction of the block was received — whichever
    happens first.
    """

    max_transactions: int = 200
    max_bytes: int = 1_000_000
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.max_transactions <= 0:
            raise ConfigurationError("max_transactions must be positive")
        if self.max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if self.max_delay <= 0:
            raise ConfigurationError("max_delay must be positive")


@dataclass(frozen=True)
class RecoveryConfig:
    """Retransmission / catch-up behaviour for runs with injected faults.

    Disabled by default: the paper's performance experiments model the fault-
    free normal case and must not pay for (or be perturbed by) periodic
    retransmission traffic.  The fault-scenario harness (:mod:`repro.testing`)
    enables it so that crashed/partitioned nodes can catch up once faults heal
    — the liveness property the oracles check.

    * ``consensus_retry_interval`` — the proposer re-multicasts an undecided
      proposal after this long (covers proposals sent while crashed or
      partitioned).
    * ``tip_announce_interval`` — block-multicasting orderers periodically
      announce their highest sealed sequence; peers that detect a gap fetch
      the missing blocks.
    * ``retransmit_interval`` — OXII executors re-multicast their own
      execution results for recent blocks so peers that missed COMMIT
      messages can finish state updates.
    * ``result_retention_blocks`` — how many recent blocks' own results an
      executor keeps retransmitting (bounds both memory and catch-up reach).
    * ``sealed_retention_blocks`` — how many sealed blocks an orderer keeps
      for BLOCK_FETCH (bounds memory; a peer that fell further behind than
      this can no longer catch up).
    * ``fetch_window`` — maximal number of blocks requested per fetch.
    """

    enabled: bool = False
    consensus_retry_interval: float = 0.5
    tip_announce_interval: float = 0.5
    retransmit_interval: float = 0.25
    result_retention_blocks: int = 16
    sealed_retention_blocks: int = 256
    fetch_window: int = 16

    def __post_init__(self) -> None:
        check_positive("consensus_retry_interval", self.consensus_retry_interval)
        check_positive("tip_announce_interval", self.tip_announce_interval)
        check_positive("retransmit_interval", self.retransmit_interval)
        check_positive_int("result_retention_blocks", self.result_retention_blocks)
        check_positive_int("sealed_retention_blocks", self.sealed_retention_blocks)
        check_positive_int("fetch_window", self.fetch_window)


#: Consensus protocols a shard's ordering service may run.
CONSENSUS_PROTOCOLS = ("kafka", "pbft", "raft")

#: Upper bound on shard counts — a guard against typo'd configs, not a
#: fundamental limit.
MAX_SHARDS = 64


@dataclass(frozen=True)
class ShardingConfig:
    """Sharded-deployment knobs (see :mod:`repro.sharding`).

    ``num_shards == 1`` (the default) means the deployment is unsharded; a
    single-shard :class:`~repro.sharding.ShardedDeployment` is
    result-identical to the plain per-paradigm deployment.

    ``consensus`` selects the ordering protocol per shard: ``""`` inherits
    :attr:`SystemConfig.consensus_protocol` everywhere, a single name applies
    to every shard, and a sequence gives one name per shard (length must equal
    ``num_shards``).
    """

    num_shards: int = 1
    consensus: Any = ""

    def __post_init__(self) -> None:
        if (
            not isinstance(self.num_shards, int)
            or isinstance(self.num_shards, bool)
            or not 1 <= self.num_shards <= MAX_SHARDS
        ):
            raise ConfigurationError(
                f"shards.num_shards must be an integer in [1, {MAX_SHARDS}], "
                f"got {self.num_shards!r}"
            )
        consensus = self.consensus
        if isinstance(consensus, list):
            consensus = tuple(consensus)
            object.__setattr__(self, "consensus", consensus)
        if isinstance(consensus, str):
            names = (consensus,)
        elif isinstance(consensus, tuple):
            names = consensus
            if len(names) != self.num_shards:
                raise ConfigurationError(
                    f"shards.consensus lists {len(names)} protocol(s) but "
                    f"shards.num_shards is {self.num_shards}; give one name per "
                    "shard, a single name for all shards, or '' to inherit "
                    "consensus_protocol"
                )
        else:
            raise ConfigurationError(
                "shards.consensus must be a protocol name or a sequence of "
                f"names (one per shard), got {consensus!r}"
            )
        for name in names:
            if name and name not in CONSENSUS_PROTOCOLS:
                raise ConfigurationError(
                    f"shards.consensus has unknown protocol {name!r}; valid "
                    f"choices are {list(CONSENSUS_PROTOCOLS)} (or '' to "
                    "inherit consensus_protocol)"
                )

    @property
    def enabled(self) -> bool:
        """True when the deployment is actually split into multiple shards."""
        return self.num_shards > 1

    def consensus_for(self, shard: int, default: str) -> str:
        """The ordering protocol shard ``shard`` runs (``default`` if inherited)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard index {shard} out of range [0, {self.num_shards})"
            )
        if isinstance(self.consensus, tuple):
            return self.consensus[shard] or default
        return self.consensus or default


@dataclass(frozen=True)
class SystemConfig:
    """Deployment-level configuration for a paradigm run.

    Defaults follow the paper's testbed: 3 orderers, 3 applications each with
    its own executor (endorser) node, 8 cores per node, and a block size of
    200 transactions for OX/OXII.
    """

    num_orderers: int = 3
    num_applications: int = 3
    executors_per_application: int = 1
    num_non_executors: int = 0
    cores_per_node: int = 8
    block_cut: BlockCutPolicy = field(default_factory=BlockCutPolicy)
    cost_model: CostModel = field(default_factory=CostModel)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    #: Required number of matching execution results per application
    #: (tau(A) in the paper).  Maps application id to count; applications not
    #: listed default to 1.
    tau: Mapping[str, int] = field(default_factory=dict)
    #: Consensus protocol used by the ordering service: "pbft", "raft" or
    #: "kafka".
    consensus_protocol: str = "kafka"
    #: Registered smart-contract name installed on every application's agents
    #: (see :data:`repro.common.registry.contract_registry`).
    contract: str = "accounting"
    #: Maximum number of simultaneous faulty orderers tolerated.
    max_faulty_orderers: int = 0
    #: Retransmission / catch-up behaviour under injected faults (off by
    #: default; the fault harness turns it on).
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: Sharded-deployment section: number of independent ordering services
    #: and their per-shard consensus protocols (see :mod:`repro.sharding`).
    shards: ShardingConfig = field(default_factory=ShardingConfig)
    #: Which node groups live in the far data center (Figure 7).
    far_groups: Sequence[str] = ()
    #: Seed for all pseudo-random decisions (workload, jitter).
    seed: int = 7
    #: Dependency-graph edge materialisation: "sparse" (frontier chains —
    #: same waves/closure as all-pairs with O(accesses) edges, the default)
    #: or "all_pairs" (one edge per conflicting pair, Section III-A
    #: verbatim).  See :class:`repro.core.dependency_graph.GraphConstruction`.
    graph_construction: str = "sparse"
    #: Transport/clock backend the deployment runs on: "sim" (deterministic
    #: discrete-event simulation, the default and the correctness oracle),
    #: "asyncio" (wall-clock inproc queues) or "asyncio-tcp" (wall-clock
    #: localhost TCP with length-prefixed frames).  See :mod:`repro.realnet`.
    backend: str = "sim"
    #: Pacing factor for real backends: one simulated second takes
    #: ``1/realtime_speed`` wall seconds.  ``1.0`` for honest wall-clock
    #: benchmarks; parity suites raise it to keep smoke runs fast.  Ignored
    #: by the simulated backend.
    realtime_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.num_orderers <= 0:
            raise ConfigurationError("num_orderers must be positive")
        if self.num_applications <= 0:
            raise ConfigurationError("num_applications must be positive")
        if self.executors_per_application <= 0:
            raise ConfigurationError("executors_per_application must be positive")
        if self.num_non_executors < 0:
            raise ConfigurationError("num_non_executors must be >= 0")
        if self.cores_per_node <= 0:
            raise ConfigurationError("cores_per_node must be positive")
        if self.consensus_protocol not in ("pbft", "raft", "kafka"):
            raise ConfigurationError(
                f"unknown consensus protocol {self.consensus_protocol!r}"
            )
        if not self.contract or not isinstance(self.contract, str):
            raise ConfigurationError("contract must be a non-empty registered contract name")
        if self.graph_construction not in ("sparse", "all_pairs"):
            raise ConfigurationError(
                f"unknown graph construction {self.graph_construction!r} "
                "(expected 'sparse' or 'all_pairs')"
            )
        unknown = set(self.far_groups) - set(NODE_GROUPS)
        if unknown:
            raise ConfigurationError(f"unknown node groups: {sorted(unknown)}")
        if isinstance(self.shards, Mapping):
            object.__setattr__(self, "shards", apply_overrides(ShardingConfig(), self.shards))
        if not isinstance(self.shards, ShardingConfig):
            raise ConfigurationError(
                f"shards must be a ShardingConfig or a mapping of its fields, "
                f"got {self.shards!r}"
            )
        if self.shards.num_shards > self.num_applications:
            raise ConfigurationError(
                f"shards.num_shards ({self.shards.num_shards}) must not exceed "
                f"num_applications ({self.num_applications}): each shard hosts "
                "at least one application — lower shards.num_shards or raise "
                "num_applications"
            )
        if self.backend not in ("sim", "asyncio", "asyncio-tcp"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r} "
                "(expected 'sim', 'asyncio' or 'asyncio-tcp')"
            )
        if self.realtime_speed <= 0:
            raise ConfigurationError("realtime_speed must be positive")
        if self.backend != "sim" and self.shards.num_shards > 1:
            raise ConfigurationError(
                f"backend {self.backend!r} does not support sharded deployments yet "
                "(shards.num_shards must be 1)"
            )
        if self.max_faulty_orderers < 0:
            raise ConfigurationError("max_faulty_orderers must be >= 0")
        quorum_need = (
            3 * self.max_faulty_orderers + 1
            if self.consensus_protocol == "pbft"
            else 2 * self.max_faulty_orderers + 1
        )
        if self.max_faulty_orderers and self.num_orderers < quorum_need:
            raise ConfigurationError(
                f"{self.consensus_protocol} with f={self.max_faulty_orderers} needs "
                f"at least {quorum_need} orderers, got {self.num_orderers}"
            )

    @property
    def num_executors(self) -> int:
        """Total number of executor (endorser) nodes across all applications."""
        return self.num_applications * self.executors_per_application

    def tau_for(self, application: str) -> int:
        """Required number of matching execution results for ``application``."""
        return int(self.tau.get(application, 1))

    def with_overrides(self, **overrides: Any) -> "SystemConfig":
        """Validated copy with ``overrides`` applied (nested dicts allowed)."""
        return apply_overrides(self, overrides)

    def with_block_size(self, max_transactions: int) -> "SystemConfig":
        """Return a copy of the config with a different block-size cut."""
        return self.with_overrides(block_cut={"max_transactions": max_transactions})

    def with_far_groups(self, groups: Sequence[str]) -> "SystemConfig":
        """Return a copy with ``groups`` placed in the far data center."""
        return self.with_overrides(far_groups=tuple(groups))

    def with_consensus(self, protocol: str) -> "SystemConfig":
        """Return a copy that uses ``protocol`` for the ordering service."""
        return self.with_overrides(consensus_protocol=protocol)

    def application_names(self) -> list:
        """Canonical application identifiers ``app-0 .. app-(n-1)``."""
        return [f"app-{i}" for i in range(self.num_applications)]


def default_tau(applications: Sequence[str], value: int = 1) -> Dict[str, int]:
    """Build a ``tau`` mapping assigning ``value`` to every application."""
    if value <= 0:
        raise ConfigurationError("tau must be positive")
    return {app: value for app in applications}
