"""Exception hierarchy for the ParBlockchain reproduction.

All library-specific exceptions derive from :class:`ParBlockchainError` so that
callers can catch the whole family with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ParBlockchainError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ParBlockchainError):
    """An invalid or inconsistent configuration value was supplied."""


class TransactionError(ParBlockchainError):
    """A transaction is malformed or cannot be executed."""


class SignatureError(ParBlockchainError):
    """A message signature failed verification."""


class ProtocolError(ParBlockchainError):
    """A consensus or replication protocol invariant was violated."""


class LedgerError(ParBlockchainError):
    """The hash chain or world state rejected an update."""


class DependencyGraphError(ParBlockchainError):
    """A dependency graph is malformed (e.g. edge against timestamp order)."""


class SimulationError(ParBlockchainError):
    """The discrete-event simulator was used incorrectly."""


class NetworkError(ParBlockchainError):
    """A simulated network operation failed (unknown peer, closed channel)."""


class AccessControlError(ParBlockchainError):
    """A client attempted an operation it is not authorised for."""


class RealnetError(ParBlockchainError):
    """A real-transport (asyncio) backend operation failed."""


class ContractError(TransactionError):
    """A smart contract rejected a transaction (e.g. insufficient funds)."""
