"""Typed identifiers for nodes, applications, transactions and blocks.

The library passes many identifiers around (node names, application names,
transaction ids, block sequence numbers).  Using thin ``NewType`` wrappers over
``str``/``int`` keeps signatures self-documenting without runtime overhead,
while the helper functions below centralise how identifiers are minted so that
runs are deterministic and reproducible.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator, NewType

NodeId = NewType("NodeId", str)
ApplicationId = NewType("ApplicationId", str)
TransactionId = NewType("TransactionId", str)
BlockId = NewType("BlockId", int)


def deterministic_uuid(*parts: object) -> str:
    """Return a stable 32-hex-character identifier derived from ``parts``.

    The identifier is a truncated SHA-256 of the repr of the parts, so the same
    inputs always produce the same id.  This keeps simulation runs fully
    reproducible (no reliance on ``uuid.uuid4`` or wall-clock time).
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode("utf-8"))
    return digest.hexdigest()[:32]


class IdSequence:
    """A deterministic, prefix-scoped sequence of string identifiers.

    >>> seq = IdSequence("tx")
    >>> next(seq), next(seq)
    ('tx-0', 'tx-1')
    """

    def __init__(self, prefix: str, start: int = 0) -> None:
        self._prefix = prefix
        self._counter = itertools.count(start)

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"

    def peek_prefix(self) -> str:
        """Return the prefix used for generated identifiers."""
        return self._prefix


def orderer_id(index: int) -> NodeId:
    """Canonical name for the ``index``-th orderer node."""
    return NodeId(f"orderer-{index}")


def executor_id(index: int) -> NodeId:
    """Canonical name for the ``index``-th executor node."""
    return NodeId(f"executor-{index}")


def client_id(index: int) -> NodeId:
    """Canonical name for the ``index``-th client."""
    return NodeId(f"client-{index}")


def application_id(index: int) -> ApplicationId:
    """Canonical name for the ``index``-th application."""
    return ApplicationId(f"app-{index}")
