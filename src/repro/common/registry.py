"""Pluggable-component registries: paradigms, contracts, workload generators.

The experiment layer resolves every extensible component by name through a
:class:`Registry` instead of hardcoded dicts, so third-party paradigms,
contracts and workload generators plug in without editing core modules::

    from repro.common.registry import register_paradigm

    @register_paradigm("MYPARADIGM")
    class MyDeployment(Deployment):
        ...

    run --spec '{"scenarios": [{"name": "mine", "paradigm": "MYPARADIGM"}]}'

Three module-level registries back the decorators:

* :data:`paradigm_registry` — deployment classes, keyed case-insensitively
  with upper-case canonical names ("OX", "XOV", "OXII", ...).
* :data:`contract_registry` — smart-contract classes taking an application id
  ("accounting", "kvstore", "supply_chain", ...).
* :data:`workload_registry` — workload-generator factories taking a
  ``WorkloadConfig`` ("accounting", ...).

Built-ins self-register at import time (importing :mod:`repro.paradigms`,
:mod:`repro.contracts` or :mod:`repro.workload` populates the corresponding
registry); :func:`ensure_builtins` forces all three imports.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Mapping, Optional, TypeVar

from repro.common.errors import ConfigurationError

T = TypeVar("T")


class RegistryView(Mapping[str, T]):
    """Live, read-only mapping view over a :class:`Registry`."""

    def __init__(self, registry: "Registry[T]") -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> T:
        try:
            return self._registry.get(name)
        except ConfigurationError:
            # The Mapping protocol (``in``, ``.get()``) relies on KeyError.
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RegistryView({self._registry.kind}: {self._registry.names()})"


class Registry(Generic[T]):
    """A named catalogue of pluggable components.

    Names are normalised (paradigms upper-case, everything else lower-case) so
    lookups are case-insensitive.  Registering a *different* object under an
    existing name raises unless ``replace=True``; re-registering the same
    object is a no-op, which keeps module reloads harmless.
    """

    def __init__(self, kind: str, normalise: Callable[[str], str] = str.lower) -> None:
        self.kind = kind
        self._normalise = normalise
        self._entries: Dict[str, T] = {}

    # ----------------------------------------------------------- registration
    def register(self, name: str, obj: Optional[T] = None, *, replace: bool = False):
        """Register ``obj`` under ``name``; usable directly or as a decorator."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"{self.kind} name must be a non-empty string, got {name!r}")
        key = self._normalise(name)

        def _add(value: T) -> T:
            existing = self._entries.get(key)
            if existing is not None and existing is not value and not replace:
                raise ConfigurationError(
                    f"{self.kind} {key!r} is already registered; pass replace=True to override"
                )
            self._entries[key] = value
            return value

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (no-op if absent)."""
        self._entries.pop(self._normalise(name), None)

    # ---------------------------------------------------------------- queries
    def get(self, name: str) -> T:
        """The component registered under ``name`` (case-insensitive)."""
        key = self._normalise(name) if isinstance(name, str) else name
        try:
            return self._entries[key]
        except (KeyError, TypeError):
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def as_mapping(self) -> RegistryView[T]:
        """A live read-only ``Mapping`` view (legacy ``PARADIGMS``-style access)."""
        return RegistryView(self)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._normalise(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: Deployment classes by paradigm name ("OX", "XOV", "OXII", ...).
paradigm_registry: Registry = Registry("paradigm", normalise=str.upper)
#: Smart-contract classes by name ("accounting", "kvstore", "supply_chain", ...).
contract_registry: Registry = Registry("contract")
#: Workload-generator factories by name ("accounting", ...).
workload_registry: Registry = Registry("workload")


def register_paradigm(name: str, cls=None, *, replace: bool = False):
    """Class decorator registering a :class:`Deployment` under ``name``."""
    return paradigm_registry.register(name, cls, replace=replace)


def register_contract(name: str, cls=None, *, replace: bool = False):
    """Class decorator registering a :class:`SmartContract` under ``name``."""
    return contract_registry.register(name, cls, replace=replace)


def register_workload(name: str, factory=None, *, replace: bool = False):
    """Decorator registering a workload-generator factory under ``name``."""
    return workload_registry.register(name, factory, replace=replace)


def ensure_builtins() -> None:
    """Import the built-in paradigms, contracts and workloads so they register."""
    import repro.agents  # noqa: F401
    import repro.contracts  # noqa: F401
    import repro.paradigms  # noqa: F401
    import repro.workload  # noqa: F401
