"""Deterministic RNG derivation: one scenario seed, many decorrelated streams.

Every randomized component of a run — workload generation, arrival times,
network jitter, fault-schedule generation, fault verdicts — must draw from its
own stream so that consuming randomness in one component never perturbs
another, yet all streams must derive from the single scenario seed so a run is
reproducible from ``(spec, seed)`` alone.

Passing the *same* integer to several ``random.Random`` constructors does not
achieve that: equal seeds yield identical streams, so two components seeded
with the scenario seed draw correlated values (the workload generator and the
arrival schedule did exactly this before the determinism audit).  The helpers
here hash ``(base_seed, label)`` into a child seed, giving each labelled
component an independent, stable stream.
"""

from __future__ import annotations

import hashlib
import random

#: Number of seed bytes taken from the hash; 8 bytes keeps child seeds inside
#: the range ``random.Random`` mixes well and JSON integers represent exactly.
_SEED_BYTES = 8


def child_seed(base_seed: int, label: str) -> int:
    """A decorrelated child seed derived from ``(base_seed, label)``.

    Stable across processes and Python versions (sha256, not ``hash()``), so
    run provenance recorded as ``(base_seed, label)`` replays exactly.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def child_rng(base_seed: int, label: str) -> random.Random:
    """A ``random.Random`` seeded with :func:`child_seed`."""
    return random.Random(child_seed(base_seed, label))
