"""Pluggable ordering/consensus substrate.

OXII (like Fabric) treats consensus as a pluggable module: the ordering
service only has to deliver the same sequence of transactions to every orderer
node.  Three implementations are provided, matching the protocols the paper
discusses:

* :class:`~repro.consensus.pbft.PBFTOrdering` — Byzantine fault tolerant,
  ``3f+1`` orderers, three communication phases (pre-prepare / prepare /
  commit).
* :class:`~repro.consensus.raft.RaftOrdering` — crash fault tolerant,
  ``2f+1`` orderers, leader-based log replication with majority
  acknowledgement.
* :class:`~repro.consensus.kafka.KafkaOrdering` — the Kafka/ZooKeeper-style
  ordering service Hyperledger Fabric (and the paper's testbed) uses: a
  replicated partition leader assigns offsets and followers acknowledge.

All three implement :class:`~repro.consensus.base.OrderingService`, so a
deployment can swap them with a configuration switch.
"""

from repro.consensus.base import ConsensusDecision, OrderingService, make_ordering_service
from repro.consensus.pbft import PBFTOrdering
from repro.consensus.raft import RaftOrdering
from repro.consensus.kafka import KafkaOrdering

__all__ = [
    "ConsensusDecision",
    "KafkaOrdering",
    "OrderingService",
    "PBFTOrdering",
    "RaftOrdering",
    "make_ordering_service",
]
