"""Common interface for the pluggable ordering (consensus) protocols."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.config import CostModel
from repro.common.errors import ConfigurationError
from repro.crypto.hashing import content_hash
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope, Message, build_signed, build_trusted
from repro.network.transport import NetworkInterface
from repro.simulation import Environment


@dataclass(frozen=True)
class ConsensusDecision:
    """A value the orderers agreed on, with its position in the total order."""

    sequence: int
    payload: Any
    decided_at: float
    proposer: str

    def digest(self) -> str:
        """Content hash of the decided payload."""
        return content_hash(("decision", self.sequence, content_hash(self.payload)))


DecisionCallback = Callable[[ConsensusDecision], None]


class OrderingService(abc.ABC):
    """One orderer's participation in the ordering protocol.

    Every orderer node owns an instance.  The leader (primary) drives
    :meth:`propose`; every orderer feeds protocol messages received from the
    network into :meth:`handle_message`.  When an instance learns that a value
    is decided it invokes ``on_decide`` exactly once for that sequence number,
    in sequence order.
    """

    #: Message kinds this protocol exchanges (used by nodes for dispatch).
    message_kinds: Sequence[str] = ()

    def __init__(
        self,
        env: Environment,
        node_id: str,
        peers: Sequence[str],
        interface: NetworkInterface,
        registry: KeyRegistry,
        cost_model: Optional[CostModel] = None,
        on_decide: Optional[DecisionCallback] = None,
        retry_interval: Optional[float] = None,
    ) -> None:
        if node_id not in peers:
            raise ConfigurationError(f"node {node_id!r} must be part of the orderer set {peers}")
        self.env = env
        self.node_id = node_id
        self.peers = list(peers)
        self.interface = interface
        self.registry = registry
        self.cost_model = cost_model or CostModel()
        self.on_decide = on_decide
        #: When set, an undecided proposal is re-multicast every this many
        #: seconds (crash/partition recovery); ``None`` keeps the fault-free
        #: fire-once behaviour of the performance experiments.
        self.retry_interval = retry_interval
        self.proposal_retries = 0
        self._next_sequence = 1
        self._decided: Dict[int, ConsensusDecision] = {}
        self._next_to_deliver = 1
        self._decision_events: Dict[int, Any] = {}
        self.messages_handled = 0
        #: Bound signing closure for :func:`build_signed` on the send path.
        self._sign_hash = lambda digest: registry.sign_hash(digest, node_id)

    # ----------------------------------------------------------------- roles
    @property
    @abc.abstractmethod
    def leader(self) -> str:
        """The node currently allowed to propose."""

    @property
    def is_leader(self) -> bool:
        """True if this orderer is the current leader/primary."""
        return self.node_id == self.leader

    @property
    def others(self) -> List[str]:
        """Every orderer except this one."""
        return [p for p in self.peers if p != self.node_id]

    # ------------------------------------------------------------------- API
    @abc.abstractmethod
    def propose(self, payload: Any):
        """Process generator run on the leader to order ``payload``.

        Returns the :class:`ConsensusDecision` once the value is decided
        locally; other orderers learn the decision through their own message
        handling.
        """

    @abc.abstractmethod
    def handle_message(self, envelope: Envelope):
        """Process generator handling one protocol message."""

    # ------------------------------------------------------------- internals
    def allocate_sequence(self) -> int:
        """Leader-side: reserve the next sequence number."""
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    def _note_sequence(self, sequence: int) -> None:
        """Follower-side: keep the local sequence counter in sync."""
        self._next_sequence = max(self._next_sequence, sequence + 1)

    def record_decision(self, sequence: int, payload: Any, proposer: str) -> Optional[ConsensusDecision]:
        """Record a decided value and deliver in-order decisions via ``on_decide``."""
        if sequence in self._decided:
            return self._decided[sequence]
        decision = ConsensusDecision(
            sequence=sequence, payload=payload, decided_at=self.env.now, proposer=proposer
        )
        self._decided[sequence] = decision
        self._note_sequence(sequence)
        waiter = self._decision_events.pop(sequence, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(decision)
        while self._next_to_deliver in self._decided:
            ready = self._decided[self._next_to_deliver]
            self._next_to_deliver += 1
            if self.on_decide is not None:
                self.on_decide(ready)
        return decision

    def decision_event(self, sequence: int):
        """Event firing with the :class:`ConsensusDecision` for ``sequence``."""
        if sequence in self._decided:
            event = self.env.event()
            event.succeed(self._decided[sequence])
            return event
        event = self._decision_events.get(sequence)
        if event is None:
            event = self.env.event()
            self._decision_events[sequence] = event
        return event

    def await_decision(self, sequence: int, resend: Optional[Callable[[], None]] = None):
        """Process generator: wait for ``sequence`` to be decided.

        With :attr:`retry_interval` set and a ``resend`` callback, the
        proposal is re-multicast whenever the decision has not arrived after
        an interval — the crash/partition recovery path: a proposal multicast
        while the proposer was crashed (sends dropped) or partitioned is
        retried until the cluster can decide it.  Followers must treat the
        re-sent proposal idempotently (all three protocols do: their
        bookkeeping is keyed by sequence and deduplicated by sender).
        """
        if self.retry_interval is None or resend is None:
            decision = yield self.decision_event(sequence)
            return decision
        while not self.is_decided(sequence):
            yield self.env.any_of(
                [self.decision_event(sequence), self.env.timeout(self.retry_interval)]
            )
            if not self.is_decided(sequence):
                self.proposal_retries += 1
                resend()
        return self._decided[sequence]

    def decided_count(self) -> int:
        """Number of values decided so far."""
        return len(self._decided)

    def is_decided(self, sequence: int) -> bool:
        """True if ``sequence`` has been decided locally."""
        return sequence in self._decided

    def sign_and_send(self, recipient: str, kind: str, body: Dict[str, Any], payload_bytes: int = 0) -> None:
        """Sign a protocol message and send it to one peer."""
        message = self._protocol_message(kind, body)
        self.interface.send(recipient, message, payload_bytes or None)

    def sign_and_multicast(self, kind: str, body: Dict[str, Any], payload_bytes: int = 0) -> None:
        """Sign a protocol message and send it to every other orderer."""
        message = self._protocol_message(kind, body)
        self.interface.multicast(self.others, message, payload_bytes or None)

    def _protocol_message(self, kind: str, body: Dict[str, Any]) -> Message:
        if self.registry.trusted:
            return build_trusted(kind, body)
        return build_signed(kind, body, self._sign_hash)

    def verify_envelope(self, envelope: Envelope) -> bool:
        """Check the signature on a protocol message against the transport sender.

        Reuses the message's memoised unsigned hash (see
        :meth:`repro.network.message.Message.unsigned_hash`): a multicast body
        is canonicalised once, not once per verifying orderer.  Over trusted
        channels (fault-free deployments) the check short-circuits.
        """
        message = envelope.message
        if not message.signature:
            return False
        if self.registry.trusted:
            return True
        return self.registry.verify_hash(
            message.unsigned_hash(), envelope.sender, message.signature
        )


def make_ordering_service(
    protocol: str,
    env: Environment,
    node_id: str,
    peers: Sequence[str],
    interface: NetworkInterface,
    registry: KeyRegistry,
    cost_model: Optional[CostModel] = None,
    on_decide: Optional[DecisionCallback] = None,
    max_faulty: int = 0,
    retry_interval: Optional[float] = None,
) -> OrderingService:
    """Instantiate the ordering protocol named by ``protocol``."""
    from repro.consensus.kafka import KafkaOrdering
    from repro.consensus.pbft import PBFTOrdering
    from repro.consensus.raft import RaftOrdering

    protocols = {"pbft": PBFTOrdering, "raft": RaftOrdering, "kafka": KafkaOrdering}
    try:
        cls = protocols[protocol]
    except KeyError:
        raise ConfigurationError(f"unknown consensus protocol {protocol!r}") from None
    return cls(
        env=env,
        node_id=node_id,
        peers=peers,
        interface=interface,
        registry=registry,
        cost_model=cost_model,
        on_decide=on_decide,
        max_faulty=max_faulty,
        retry_interval=retry_interval,
    )
