"""Kafka-style ordering service.

The paper's testbed (like vanilla Hyperledger Fabric) orders transactions
through a Kafka/ZooKeeper cluster: the partition leader assigns offsets and
the in-sync replicas acknowledge the write.  Rather than simulating separate
broker and ZooKeeper nodes — which only add a fixed processing latency on the
ordering path — the orderer holding the partition lead assigns the offset,
replicates to the remaining orderers (standing in for the in-sync replica set)
and commits when a majority has acknowledged, after a configurable broker
processing delay.  This keeps the ordering-path latency of the real setup
while staying crash fault tolerant with ``2f + 1`` orderers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Set

from repro.common.config import CostModel
from repro.common.errors import ProtocolError
from repro.consensus.base import DecisionCallback, OrderingService
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope
from repro.network.transport import NetworkInterface
from repro.simulation import Environment

PRODUCE = "KAFKA_PRODUCE"
PRODUCE_ACK = "KAFKA_ACK"
DELIVER = "KAFKA_DELIVER"

#: Fixed processing delay of the broker/ZooKeeper path (seconds).  The value
#: approximates the produce -> replicate -> consume latency of the paper's
#: 3-ZooKeeper / 4-broker Kafka ordering setup.
DEFAULT_BROKER_DELAY = 1.2e-2


@dataclass
class _OffsetState:
    """Replication bookkeeping for one assigned offset."""

    payload: Any = None
    acks: Set[str] = field(default_factory=set)
    committed: bool = False


class KafkaOrdering(OrderingService):
    """Ordering through a simulated Kafka partition with in-sync replicas."""

    message_kinds = (PRODUCE, PRODUCE_ACK, DELIVER)

    def __init__(
        self,
        env: Environment,
        node_id: str,
        peers: Sequence[str],
        interface: NetworkInterface,
        registry: KeyRegistry,
        cost_model: Optional[CostModel] = None,
        on_decide: Optional[DecisionCallback] = None,
        max_faulty: int = 0,
        broker_delay: float = DEFAULT_BROKER_DELAY,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__(
            env, node_id, peers, interface, registry, cost_model, on_decide, retry_interval
        )
        self.max_faulty = max_faulty
        required = 2 * max_faulty + 1
        if len(peers) < required:
            raise ProtocolError(
                f"Kafka-style ordering with f={max_faulty} requires {required} orderers, got {len(peers)}"
            )
        self.broker_delay = broker_delay
        self._offsets: Dict[int, _OffsetState] = {}
        self._replicated: Dict[int, Any] = {}
        #: DELIVER notices that overtook their PRODUCE (reordering faults):
        #: buffered until the payload arrives instead of deciding on None.
        self._pending_deliver: Set[int] = set()

    @property
    def leader(self) -> str:
        """The orderer holding the partition lead (first in the set)."""
        return self.peers[0]

    @property
    def required_acks(self) -> int:
        """Acknowledgements (including the leader's own) needed to commit."""
        return len(self.peers) // 2 + 1

    # ------------------------------------------------------------------- API
    def propose(self, payload: Any):
        """Partition leader: assign the next offset and replicate the batch."""
        if not self.is_leader:
            raise ProtocolError(f"{self.node_id} does not hold the partition lead")
        sequence = self.allocate_sequence()
        state = self._offsets.setdefault(sequence, _OffsetState())
        state.payload = payload
        state.acks.add(self.node_id)
        # Broker-side processing (offset assignment, log append, ZooKeeper path).
        yield self.broker_delay + self.cost_model.consensus_step
        self.sign_and_multicast(PRODUCE, {"seq": sequence, "payload": payload})
        if self.required_acks == 1:
            self._commit(sequence)
        decision = yield from self.await_decision(
            sequence,
            resend=lambda: self.sign_and_multicast(PRODUCE, {"seq": sequence, "payload": payload}),
        )
        return decision

    def handle_message(self, envelope: Envelope):
        """Handle replication traffic for the partition."""
        self.messages_handled += 1
        yield self.cost_model.consensus_step
        if not self.verify_envelope(envelope):
            return None
        kind = envelope.message.kind
        body = envelope.message.body
        sequence = int(body["seq"])
        if kind == PRODUCE:
            if envelope.sender != self.leader:
                return None
            self._replicated[sequence] = body.get("payload")
            self._note_sequence(sequence)
            self.sign_and_send(self.leader, PRODUCE_ACK, {"seq": sequence})
            if sequence in self._pending_deliver:
                self._pending_deliver.discard(sequence)
                self.record_decision(sequence, self._replicated[sequence], proposer=self.leader)
        elif kind == PRODUCE_ACK:
            if not self.is_leader:
                return None
            state = self._offsets.get(sequence)
            if state is None or state.committed:
                return None
            state.acks.add(envelope.sender)
            if len(state.acks) >= self.required_acks:
                self._commit(sequence)
        elif kind == DELIVER:
            if envelope.sender != self.leader:
                return None
            if sequence not in self._replicated and "payload" not in body:
                # The DELIVER overtook its PRODUCE (reordering fault): wait
                # for the payload rather than deciding a None value.
                self._pending_deliver.add(sequence)
                return None
            payload = self._replicated.get(sequence, body.get("payload"))
            self.record_decision(sequence, payload, proposer=self.leader)
        return None

    # -------------------------------------------------------------- internals
    def _commit(self, sequence: int) -> None:
        state = self._offsets[sequence]
        if state.committed:
            return
        state.committed = True
        self.record_decision(sequence, state.payload, proposer=self.node_id)
        self.sign_and_multicast(DELIVER, {"seq": sequence})
