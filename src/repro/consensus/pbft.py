"""Practical Byzantine Fault Tolerance (PBFT) ordering.

A batched PBFT: the primary proposes one block (batch of transactions) per
consensus instance.  The normal-case protocol is the classic three phases —
PRE-PREPARE from the primary, PREPARE from every replica, COMMIT from every
replica — with quorums of ``2f`` matching PREPAREs and ``2f + 1`` matching
COMMITs.  ``3f + 1`` orderers tolerate ``f`` Byzantine orderers.

View changes are out of scope for the performance study (the paper evaluates
the normal case); a primary failure surfaces as a stalled proposal, which the
fault-injection tests assert on explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Set

from repro.common.config import CostModel
from repro.common.errors import ProtocolError
from repro.consensus.base import DecisionCallback, OrderingService
from repro.crypto.hashing import content_hash
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope
from repro.network.transport import NetworkInterface
from repro.simulation import Environment

PRE_PREPARE = "PBFT_PRE_PREPARE"
PREPARE = "PBFT_PREPARE"
COMMIT = "PBFT_COMMIT"


@dataclass
class _InstanceState:
    """Per-sequence bookkeeping for one PBFT instance."""

    payload: Any = None
    digest: str = ""
    pre_prepared: bool = False
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False


class PBFTOrdering(OrderingService):
    """One orderer's PBFT participation (normal case, fixed view)."""

    message_kinds = (PRE_PREPARE, PREPARE, COMMIT)

    def __init__(
        self,
        env: Environment,
        node_id: str,
        peers: Sequence[str],
        interface: NetworkInterface,
        registry: KeyRegistry,
        cost_model: Optional[CostModel] = None,
        on_decide: Optional[DecisionCallback] = None,
        max_faulty: int = 0,
        view: int = 0,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__(
            env, node_id, peers, interface, registry, cost_model, on_decide, retry_interval
        )
        self.max_faulty = max_faulty
        required = 3 * max_faulty + 1
        if len(peers) < required:
            raise ProtocolError(
                f"PBFT with f={max_faulty} requires {required} orderers, got {len(peers)}"
            )
        self.view = view
        self._instances: Dict[int, _InstanceState] = {}

    # ----------------------------------------------------------------- roles
    @property
    def leader(self) -> str:
        """The primary of the current view (round-robin over the orderer set)."""
        return self.peers[self.view % len(self.peers)]

    @property
    def prepare_quorum(self) -> int:
        """Matching PREPAREs needed (2f), in addition to the pre-prepare."""
        return 2 * self.max_faulty

    @property
    def commit_quorum(self) -> int:
        """Matching COMMITs needed (2f + 1)."""
        return 2 * self.max_faulty + 1

    def _instance(self, sequence: int) -> _InstanceState:
        return self._instances.setdefault(sequence, _InstanceState())

    # ------------------------------------------------------------------- API
    def propose(self, payload: Any):
        """Primary: run one PBFT instance for ``payload`` and await the decision."""
        if not self.is_leader:
            raise ProtocolError(f"{self.node_id} is not the primary of view {self.view}")
        sequence = self.allocate_sequence()
        digest = content_hash(payload)
        instance = self._instance(sequence)
        instance.payload = payload
        instance.digest = digest
        instance.pre_prepared = True
        # Signing the pre-prepare plus hashing the batch.
        yield self.cost_model.signature + self.cost_model.block_hash
        body = {"view": self.view, "seq": sequence, "digest": digest, "payload": payload}
        self.sign_and_multicast(PRE_PREPARE, body)
        # The primary's own prepare/commit are implicit in its bookkeeping.
        self._record_prepare(sequence, self.node_id, digest)
        self._maybe_prepare_done(sequence)
        decision = yield from self.await_decision(
            sequence, resend=lambda: self.sign_and_multicast(PRE_PREPARE, body)
        )
        return decision

    def handle_message(self, envelope: Envelope):
        """Replica: process one PRE-PREPARE / PREPARE / COMMIT message."""
        self.messages_handled += 1
        yield self.cost_model.consensus_step + self.cost_model.signature
        if not self.verify_envelope(envelope):
            return None
        kind = envelope.message.kind
        body = envelope.message.body
        sequence = int(body["seq"])
        if int(body.get("view", 0)) != self.view:
            return None
        digest = str(body["digest"])
        if kind == PRE_PREPARE:
            self._handle_pre_prepare(envelope.sender, sequence, digest, body.get("payload"))
        elif kind == PREPARE:
            self._record_prepare(sequence, envelope.sender, digest)
            self._maybe_prepare_done(sequence)
        elif kind == COMMIT:
            self._record_commit(sequence, envelope.sender, digest)
            self._maybe_commit_done(sequence)
        return None

    # -------------------------------------------------------------- internals
    def _handle_pre_prepare(self, sender: str, sequence: int, digest: str, payload: Any) -> None:
        if sender != self.leader:
            return  # only the primary may pre-prepare
        instance = self._instance(sequence)
        if instance.pre_prepared and instance.digest != digest:
            raise ProtocolError(
                f"conflicting pre-prepare for sequence {sequence} (Byzantine primary?)"
            )
        instance.payload = payload
        instance.digest = digest
        instance.pre_prepared = True
        self._note_sequence(sequence)
        self.sign_and_multicast(PREPARE, {"view": self.view, "seq": sequence, "digest": digest})
        self._record_prepare(sequence, self.node_id, digest)
        self._maybe_prepare_done(sequence)

    def _record_prepare(self, sequence: int, sender: str, digest: str) -> None:
        instance = self._instance(sequence)
        if instance.digest and digest != instance.digest:
            return
        instance.prepares.add(sender)

    def _maybe_prepare_done(self, sequence: int) -> None:
        instance = self._instance(sequence)
        if instance.prepared or not instance.pre_prepared:
            return
        others_prepared = len(instance.prepares - {self.leader})
        if others_prepared >= self.prepare_quorum or len(self.peers) == 1:
            instance.prepared = True
            self.sign_and_multicast(
                COMMIT, {"view": self.view, "seq": sequence, "digest": instance.digest}
            )
            self._record_commit(sequence, self.node_id, instance.digest)
            self._maybe_commit_done(sequence)

    def _record_commit(self, sequence: int, sender: str, digest: str) -> None:
        instance = self._instance(sequence)
        if instance.digest and digest != instance.digest:
            return
        instance.commits.add(sender)

    def _maybe_commit_done(self, sequence: int) -> None:
        instance = self._instance(sequence)
        if instance.committed or not instance.prepared or not instance.pre_prepared:
            return
        if len(instance.commits) >= self.commit_quorum:
            instance.committed = True
            self.record_decision(sequence, instance.payload, proposer=self.leader)
