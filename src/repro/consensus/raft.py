"""Raft-style crash-fault-tolerant ordering.

The ordering service only needs the log-replication half of Raft (the paper's
testbed never exercises leader election during measurements): the leader
appends the batch to its log, replicates it with an APPEND message, waits for
acknowledgements from a majority of orderers, then commits and notifies the
followers.  ``2f + 1`` orderers tolerate ``f`` crash failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Set

from repro.common.config import CostModel
from repro.common.errors import ProtocolError
from repro.consensus.base import DecisionCallback, OrderingService
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope
from repro.network.transport import NetworkInterface
from repro.simulation import Environment

APPEND = "RAFT_APPEND"
APPEND_ACK = "RAFT_APPEND_ACK"
COMMIT_NOTICE = "RAFT_COMMIT"


@dataclass
class _LogEntry:
    """Per-sequence replication bookkeeping on the leader."""

    payload: Any = None
    acks: Set[str] = field(default_factory=set)
    committed: bool = False


class RaftOrdering(OrderingService):
    """One orderer's participation in Raft log replication (fixed leader)."""

    message_kinds = (APPEND, APPEND_ACK, COMMIT_NOTICE)

    def __init__(
        self,
        env: Environment,
        node_id: str,
        peers: Sequence[str],
        interface: NetworkInterface,
        registry: KeyRegistry,
        cost_model: Optional[CostModel] = None,
        on_decide: Optional[DecisionCallback] = None,
        max_faulty: int = 0,
        term: int = 1,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__(
            env, node_id, peers, interface, registry, cost_model, on_decide, retry_interval
        )
        self.max_faulty = max_faulty
        required = 2 * max_faulty + 1
        if len(peers) < required:
            raise ProtocolError(
                f"Raft with f={max_faulty} requires {required} orderers, got {len(peers)}"
            )
        self.term = term
        self._log: Dict[int, _LogEntry] = {}
        #: Follower-side store of replicated-but-uncommitted payloads.
        self._replicated: Dict[int, Any] = {}
        #: COMMIT notices that overtook their APPEND (reordering faults).
        self._pending_commit: Set[int] = set()

    @property
    def leader(self) -> str:
        """Fixed leader: the first orderer in the configured set."""
        return self.peers[0]

    @property
    def majority(self) -> int:
        """Number of acknowledgements (including the leader) needed to commit."""
        return len(self.peers) // 2 + 1

    # ------------------------------------------------------------------- API
    def propose(self, payload: Any):
        """Leader: replicate ``payload`` and return once a majority has acked."""
        if not self.is_leader:
            raise ProtocolError(f"{self.node_id} is not the Raft leader")
        sequence = self.allocate_sequence()
        entry = self._log.setdefault(sequence, _LogEntry())
        entry.payload = payload
        entry.acks.add(self.node_id)
        yield self.cost_model.consensus_step + self.cost_model.signature
        self.sign_and_multicast(APPEND, {"term": self.term, "seq": sequence, "payload": payload})
        if self.majority == 1:
            self._commit_as_leader(sequence)
        decision = yield from self.await_decision(
            sequence,
            resend=lambda: self.sign_and_multicast(
                APPEND, {"term": self.term, "seq": sequence, "payload": payload}
            ),
        )
        return decision

    def handle_message(self, envelope: Envelope):
        """Handle APPEND (follower), APPEND_ACK (leader) or COMMIT_NOTICE (follower)."""
        self.messages_handled += 1
        yield self.cost_model.consensus_step
        if not self.verify_envelope(envelope):
            return None
        kind = envelope.message.kind
        body = envelope.message.body
        sequence = int(body["seq"])
        if kind == APPEND:
            if envelope.sender != self.leader or int(body.get("term", 0)) != self.term:
                return None
            self._replicated[sequence] = body.get("payload")
            self._note_sequence(sequence)
            self.sign_and_send(self.leader, APPEND_ACK, {"term": self.term, "seq": sequence})
            if sequence in self._pending_commit:
                self._pending_commit.discard(sequence)
                self.record_decision(sequence, self._replicated[sequence], proposer=self.leader)
        elif kind == APPEND_ACK:
            if not self.is_leader:
                return None
            entry = self._log.get(sequence)
            if entry is None or entry.committed:
                return None
            entry.acks.add(envelope.sender)
            if len(entry.acks) >= self.majority:
                self._commit_as_leader(sequence)
        elif kind == COMMIT_NOTICE:
            if envelope.sender != self.leader:
                return None
            if sequence not in self._replicated and "payload" not in body:
                # The notice overtook its APPEND (reordering fault): wait for
                # the payload rather than deciding a None value.
                self._pending_commit.add(sequence)
                return None
            payload = self._replicated.get(sequence, body.get("payload"))
            self.record_decision(sequence, payload, proposer=self.leader)
        return None

    # -------------------------------------------------------------- internals
    def _commit_as_leader(self, sequence: int) -> None:
        entry = self._log[sequence]
        if entry.committed:
            return
        entry.committed = True
        self.record_decision(sequence, entry.payload, proposer=self.node_id)
        self.sign_and_multicast(COMMIT_NOTICE, {"term": self.term, "seq": sequence})
