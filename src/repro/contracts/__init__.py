"""Smart contracts: application logic installed on agent (executor) nodes.

A smart contract is a deterministic program that, given a transaction and a
read view of the datastore, produces the transaction's state updates (or an
abort).  Three contracts ship with the library:

* :class:`~repro.contracts.accounting.AccountingContract` — the paper's
  evaluation workload: accounts with balances and transfer transactions.
* :class:`~repro.contracts.kvstore.KeyValueContract` — generic reads/writes,
  handy for synthetic workloads with arbitrary read/write sets.
* :class:`~repro.contracts.supply_chain.SupplyChainContract` — a multi-party
  asset-tracking application, the kind of cross-organisation workload the
  paper's introduction motivates.
"""

from repro.contracts.base import ContractRegistry, SmartContract
from repro.contracts.accounting import AccountingContract
from repro.contracts.kvstore import KeyValueContract
from repro.contracts.supply_chain import SupplyChainContract

__all__ = [
    "AccountingContract",
    "ContractRegistry",
    "KeyValueContract",
    "SmartContract",
    "SupplyChainContract",
]
