"""The paper's evaluation workload: a simple accounting application.

Each account is a record ``(balance, owner)``; clients submit transfer
transactions moving assets from one or more of their accounts to other
accounts.  A transfer is valid if the issuing client owns every source account
and each source balance covers the amount drawn from it; otherwise the
transaction aborts (the paper's ``(x, "abort")`` case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.common.errors import ContractError
from repro.common.registry import register_contract
from repro.contracts.base import SmartContract
from repro.core.transaction import ReadWriteSet, Transaction, TransactionResult


def account_key(account_number: int | str) -> str:
    """Canonical state key for an account record."""
    return f"account/{account_number}"


@dataclass(frozen=True)
class Account:
    """An account record stored in the world state."""

    balance: float
    owner: str

    def canonical_tuple(self) -> tuple:
        return ("account", self.balance, self.owner)


@dataclass(frozen=True)
class Transfer:
    """One leg of a transfer: draw ``amount`` from ``source`` into ``destination``."""

    source: str
    destination: str
    amount: float


@register_contract("accounting")
class AccountingContract(SmartContract):
    """Asset transfers between accounts, with owner and balance checks."""

    #: :meth:`execute` reads exactly the transfer legs' account records, all
    #: of which :meth:`make_transfer_transaction` declares in the rw-set, so
    #: results can be replayed across executing peers (see
    #: :attr:`repro.contracts.base.SmartContract.replay_cacheable`).
    replay_cacheable = True

    def __init__(self, application: str, enforce_ownership: bool = True) -> None:
        self.application = application
        self.enforce_ownership = enforce_ownership

    # ------------------------------------------------------------- tx helpers
    @staticmethod
    def make_transfer_transaction(
        tx_id: str,
        application: str,
        client: str,
        transfers: Sequence[Transfer],
        client_timestamp: float = 0.0,
    ) -> Transaction:
        """Build a transfer transaction with its read/write sets pre-declared.

        The read set contains every source account (balances and ownership are
        checked); the write set contains every account whose balance changes —
        sources and destinations — matching the paper's example where
        ``rho(T) = {1001}`` and ``omega(T) = {1001, 1002}``.
        """
        if not transfers:
            raise ContractError("a transfer transaction needs at least one transfer")
        reads = {account_key(t.source) for t in transfers}
        writes = {account_key(t.source) for t in transfers} | {
            account_key(t.destination) for t in transfers
        }
        payload = {
            "transfers": tuple(
                {"source": t.source, "destination": t.destination, "amount": t.amount}
                for t in transfers
            )
        }
        return Transaction(
            tx_id=tx_id,
            application=application,
            rw_set=ReadWriteSet.build(reads=reads, writes=writes),
            payload=payload,
            client=client,
            client_timestamp=client_timestamp,
        )

    # -------------------------------------------------------------- execution
    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        """Apply every transfer leg; abort on unknown account, bad owner or overdraft.

        Abort reasons are stable strings ("empty_transfers", "missing_account",
        "not_owner", "insufficient_funds") — retry policies and the abort-storm
        bench key on them, and every executor produces the same string for the
        same transaction, so reason votes never split.
        """
        transfers = transaction.payload.get("transfers", ())
        if not transfers:
            return TransactionResult.abort(transaction, reason="empty_transfers")
        balances: Dict[str, float] = {}
        owners: Dict[str, str] = {}
        # Resolve every account key once up front; this method runs once per
        # transaction per executing peer, so the key strings and record
        # lookups are worth not repeating in the transfer loop below.
        legs = []
        read = state_view.get
        for leg in transfers:
            source_key = account_key(leg["source"])
            destination_key = account_key(leg["destination"])
            legs.append((source_key, destination_key, leg["amount"]))
            for key in (source_key, destination_key):
                if key in balances:
                    continue
                record = read(key)
                if record is None:
                    return TransactionResult.abort(transaction, reason="missing_account")
                balance, owner = self._unpack(record)
                balances[key] = balance
                owners[key] = owner
        client = transaction.client
        check_owner = self.enforce_ownership and bool(client)
        for source_key, destination_key, amount in legs:
            if check_owner and owners[source_key] != client:
                return TransactionResult.abort(transaction, reason="not_owner")
            balance = balances[source_key]
            if balance < amount:
                return TransactionResult.abort(transaction, reason="insufficient_funds")
            balances[source_key] = balance - amount
            balances[destination_key] += amount
        updates = {
            key: {"balance": balances[key], "owner": owners[key]}
            for key in sorted(balances)
        }
        return TransactionResult(
            tx_id=transaction.tx_id,
            application=transaction.application,
            updates=updates,
            status="ok",
        )

    @staticmethod
    def _unpack(record: object) -> Tuple[float, str]:
        if type(record) is dict:  # the overwhelmingly common stored form
            return float(record["balance"]), str(record.get("owner", ""))
        if isinstance(record, Account):
            return record.balance, record.owner
        if isinstance(record, Mapping):
            return float(record["balance"]), str(record.get("owner", ""))
        raise ContractError(f"malformed account record: {record!r}")

    # ---------------------------------------------------------- state helpers
    @staticmethod
    def initial_state(
        accounts: Iterable[Tuple[str, float, str]]
    ) -> Dict[str, Dict[str, object]]:
        """Build the initial world state for ``(account, balance, owner)`` triples."""
        return {
            account_key(account): {"balance": float(balance), "owner": owner}
            for account, balance, owner in accounts
        }

    @staticmethod
    def balance_of(state: Mapping[str, object], account: int | str) -> float:
        """Balance of ``account`` in ``state`` (0.0 when absent)."""
        record = state.get(account_key(account))
        if record is None:
            return 0.0
        if isinstance(record, Account):
            return record.balance
        return float(record["balance"])  # type: ignore[index,call-overload]

    @staticmethod
    def total_balance(state: Mapping[str, object]) -> float:
        """Sum of every account balance — conserved by any valid execution."""
        total = 0.0
        for key, record in state.items():
            if not key.startswith("account/"):
                continue
            if isinstance(record, Account):
                total += record.balance
            else:
                total += float(record["balance"])  # type: ignore[index,call-overload]
        return total
