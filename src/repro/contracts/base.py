"""The smart-contract interface and per-application contract registry."""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Mapping

from repro.common.errors import ContractError
from repro.core.transaction import Transaction, TransactionResult

#: Synthetic application id of cross-shard 2PC records (see repro.sharding).
#: Defined here (not in repro.sharding) so the registry's lock gate has no
#: dependency on the sharding package.
CROSS_SHARD_APP = "_xshard"

#: World-state key prefix of cross-shard locks: ``_xlock:{key}`` holds
#: ``(base_tx_id, stashed_value_of_key)`` while ``base_tx_id``'s two-phase
#: commit is in flight, and ``""`` once released.
CROSS_SHARD_LOCK_PREFIX = "_xlock:"

#: Stable abort reason for transactions that try to write a locked key.
CROSS_SHARD_LOCK_ABORT = "cross_shard_lock_conflict"


def cross_shard_lock_key(key: str) -> str:
    """The world-state key holding the cross-shard lock for ``key``."""
    return CROSS_SHARD_LOCK_PREFIX + key


def cross_shard_lock_holder(value: object) -> str:
    """The base transaction id holding a lock, or ``""`` if free."""
    if not value:
        return ""
    return str(value[0]) if isinstance(value, (tuple, list)) else str(value)


class SmartContract(abc.ABC):
    """Deterministic application logic executed by agent nodes.

    Contracts must be pure functions of ``(transaction, state_view)``: given
    the same inputs they must produce the same updates on every executor, which
    is what makes τ(A) matching-result counting meaningful.
    """

    #: Name of the application this contract implements.
    application: str = ""

    #: Opt-in for the registry's replay cache: a contract may set this to
    #: True iff :meth:`execute` is a pure function of the transaction and of
    #: the state records named by ``transaction.rw_set.keys`` (no reads
    #: outside the declared read/write sets, no hidden inputs).  Every
    #: paradigm re-executes the same transaction on each replica against
    #: byte-identical state, so the registry can then compute the result once
    #: per (transaction, observed record versions) and replay it on the
    #: other peers.
    replay_cacheable: bool = False

    @abc.abstractmethod
    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        """Execute ``transaction`` against a read view of the datastore."""

    def validate_access(self, client: str, transaction: Transaction) -> bool:
        """Access control hook: is ``client`` allowed to submit this transaction?

        The default allows everyone; deployments can subclass to restrict.
        """
        return True

    def __call__(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        return self.execute(transaction, state_view)


class ContractRegistry:
    """Maps application ids to smart contracts and executors to their agents.

    The registry plays the role of ``Σ`` in the paper: for each application it
    records the non-empty set of executor nodes where the contract is
    installed.  Orderers never appear here — they have no access to contracts
    or application state.
    """

    #: Bound on memoised execution results; once full, new results are
    #: returned uncached (a registry lives for one deployment, so in practice
    #: this only guards pathological workloads).
    _REPLAY_CACHE_MAX = 1 << 16

    def __init__(self) -> None:
        self._contracts: Dict[str, SmartContract] = {}
        self._agents: Dict[str, List[str]] = {}
        self._cross_shard_locks = False
        #: ``(tx digest, observed rw-set versions) -> TransactionResult`` for
        #: contracts declaring :attr:`SmartContract.replay_cacheable`.  Within
        #: one run ``(key, version) -> value`` is a function across replicas
        #: (identical initial state, identical totally-ordered writes), so the
        #: versions of the declared read/write keys pin every record a
        #: cacheable contract may read.
        self._replay_cache: Dict[tuple, TransactionResult] = {}

    @property
    def cross_shard_locks_enabled(self) -> bool:
        """True once a sharded deployment turned on write-lock enforcement."""
        return self._cross_shard_locks

    def enable_cross_shard_locks(self) -> None:
        """Make :meth:`execute` abort writes to cross-shard-locked keys.

        Only multi-shard deployments call this; the unsharded execution path
        never pays the per-transaction lock probe.
        """
        self._cross_shard_locks = True

    # ----------------------------------------------------------- registration
    def install(self, contract: SmartContract, agents: Iterable[str]) -> None:
        """Install ``contract`` on ``agents`` (must be non-empty)."""
        agent_list = list(agents)
        if not agent_list:
            raise ContractError(
                f"application {contract.application!r} needs at least one agent"
            )
        if not contract.application:
            raise ContractError("contract must declare its application name")
        self._contracts[contract.application] = contract
        self._agents[contract.application] = agent_list

    # ---------------------------------------------------------------- queries
    def applications(self) -> List[str]:
        """Every registered application id."""
        return list(self._contracts)

    def contract(self, application: str) -> SmartContract:
        """The contract implementing ``application``."""
        try:
            return self._contracts[application]
        except KeyError:
            raise ContractError(f"no contract installed for application {application!r}") from None

    def agents_of(self, application: str) -> List[str]:
        """``Σ(A)`` — executor nodes hosting ``application``'s contract."""
        try:
            return list(self._agents[application])
        except KeyError:
            raise ContractError(f"no agents registered for application {application!r}") from None

    def is_agent(self, executor: str, application: str) -> bool:
        """True if ``executor`` hosts the contract of ``application``."""
        return executor in self._agents.get(application, ())

    def applications_of(self, executor: str) -> List[str]:
        """Applications for which ``executor`` is an agent."""
        return [app for app, agents in self._agents.items() if executor in agents]

    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object], executed_by: str = ""
    ) -> TransactionResult:
        """Run the right contract for ``transaction`` and stamp the executor id.

        With cross-shard locks enabled, a transaction that writes a key whose
        ``_xlock:`` entry is held by another transaction aborts here — before
        the contract runs — so an in-flight two-phase commit's read snapshot
        stays stable between PREPARE and COMMIT.  Readers of locked keys are
        never blocked.
        """
        if self._cross_shard_locks and transaction.application != CROSS_SHARD_APP:
            for key in transaction.rw_set.writes:
                holder = cross_shard_lock_holder(
                    state_view.get(CROSS_SHARD_LOCK_PREFIX + key)
                )
                if holder and holder != transaction.tx_id:
                    return TransactionResult.abort(
                        transaction,
                        executed_by=executed_by,
                        reason=CROSS_SHARD_LOCK_ABORT,
                    )
        contract = self.contract(transaction.application)
        if contract.replay_cacheable and not self._cross_shard_locks:
            # The lock gate above reads ``_xlock:`` records outside the
            # declared rw-set, so the cache is only consulted when locks are
            # off (single-shard deployments — exactly the replica-heavy case).
            version_of = getattr(state_view, "version", None)
            if version_of is not None:
                cache = self._replay_cache
                cache_key = (
                    transaction.digest(),
                    tuple(version_of(key) for key in transaction.rw_set.sorted_keys()),
                )
                cached = cache.get(cache_key)
                if cached is not None:
                    if not executed_by or cached.executed_by == executed_by:
                        return cached
                    # Same execution outcome, different executor: share the
                    # field dict (updates mapping, memoised canonical bytes)
                    # and restamp only the executor id.
                    replayed = object.__new__(TransactionResult)
                    replayed.__dict__.update(cached.__dict__)
                    object.__setattr__(replayed, "executed_by", executed_by)
                    return replayed
                result = contract.execute(transaction, state_view)
                if executed_by and not result.executed_by:
                    object.__setattr__(result, "executed_by", executed_by)
                if len(cache) < self._REPLAY_CACHE_MAX:
                    cache[cache_key] = result
                return result
        result = contract.execute(transaction, state_view)
        if executed_by and not result.executed_by:
            # The result was constructed by the contract call above and is not
            # yet shared, so stamping in place is equivalent to copying — and
            # this runs once per (transaction, executor).
            object.__setattr__(result, "executed_by", executed_by)
        return result
