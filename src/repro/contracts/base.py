"""The smart-contract interface and per-application contract registry."""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Mapping

from repro.common.errors import ContractError
from repro.core.transaction import Transaction, TransactionResult

#: Synthetic application id of cross-shard 2PC records (see repro.sharding).
#: Defined here (not in repro.sharding) so the registry's lock gate has no
#: dependency on the sharding package.
CROSS_SHARD_APP = "_xshard"

#: World-state key prefix of cross-shard locks: ``_xlock:{key}`` holds
#: ``(base_tx_id, stashed_value_of_key)`` while ``base_tx_id``'s two-phase
#: commit is in flight, and ``""`` once released.
CROSS_SHARD_LOCK_PREFIX = "_xlock:"

#: Stable abort reason for transactions that try to write a locked key.
CROSS_SHARD_LOCK_ABORT = "cross_shard_lock_conflict"


def cross_shard_lock_key(key: str) -> str:
    """The world-state key holding the cross-shard lock for ``key``."""
    return CROSS_SHARD_LOCK_PREFIX + key


def cross_shard_lock_holder(value: object) -> str:
    """The base transaction id holding a lock, or ``""`` if free."""
    if not value:
        return ""
    return str(value[0]) if isinstance(value, (tuple, list)) else str(value)


class SmartContract(abc.ABC):
    """Deterministic application logic executed by agent nodes.

    Contracts must be pure functions of ``(transaction, state_view)``: given
    the same inputs they must produce the same updates on every executor, which
    is what makes τ(A) matching-result counting meaningful.
    """

    #: Name of the application this contract implements.
    application: str = ""

    @abc.abstractmethod
    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        """Execute ``transaction`` against a read view of the datastore."""

    def validate_access(self, client: str, transaction: Transaction) -> bool:
        """Access control hook: is ``client`` allowed to submit this transaction?

        The default allows everyone; deployments can subclass to restrict.
        """
        return True

    def __call__(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        return self.execute(transaction, state_view)


class ContractRegistry:
    """Maps application ids to smart contracts and executors to their agents.

    The registry plays the role of ``Σ`` in the paper: for each application it
    records the non-empty set of executor nodes where the contract is
    installed.  Orderers never appear here — they have no access to contracts
    or application state.
    """

    def __init__(self) -> None:
        self._contracts: Dict[str, SmartContract] = {}
        self._agents: Dict[str, List[str]] = {}
        self._cross_shard_locks = False

    @property
    def cross_shard_locks_enabled(self) -> bool:
        """True once a sharded deployment turned on write-lock enforcement."""
        return self._cross_shard_locks

    def enable_cross_shard_locks(self) -> None:
        """Make :meth:`execute` abort writes to cross-shard-locked keys.

        Only multi-shard deployments call this; the unsharded execution path
        never pays the per-transaction lock probe.
        """
        self._cross_shard_locks = True

    # ----------------------------------------------------------- registration
    def install(self, contract: SmartContract, agents: Iterable[str]) -> None:
        """Install ``contract`` on ``agents`` (must be non-empty)."""
        agent_list = list(agents)
        if not agent_list:
            raise ContractError(
                f"application {contract.application!r} needs at least one agent"
            )
        if not contract.application:
            raise ContractError("contract must declare its application name")
        self._contracts[contract.application] = contract
        self._agents[contract.application] = agent_list

    # ---------------------------------------------------------------- queries
    def applications(self) -> List[str]:
        """Every registered application id."""
        return list(self._contracts)

    def contract(self, application: str) -> SmartContract:
        """The contract implementing ``application``."""
        try:
            return self._contracts[application]
        except KeyError:
            raise ContractError(f"no contract installed for application {application!r}") from None

    def agents_of(self, application: str) -> List[str]:
        """``Σ(A)`` — executor nodes hosting ``application``'s contract."""
        try:
            return list(self._agents[application])
        except KeyError:
            raise ContractError(f"no agents registered for application {application!r}") from None

    def is_agent(self, executor: str, application: str) -> bool:
        """True if ``executor`` hosts the contract of ``application``."""
        return executor in self._agents.get(application, ())

    def applications_of(self, executor: str) -> List[str]:
        """Applications for which ``executor`` is an agent."""
        return [app for app, agents in self._agents.items() if executor in agents]

    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object], executed_by: str = ""
    ) -> TransactionResult:
        """Run the right contract for ``transaction`` and stamp the executor id.

        With cross-shard locks enabled, a transaction that writes a key whose
        ``_xlock:`` entry is held by another transaction aborts here — before
        the contract runs — so an in-flight two-phase commit's read snapshot
        stays stable between PREPARE and COMMIT.  Readers of locked keys are
        never blocked.
        """
        if self._cross_shard_locks and transaction.application != CROSS_SHARD_APP:
            for key in transaction.rw_set.writes:
                holder = cross_shard_lock_holder(
                    state_view.get(CROSS_SHARD_LOCK_PREFIX + key)
                )
                if holder and holder != transaction.tx_id:
                    return TransactionResult.abort(
                        transaction,
                        executed_by=executed_by,
                        reason=CROSS_SHARD_LOCK_ABORT,
                    )
        contract = self.contract(transaction.application)
        result = contract.execute(transaction, state_view)
        if executed_by and not result.executed_by:
            result = TransactionResult(
                tx_id=result.tx_id,
                application=result.application,
                updates=result.updates,
                status=result.status,
                executed_by=executed_by,
                read_versions=result.read_versions,
                abort_reason=result.abort_reason,
            )
        return result
