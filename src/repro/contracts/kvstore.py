"""A generic key-value contract for synthetic workloads.

Transactions carry explicit ``reads``/``writes`` in their payload; execution
reads the listed keys and writes deterministic derived values.  The contract is
used by property-based tests and by workloads that need precise control over
read/write sets without the accounting semantics.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.common.registry import register_contract
from repro.contracts.base import SmartContract
from repro.core.transaction import ReadWriteSet, Transaction, TransactionResult


@register_contract("kvstore")
class KeyValueContract(SmartContract):
    """Reads and writes opaque values; never aborts."""

    def __init__(self, application: str) -> None:
        self.application = application

    @staticmethod
    def make_transaction(
        tx_id: str,
        application: str,
        reads: Sequence[str],
        writes: Mapping[str, object],
        client: str = "",
    ) -> Transaction:
        """Build a transaction reading ``reads`` and writing ``writes``."""
        return Transaction(
            tx_id=tx_id,
            application=application,
            rw_set=ReadWriteSet.build(reads=reads, writes=writes.keys()),
            payload={"writes": dict(writes), "reads": tuple(reads)},
            client=client,
        )

    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        """Write the payload values; values of ``None`` copy the read sum instead.

        A ``None`` write value makes the output depend on the values read, so
        tests can verify that dependency ordering actually affects results.
        """
        writes: Dict[str, object] = {}
        read_values = [state_view.get(key, 0) for key in transaction.payload.get("reads", ())]
        numeric_reads = [v for v in read_values if isinstance(v, (int, float))]
        derived = sum(numeric_reads) + 1
        for key, value in transaction.payload.get("writes", {}).items():
            writes[key] = derived if value is None else value
        return TransactionResult(
            tx_id=transaction.tx_id,
            application=transaction.application,
            updates=writes,
            status="ok",
        )
