"""A supply-chain asset-tracking contract.

The paper's introduction motivates permissioned blockchains with supply-chain
management: multiple organisations record custody transfers of assets on a
shared ledger.  This contract models that: assets move between organisations
("ship"), change state ("inspect") and are created ("register").  Shipments of
the same asset conflict on the asset record, producing realistic contention
between the transactions of different applications sharing a datastore.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.registry import register_contract
from repro.contracts.base import SmartContract
from repro.core.transaction import ReadWriteSet, Transaction, TransactionResult


def asset_key(asset_id: str) -> str:
    """Canonical state key for an asset record."""
    return f"asset/{asset_id}"


@register_contract("supply_chain")
class SupplyChainContract(SmartContract):
    """Register, ship and inspect assets with custody checks."""

    def __init__(self, application: str) -> None:
        self.application = application

    # ------------------------------------------------------------- tx helpers
    @staticmethod
    def make_register(tx_id: str, application: str, asset_id: str, owner: str) -> Transaction:
        """Create a new asset owned by ``owner``."""
        return Transaction(
            tx_id=tx_id,
            application=application,
            rw_set=ReadWriteSet.build(reads=(), writes=(asset_key(asset_id),)),
            payload={"action": "register", "asset": asset_id, "owner": owner},
            client=owner,
        )

    @staticmethod
    def make_ship(
        tx_id: str, application: str, asset_id: str, sender: str, recipient: str
    ) -> Transaction:
        """Transfer custody of ``asset_id`` from ``sender`` to ``recipient``."""
        key = asset_key(asset_id)
        return Transaction(
            tx_id=tx_id,
            application=application,
            rw_set=ReadWriteSet.build(reads=(key,), writes=(key,)),
            payload={"action": "ship", "asset": asset_id, "to": recipient},
            client=sender,
        )

    @staticmethod
    def make_inspect(tx_id: str, application: str, asset_id: str, inspector: str, verdict: str) -> Transaction:
        """Record an inspection verdict on ``asset_id``."""
        key = asset_key(asset_id)
        return Transaction(
            tx_id=tx_id,
            application=application,
            rw_set=ReadWriteSet.build(reads=(key,), writes=(key,)),
            payload={"action": "inspect", "asset": asset_id, "verdict": verdict},
            client=inspector,
        )

    # -------------------------------------------------------------- execution
    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        """Dispatch on the payload action; abort on missing assets or bad custody."""
        action = transaction.payload.get("action")
        asset_id = transaction.payload.get("asset")
        if not asset_id or action not in ("register", "ship", "inspect"):
            return TransactionResult.abort(transaction, reason="unknown_action")
        key = asset_key(str(asset_id))
        record = state_view.get(key)

        if action == "register":
            if record is not None:
                return TransactionResult.abort(transaction, reason="already_registered")
            new_record = {
                "owner": transaction.payload.get("owner", transaction.client),
                "history": ("registered",),
                "status": "in_stock",
            }
            return self._ok(transaction, key, new_record)

        if record is None or not isinstance(record, Mapping):
            return TransactionResult.abort(transaction, reason="missing_asset")

        if action == "ship":
            if transaction.client and record.get("owner") != transaction.client:
                return TransactionResult.abort(transaction, reason="bad_custody")
            new_record = {
                "owner": transaction.payload["to"],
                "history": tuple(record.get("history", ())) + (f"shipped_to:{transaction.payload['to']}",),
                "status": "in_transit",
            }
            return self._ok(transaction, key, new_record)

        # action == "inspect"
        new_record = {
            "owner": record.get("owner"),
            "history": tuple(record.get("history", ())) + (f"inspected:{transaction.payload['verdict']}",),
            "status": transaction.payload["verdict"],
        }
        return self._ok(transaction, key, new_record)

    @staticmethod
    def _ok(transaction: Transaction, key: str, record: Mapping[str, object]) -> TransactionResult:
        return TransactionResult(
            tx_id=transaction.tx_id,
            application=transaction.application,
            updates={key: dict(record)},
            status="ok",
        )
