"""The paper's primary contribution: dependency-graph based transaction parallelism.

This package contains everything that is specific to the OXII paradigm's core
idea, independent of any particular deployment:

* :class:`~repro.core.transaction.Transaction` — a request with pre-declared
  read and write sets and a total-order timestamp.
* :class:`~repro.core.dependency_graph.DependencyGraph` — the partial order
  over a block's transactions induced by ordering dependencies (Section III-A),
  including the multi-version (MVCC) variant and DGCC-style operation-level
  graphs.
* :class:`~repro.core.block.Block` and
  :class:`~repro.core.block_builder.BlockBuilder` — blocks with the three
  block-cut conditions of Section IV-B.
* :mod:`~repro.core.execution` — Algorithms 1–3: dependency-graph-driven
  execution scheduling, commit-message batching on cross-application cut
  edges, and the τ(A)-matching state update rule.
* :class:`~repro.core.parallel_executor.ParallelGraphExecutor` — a real
  thread-pool executor that runs a dependency graph with actual threads (used
  by the examples and correctness tests; benchmarks use the simulator).
"""

from repro.core.transaction import Operation, ReadWriteSet, Transaction, TransactionResult
from repro.core.dependency_graph import (
    ConflictType,
    DependencyEdge,
    DependencyGraph,
    GraphMode,
    OperationGraph,
    StreamingGraphBuilder,
    build_dependency_graph,
    build_operation_graph,
    conflicts,
    has_ordering_dependency,
)
from repro.core.graph_core import AdjacencyDAG, UnionFind
from repro.core.block import Block, BlockHeader
from repro.core.block_builder import BlockBuilder, CutReason
from repro.core.execution import (
    CommitBatcher,
    CountdownScheduler,
    ExecutionEngine,
    GraphScheduler,
    StateUpdater,
)
from repro.core.parallel_executor import ParallelGraphExecutor

__all__ = [
    "AdjacencyDAG",
    "Block",
    "BlockBuilder",
    "BlockHeader",
    "CommitBatcher",
    "ConflictType",
    "CountdownScheduler",
    "CutReason",
    "DependencyEdge",
    "DependencyGraph",
    "ExecutionEngine",
    "GraphMode",
    "GraphScheduler",
    "Operation",
    "OperationGraph",
    "ParallelGraphExecutor",
    "ReadWriteSet",
    "StateUpdater",
    "StreamingGraphBuilder",
    "Transaction",
    "TransactionResult",
    "UnionFind",
    "build_dependency_graph",
    "build_operation_graph",
    "conflicts",
    "has_ordering_dependency",
]
