"""Optional numpy acceleration for the graph/execution hot path.

The runtime is deliberately dependency-free (``pyproject.toml`` declares no
runtime dependencies), so numpy is an *accelerator*, never a requirement:
every consumer keeps a pure-Python fallback and only switches to the
vectorised path when numpy imports.  Set ``REPRO_NO_NUMPY=1`` to force the
fallback paths even when numpy is installed (CI exercises both).

Where numpy pays — and where it does not — was decided by profiling, not
taste (see ``docs/performance.md``):

* whole-block, per-node passes (wave partition of a block, the
  cross-application successor bitmap) vectorise well and are used every
  block;
* the countdown scheduler's per-event bookkeeping (decrement a handful of
  successor counters per settle) does *not* pay: the adjacency lists are
  short and the per-call numpy overhead exceeds the list-walk it replaces,
  so the scheduler stays on plain lists/bytearrays.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via REPRO_NO_NUMPY in tests
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0", "false"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as np
except ImportError:  # pragma: no cover - depends on environment
    np = None  # type: ignore[assignment]

#: True when the vectorised paths are active.
HAVE_NUMPY = np is not None
