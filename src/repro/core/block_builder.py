"""Block assembly with the paper's three cut conditions (Section IV-B).

Orderers accumulate ordered transactions into the next block and cut it when
the first of three conditions is met: the block reaches its maximal number of
transactions, its maximal serialised size, or the maximal time since the first
transaction of the block was received has elapsed.  The first two conditions
are deterministic given the transaction order; the timeout condition is made
deterministic across orderers by the primary's cut-block message, which the
consensus layer models by having every orderer cut on the agreed sequence
number.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.common.config import BlockCutPolicy
from repro.core.block import Block
from repro.core.dependency_graph import (
    DependencyGraph,
    GraphConstruction,
    GraphMode,
    StreamingGraphBuilder,
    build_dependency_graph,
)
from repro.core.transaction import Transaction


class CutReason(str, Enum):
    """Which of the three conditions closed the block."""

    MAX_TRANSACTIONS = "max_transactions"
    MAX_BYTES = "max_bytes"
    TIMEOUT = "timeout"
    FORCED = "forced"


@dataclass(frozen=True)
class PendingBlock:
    """A cut block before it is sealed: transactions plus the cut reason.

    ``graph`` carries the dependency graph the orderer grew incrementally
    while the block filled (when graph generation is enabled); sealing reuses
    it instead of rebuilding from scratch.
    """

    transactions: Sequence[Transaction]
    reason: CutReason
    opened_at: float
    cut_at: float
    graph: Optional[DependencyGraph] = None

    def canonical_tuple(self) -> tuple:
        return (
            "pending_block",
            tuple(tx.digest() for tx in self.transactions),
            self.reason.value,
        )


class BlockBuilder:
    """Accumulates ordered transactions and cuts blocks deterministically."""

    def __init__(
        self,
        policy: BlockCutPolicy,
        tx_size_bytes: int = 256,
        generate_graphs: bool = True,
        graph_mode: GraphMode = GraphMode.SINGLE_VERSION,
        graph_construction: GraphConstruction = GraphConstruction.SPARSE,
    ) -> None:
        self.policy = policy
        self.tx_size_bytes = tx_size_bytes
        self.generate_graphs = generate_graphs
        self.graph_mode = graph_mode
        self.graph_construction = graph_construction
        self._pending: List[Transaction] = []
        self._graph_builder: Optional[StreamingGraphBuilder] = (
            StreamingGraphBuilder(mode=graph_mode, construction=graph_construction)
            if generate_graphs
            else None
        )
        self._opened_at: Optional[float] = None
        self._next_sequence = 1
        self._previous_hash = Block.genesis().digest()
        self._next_timestamp = 1
        self.blocks_cut = 0

    # ------------------------------------------------------------------ state
    @property
    def pending_count(self) -> int:
        """Number of transactions waiting in the open block."""
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        """Serialised size of the open block."""
        return len(self._pending) * self.tx_size_bytes

    @property
    def next_sequence(self) -> int:
        """Sequence number the next cut block will receive."""
        return self._next_sequence

    def opened_at(self) -> Optional[float]:
        """Time the first transaction of the open block arrived, if any."""
        return self._opened_at

    # ------------------------------------------------------------------- adds
    def add(self, transaction: Transaction, now: float) -> Optional[PendingBlock]:
        """Append an ordered transaction; return a cut block if a limit is hit."""
        if self._opened_at is None:
            self._opened_at = now
        stamped = transaction.with_timestamp(self._next_timestamp)
        self._next_timestamp += 1
        self._pending.append(stamped)
        if self._graph_builder is not None:
            self._graph_builder.add(stamped)
        if self.pending_count >= self.policy.max_transactions:
            return self._cut(CutReason.MAX_TRANSACTIONS, now)
        if self.pending_bytes >= self.policy.max_bytes:
            return self._cut(CutReason.MAX_BYTES, now)
        return None

    def timeout_due(self, now: float) -> bool:
        """True if the open block has exceeded its maximal production time."""
        return (
            self._opened_at is not None
            and self._pending
            and now - self._opened_at >= self.policy.max_delay
        )

    def cut_on_timeout(self, now: float) -> Optional[PendingBlock]:
        """Cut the open block because the timeout condition fired."""
        if not self._pending:
            return None
        return self._cut(CutReason.TIMEOUT, now)

    def force_cut(self, now: float) -> Optional[PendingBlock]:
        """Cut whatever is pending (used at the end of an experiment)."""
        if not self._pending:
            return None
        return self._cut(CutReason.FORCED, now)

    def _cut(self, reason: CutReason, now: float) -> PendingBlock:
        graph: Optional[DependencyGraph] = None
        if self._graph_builder is not None:
            graph = self._graph_builder.take_graph()
        pending = PendingBlock(
            transactions=tuple(self._pending),
            reason=reason,
            opened_at=self._opened_at if self._opened_at is not None else now,
            cut_at=now,
            graph=graph,
        )
        self._pending = []
        self._opened_at = None
        self.blocks_cut += 1
        return pending

    # ---------------------------------------------------------------- sealing
    def seal(self, pending: PendingBlock, now: float) -> Block:
        """Turn a cut block into a sealed, hash-chained :class:`Block`.

        When ``generate_graphs`` is set (the OXII paradigm) the dependency
        graph the orderer grew while the block filled is attached here; a
        foreign :class:`PendingBlock` without one falls back to a batch
        rebuild.  (The *simulated* cost charged for this step stays quadratic
        — see :meth:`repro.common.config.CostModel.dependency_graph_cost` —
        which is what shapes Figure 5.)
        """
        graph = None
        if self.generate_graphs:
            graph = pending.graph
            if (
                graph is None
                or graph.mode is not self.graph_mode
                or graph.construction is not self.graph_construction
            ):
                graph = build_dependency_graph(
                    pending.transactions,
                    mode=self.graph_mode,
                    construction=self.graph_construction,
                )
        block = Block.create(
            sequence=self._next_sequence,
            transactions=pending.transactions,
            previous_hash=self._previous_hash,
            created_at=now,
            dependency_graph=graph,
        )
        self._next_sequence += 1
        self._previous_hash = block.digest()
        return block
