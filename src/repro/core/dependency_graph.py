"""Dependency graph construction (Section III-A of the paper).

Two transactions conflict if they access the same record and at least one of
the accesses is a write.  Given a block ``[T1 .. Tn]`` ordered by timestamp,
an *ordering dependency* ``Ti ~> Tj`` exists iff ``ts(Ti) < ts(Tj)`` and the
transactions conflict.  The dependency graph of a block is the directed graph
whose nodes are the block's transactions and whose edges are the ordering
dependencies.  Because every edge points from an earlier to a later
transaction, the graph is acyclic by construction.

Three construction modes are provided, all discussed in the paper:

* ``single_version`` (default) — the definition above: read-write,
  write-read and write-write conflicts all create edges.
* ``multi_version`` — for an MVCC datastore, writes create new versions, so
  write-write pairs and read-then-write pairs need no edge; only
  write-then-read pairs (the reader needs the writer's version) are ordered.
* operation-level graphs (DGCC-style) via :func:`build_operation_graph`, which
  splits each transaction into per-record operations so execution can be
  parallelised at operation granularity.

The graphs are backed by the dense integer-indexed adjacency core in
:mod:`repro.core.graph_core` — nodes are block positions, edges are plain
Python lists and every structural query (roots, components, critical path,
topological order) runs on arrays rather than dict-of-dict storage.  Orderers
that fill a block transaction-by-transaction should use
:class:`StreamingGraphBuilder`, which maintains per-record writer/reader
indices so each arriving transaction only pays for the conflicts it actually
introduces instead of rebuilding the graph from scratch.  ``networkx`` is
*not* required at runtime; :meth:`DependencyGraph.to_networkx` imports it
lazily for debugging/plotting only (install the ``debug`` extra).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common.errors import DependencyGraphError
from repro.core._accel import np as _np
from repro.core.graph_core import AdjacencyDAG, depth_histogram
from repro.core.transaction import Operation, OperationType, Transaction


class ConflictType(str, Enum):
    """Why two transactions are ordered."""

    READ_WRITE = "rw"    # earlier reads a record the later writes
    WRITE_READ = "wr"    # earlier writes a record the later reads
    WRITE_WRITE = "ww"   # both write the same record


class GraphMode(str, Enum):
    """Which datastore semantics the graph is generated for."""

    SINGLE_VERSION = "single_version"
    MULTI_VERSION = "multi_version"


class GraphConstruction(str, Enum):
    """How many of a block's conflict edges are materialised.

    * ``all_pairs`` — one edge per conflicting ordered pair, the literal
      Section III-A definition.  Hot keys make this quadratic: ``k``
      transactions touching one record contribute up to ``k·(k-1)/2`` edges,
      nearly all of them transitively redundant.
    * ``sparse`` — per-key frontier chains: each arriving transaction links
      only to the key's current *frontier* (the last writer, or the readers
      seen since it), which yields O(accesses) edges while preserving the
      all-pairs graph's transitive closure exactly — hence identical waves,
      dispatch order and committed state (see ``StreamingGraphBuilder``).
      Under ``multi_version`` semantics no sound sparsification exists (the
      only edges are writer→reader and writers are mutually unordered, so no
      chain can stand in for a dropped edge); sparse graphs therefore keep
      the all-pairs rule there.
    """

    ALL_PAIRS = "all_pairs"
    SPARSE = "sparse"


# Conflict kinds as bit flags for the hot construction path; tuples of
# ConflictType are only materialised when edges are inspected.
_RW = 1
_WR = 2
_WW = 4
_KIND_TO_MASK = {ConflictType.READ_WRITE: _RW, ConflictType.WRITE_READ: _WR, ConflictType.WRITE_WRITE: _WW}
_MASK_TO_KINDS: Tuple[Tuple[ConflictType, ...], ...] = tuple(
    tuple(
        kind
        for kind, flag in (
            (ConflictType.READ_WRITE, _RW),
            (ConflictType.WRITE_READ, _WR),
            (ConflictType.WRITE_WRITE, _WW),
        )
        if mask & flag
    )
    for mask in range(8)
)


def conflicts(earlier: Transaction, later: Transaction) -> List[ConflictType]:
    """Return every conflict type between an earlier and a later transaction."""
    found: List[ConflictType] = []
    if earlier.read_set & later.write_set:
        found.append(ConflictType.READ_WRITE)
    if earlier.write_set & later.read_set:
        found.append(ConflictType.WRITE_READ)
    if earlier.write_set & later.write_set:
        found.append(ConflictType.WRITE_WRITE)
    return found


def has_ordering_dependency(
    earlier: Transaction, later: Transaction, mode: GraphMode = GraphMode.SINGLE_VERSION
) -> bool:
    """True iff ``earlier ~> later`` under the chosen datastore semantics."""
    if earlier.timestamp >= later.timestamp:
        return False
    kinds = conflicts(earlier, later)
    if not kinds:
        return False
    if mode is GraphMode.SINGLE_VERSION:
        return True
    # Multi-version: only write-then-read forces an ordering — concurrent
    # writes create distinct versions and a read before a later write can be
    # served from the older version.
    return ConflictType.WRITE_READ in kinds


@dataclass(frozen=True)
class DependencyEdge:
    """A directed ordering dependency with the conflict kinds that caused it."""

    source: str
    target: str
    kinds: Tuple[ConflictType, ...]

    def canonical_tuple(self) -> tuple:
        return ("edge", self.source, self.target, tuple(k.value for k in self.kinds))


class DependencyGraph:
    """The dependency graph of one block.

    Nodes are transaction ids; each node stores its :class:`Transaction`.
    The class exposes the notation of the paper — ``pre(x)`` and ``suc(x)`` —
    plus the structural queries the execution engine, the commit batcher and
    the benchmarks need (components, critical path, chain detection).

    Internally transactions are indexed ``0 .. n-1`` in block (timestamp)
    order and edges live in adjacency lists; every edge points from a lower
    to a higher index, so the graph is acyclic by construction and block
    order is a valid topological order.  The graph is immutable once built,
    which lets structural results (critical-path depths, predecessor sets)
    be computed once and cached.
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        edges: Iterable[DependencyEdge],
        mode: GraphMode = GraphMode.SINGLE_VERSION,
        construction: GraphConstruction = GraphConstruction.ALL_PAIRS,
    ) -> None:
        ordered = sorted(transactions, key=lambda t: t.timestamp)
        self._init_nodes(ordered, mode, construction=construction)
        self._dag = AdjacencyDAG(len(self._ids))
        for edge in edges:
            self._add_edge(edge)

    # ------------------------------------------------------------ construction
    def _init_nodes(
        self,
        ordered: Sequence[Transaction],
        mode: GraphMode,
        index: Optional[Dict[str, int]] = None,
        construction: GraphConstruction = GraphConstruction.ALL_PAIRS,
    ) -> None:
        self._mode = mode
        self._construction = construction
        self._txs = list(ordered)
        self._ids: List[str] = [tx.tx_id for tx in self._txs]
        if index is None:
            index = {tx_id: i for i, tx_id in enumerate(self._ids)}
            if len(index) != len(self._ids):
                seen: Set[str] = set()
                for tx_id in self._ids:
                    if tx_id in seen:
                        raise DependencyGraphError(f"duplicate transaction id {tx_id!r}")
                    seen.add(tx_id)
        self._index = index
        # Conflict kinds are derivable from the read/write sets, so the fast
        # construction path does not store them; only edges supplied
        # explicitly (public constructor) pin their kinds here.
        self._explicit_masks: Dict[Tuple[int, int], int] = {}
        # Lazily computed caches (the graph is immutable after construction).
        self._depths: Optional[List[int]] = None
        self._edge_cache: Optional[List[DependencyEdge]] = None
        self._pred_sets: List[Optional[FrozenSet[str]]] = [None] * len(self._ids)
        self._succ_sets: List[Optional[FrozenSet[str]]] = [None] * len(self._ids)
        self._cross_app_succ: Optional[Tuple[bool, ...]] = None

    @classmethod
    def _from_indexed(
        cls,
        ordered: Sequence[Transaction],
        incoming: Sequence[Iterable[int]],
        mode: GraphMode,
        explicit_masks: Optional[Dict[Tuple[int, int], int]] = None,
        index: Optional[Dict[str, int]] = None,
        construction: GraphConstruction = GraphConstruction.ALL_PAIRS,
    ) -> "DependencyGraph":
        """Fast path for :class:`StreamingGraphBuilder`: transactions already in
        block order, ``incoming[v]`` the already-validated predecessor indices."""
        graph = cls.__new__(cls)
        graph._init_nodes(ordered, mode, index=index, construction=construction)
        graph._dag = AdjacencyDAG.from_incoming(incoming)
        if explicit_masks:
            graph._explicit_masks = dict(explicit_masks)
        return graph

    def _add_edge(self, edge: DependencyEdge) -> None:
        u = self._index.get(edge.source)
        v = self._index.get(edge.target)
        if u is None or v is None:
            raise DependencyGraphError(
                f"edge ({edge.source!r}, {edge.target!r}) references unknown transactions"
            )
        if self._txs[u].timestamp >= self._txs[v].timestamp:
            raise DependencyGraphError(
                f"edge ({edge.source!r}, {edge.target!r}) violates timestamp order"
            )
        mask = 0
        for kind in edge.kinds:
            mask |= _KIND_TO_MASK[kind]
        if (u, v) not in self._explicit_masks:
            self._dag.add_edge(u, v)
        self._explicit_masks[(u, v)] = mask

    def _mask_for(self, u: int, v: int) -> int:
        """The conflict kinds of the edge ``u -> v``, recomputed from the
        read/write sets (used for edges built through the fast path)."""
        explicit = self._explicit_masks.get((u, v))
        if explicit is not None:
            return explicit
        if self._mode is GraphMode.MULTI_VERSION:
            return _WR  # the only conflict that creates MVCC edges
        earlier, later = self._txs[u], self._txs[v]
        mask = 0
        if earlier.read_set & later.write_set:
            mask |= _RW
        if earlier.write_set & later.read_set:
            mask |= _WR
        if earlier.write_set & later.write_set:
            mask |= _WW
        return mask

    # ------------------------------------------------------------- basic info
    @property
    def mode(self) -> GraphMode:
        """Datastore semantics the graph was generated for."""
        return self._mode

    @property
    def construction(self) -> GraphConstruction:
        """Which edge-materialisation strategy built this graph.

        Metadata only: graphs with different constructions over the same
        block share their transitive closure, waves and committed state, but
        their edge sets differ, so consumers that compare graphs structurally
        (block sealing, tests) need to know which family they hold.
        """
        return self._construction

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._ids)

    @property
    def transaction_ids(self) -> List[str]:
        """Transaction ids in block (timestamp) order."""
        return list(self._ids)

    def transaction(self, tx_id: str) -> Transaction:
        """The transaction stored under ``tx_id``."""
        index = self._index.get(tx_id)
        if index is None:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        return self._txs[index]

    def transactions(self) -> List[Transaction]:
        """All transactions in block order."""
        return list(self._txs)

    @property
    def edge_count(self) -> int:
        """Number of ordering dependencies."""
        return self._dag.edge_count

    # ----------------------------------------------------------- index surface
    # The execution hot path (countdown scheduling, commit batching) works on
    # the dense integer index space 0 .. n-1 shared with the adjacency core:
    # index == block position == timestamp order.  These accessors avoid the
    # string-keyed dict lookups and the set/list copies of the paper-notation
    # API above.

    @property
    def dag(self) -> AdjacencyDAG:
        """The dense integer-indexed adjacency core (read-only by convention)."""
        return self._dag

    def index_of(self, tx_id: str) -> int:
        """Block position of ``tx_id`` (the node index in the adjacency core)."""
        index = self._index.get(tx_id)
        if index is None:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        return index

    def id_at(self, index: int) -> str:
        """Transaction id at block position ``index``."""
        return self._ids[index]

    def transaction_at(self, index: int) -> Transaction:
        """Transaction at block position ``index``."""
        return self._txs[index]

    def cross_application_successor_flags(self) -> Sequence[bool]:
        """``flags[u]`` — True iff ``u`` has a successor of another application.

        Computed once per graph with a single pass over the edges; the commit
        batcher (Algorithm 2) consults this per executed result, so loading
        successor Transaction objects there would pay per-result what this
        bitmap pays per-block.  Returned as a tuple: the cache is shared by
        every batcher built on this graph, so it must be immutable.
        """
        if self._cross_app_succ is None:
            txs = self._txs
            dag = self._dag
            arrays = dag.edge_index_arrays() if dag.edge_count else None
            if arrays is not None:
                # Vectorised: compare application codes across both endpoint
                # arrays at once instead of walking adjacency lists per node.
                codes: Dict[str, int] = {}
                node_codes = [codes.setdefault(tx.application, len(codes)) for tx in txs]
                code_arr = _np.asarray(node_codes, dtype=_np.int64)
                sources, targets = arrays
                flags_arr = _np.zeros(len(txs), dtype=bool)
                flags_arr[sources[code_arr[sources] != code_arr[targets]]] = True
                self._cross_app_succ = tuple(flags_arr.tolist())
            else:
                flags = [False] * len(txs)
                for u in range(dag.n):
                    app = txs[u].application
                    for v in dag.successors(u):
                        if txs[v].application != app:
                            flags[u] = True
                            break
                self._cross_app_succ = tuple(flags)
        return self._cross_app_succ

    def edges(self) -> List[DependencyEdge]:
        """All edges with their conflict kinds, ordered by block position."""
        if self._edge_cache is None:
            ids = self._ids
            self._edge_cache = [
                DependencyEdge(
                    source=ids[u], target=ids[v], kinds=_MASK_TO_KINDS[self._mask_for(u, v)]
                )
                for (u, v) in sorted(self._dag.edges())
            ]
        return list(self._edge_cache)

    # -------------------------------------------------------- paper notation
    def _require(self, tx_id: str) -> int:
        index = self._index.get(tx_id)
        if index is None:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        return index

    def predecessors(self, tx_id: str) -> Set[str]:
        """``Pre(x)`` — transactions that must commit/execute before ``x``."""
        v = self._require(tx_id)
        cached = self._pred_sets[v]
        if cached is None:
            ids = self._ids
            cached = frozenset(ids[u] for u in self._dag.predecessors(v))
            self._pred_sets[v] = cached
        return set(cached)

    def successors(self, tx_id: str) -> Set[str]:
        """``Suc(x)`` — transactions that depend on ``x``."""
        u = self._require(tx_id)
        cached = self._succ_sets[u]
        if cached is None:
            ids = self._ids
            cached = frozenset(ids[v] for v in self._dag.successors(u))
            self._succ_sets[u] = cached
        return set(cached)

    def roots(self) -> List[str]:
        """Transactions with no predecessors (immediately executable)."""
        ids = self._ids
        return [ids[v] for v in self._dag.roots()]

    # ------------------------------------------------------------- structure
    def is_chain(self) -> bool:
        """True if the graph is a single path covering every transaction.

        A full-contention workload (Figure 6(d)) produces a chain: every
        consecutive pair of transactions conflicts.
        """
        n = len(self)
        if n <= 1:
            return True
        path_edges = n - 1
        if self.edge_count < path_edges:
            return False
        # A covering chain exists iff the longest path visits every node.
        return self.critical_path_length() == n

    def has_edges(self) -> bool:
        """True if any ordering dependency exists (contention present)."""
        return self.edge_count > 0

    def components(self) -> List[Set[str]]:
        """Weakly connected components, each a set of transaction ids.

        Components are the unit of independent execution across applications:
        if no component mixes applications, agents never need to exchange
        intermediate commit messages (Figure 4(b) in the paper).
        """
        ids = self._ids
        return [{ids[v] for v in group} for group in self._dag.components()]

    def component_applications(self) -> List[Set[str]]:
        """The set of applications appearing in each component."""
        txs = self._txs
        return [
            {txs[v].application for v in group} for group in self._dag.components()
        ]

    def has_cross_application_dependency(self) -> bool:
        """True if any edge connects transactions of different applications."""
        txs = self._txs
        return any(
            txs[u].application != txs[v].application for (u, v) in self._dag.edges()
        )

    def cross_application_edges(self) -> List[DependencyEdge]:
        """Edges whose endpoints belong to different applications."""
        index, txs = self._index, self._txs
        return [
            edge
            for edge in self.edges()
            if txs[index[edge.source]].application != txs[index[edge.target]].application
        ]

    def topological_order(self) -> List[str]:
        """A deterministic topological order (ties broken by timestamp).

        Block order *is* the lexicographic-by-timestamp topological order:
        nodes are indexed by timestamp and every edge points forward, so at
        each Kahn step the lowest-timestamp available node is exactly the
        next block position.
        """
        return list(self._ids)

    def _depth_array(self) -> List[int]:
        if self._depths is None:
            self._depths = self._dag.longest_path_depths()
        return self._depths

    def critical_path_length(self) -> int:
        """Number of transactions on the longest dependency chain.

        With unlimited executor cores, executing the block takes
        ``critical_path_length()`` sequential transaction executions; a value
        of 1 means the whole block is embarrassingly parallel and a value of
        ``len(graph)`` means execution is fully sequential.
        """
        if len(self) == 0:
            return 0
        return max(self._depth_array()) + 1

    def parallelism_profile(self) -> List[int]:
        """Number of transactions executable at each dependency depth.

        Entry ``i`` is the number of transactions whose longest incoming
        dependency chain has length ``i``; the profile describes how much
        parallelism an executor with enough cores can extract wave by wave.
        """
        return depth_histogram(self._depth_array())

    def degree_of_contention(self) -> float:
        """Fraction of transactions involved in at least one dependency."""
        n = len(self)
        if n == 0:
            return 0.0
        dag = self._dag
        involved = sum(1 for v in range(n) if dag.in_degree(v) or dag.out_degree(v))
        return involved / n

    def subgraph_for_application(self, application: str) -> "DependencyGraph":
        """The induced subgraph containing only ``application``'s transactions."""
        keep = [v for v, tx in enumerate(self._txs) if tx.application == application]
        remap = {old: new for new, old in enumerate(keep)}
        incoming = [
            [remap[u] for u in self._dag.predecessors(old) if u in remap] for old in keep
        ]
        explicit = {
            (remap[u], remap[v]): mask
            for (u, v), mask in self._explicit_masks.items()
            if u in remap and v in remap
        }
        return DependencyGraph._from_indexed(
            [self._txs[v] for v in keep],
            incoming,
            self._mode,
            explicit_masks=explicit,
            construction=self._construction,
        )

    def canonical_tuple(self) -> tuple:
        return (
            "depgraph",
            tuple(t.digest() for t in self.transactions()),
            tuple(sorted(e.canonical_tuple() for e in self.edges())),
            self._mode.value,
        )

    def to_networkx(self):
        """A ``networkx.DiGraph`` copy for analysis/plotting (debug only).

        ``networkx`` is an optional dependency — install the ``debug`` extra
        (``pip install parblockchain-repro[debug]``); the runtime graph core
        never touches it.
        """
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover - depends on environment
            raise DependencyGraphError(
                "networkx is required for to_networkx(); install the 'debug' extra"
            ) from exc
        graph = nx.DiGraph()
        graph.add_nodes_from(self._ids)
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target, kinds=edge.kinds)
        return graph


class StreamingGraphBuilder:
    """Incrementally build a block's dependency graph as transactions arrive.

    Orderers fill a block one ordered transaction at a time; rebuilding the
    dependency graph from scratch at every cut re-pays the whole construction
    cost.  This builder maintains per-record writer and reader position
    indices, so adding a transaction only inspects the accessors of the
    records it actually touches — the same per-record construction as
    :func:`build_dependency_graph`, amortised over the block's lifetime.

    Transactions must be added in block order (strictly increasing
    timestamps).  :meth:`graph` snapshots the current graph without
    invalidating the builder, so an orderer can inspect the partial graph
    (e.g. for contention-aware block cutting) and keep appending.

    With ``construction=GraphConstruction.SPARSE`` the builder keeps, per
    key, only the *frontier*: the position of the last writer and the readers
    seen since it.  An arriving reader links to the last writer; an arriving
    writer links to the frontier readers (or, if none, to the last writer)
    and resets the frontier.  Every sparse edge is a genuine pairwise
    conflict, and every dropped conflict pair stays reachable through the
    chain — writer→writer through the per-key writer chain, writer→reader
    through the chain plus the last-writer edge, reader→writer through the
    first subsequent writer — so the transitive closure (and with it the
    longest-path depth of every node, i.e. the execution waves) is exactly
    the all-pairs graph's.  A key in both the read and write set of one
    transaction is handled by the write rule alone (linking it as a reader
    too would self-loop).  Edge count becomes O(accesses) instead of
    O(hot-key popularity²).  ``multi_version`` graphs are unaffected: their
    writer→reader edges admit no chaining (see :class:`GraphConstruction`).
    """

    def __init__(
        self,
        mode: GraphMode = GraphMode.SINGLE_VERSION,
        construction: GraphConstruction = GraphConstruction.ALL_PAIRS,
    ) -> None:
        self._mode = mode
        self._construction = construction
        self._txs: List[Transaction] = []
        self._index: Dict[str, int] = {}
        self._writers: Dict[str, List[int]] = {}
        self._readers: Dict[str, List[int]] = {}
        #: Sparse-construction frontier: last writer position per key, and the
        #: reader positions seen since that write.
        self._last_writer: Dict[str, int] = {}
        self._frontier_readers: Dict[str, List[int]] = {}
        #: ``_incoming[v]`` — predecessor indices of transaction ``v`` (a set,
        #: or the shared empty tuple for conflict-free transactions).
        self._incoming: List[object] = []
        self._edge_count = 0
        self._last_timestamp: Optional[int] = None

    def __len__(self) -> int:
        return len(self._txs)

    @property
    def mode(self) -> GraphMode:
        """Datastore semantics the graph is generated for."""
        return self._mode

    @property
    def construction(self) -> GraphConstruction:
        """Edge-materialisation strategy of the graphs this builder produces."""
        return self._construction

    @property
    def edge_count(self) -> int:
        """Number of ordering dependencies accumulated so far."""
        return self._edge_count

    def add(self, tx: Transaction) -> int:
        """Append the next transaction; return how many dependencies it added.

        Only the record indices of the keys ``tx`` touches are consulted, and
        predecessor indices are merged with bulk set updates — the hot loop
        does no per-edge Python-level bookkeeping (conflict *kinds* are
        recomputed lazily from the read/write sets when edges are inspected).
        Use :meth:`predecessors_of` for the ``Pre`` set of a queued
        transaction (e.g. for contention-aware block cutting).
        """
        idx = len(self._txs)
        if self._index.setdefault(tx.tx_id, idx) != idx:
            raise DependencyGraphError(f"duplicate transaction id {tx.tx_id!r}")
        timestamp = tx.timestamp
        if self._last_timestamp is not None and timestamp <= self._last_timestamp:
            del self._index[tx.tx_id]
            raise DependencyGraphError(
                "timestamps must be strictly increasing: "
                f"{self._txs[-1].tx_id} and {tx.tx_id}"
            )
        rw_set = tx.rw_set
        read_set = rw_set.reads
        write_set = rw_set.writes
        if (
            self._construction is GraphConstruction.SPARSE
            and self._mode is not GraphMode.MULTI_VERSION
        ):
            preds = self._sparse_predecessors(idx, read_set, write_set)
        else:
            preds = self._all_pairs_predecessors(idx, read_set, write_set)
        if preds is None:
            self._incoming.append(())
            added = 0
        else:
            self._incoming.append(preds)
            added = len(preds)
            self._edge_count += added
        self._txs.append(tx)
        self._last_timestamp = timestamp
        return added

    def _all_pairs_predecessors(
        self, idx: int, read_set: FrozenSet[str], write_set: FrozenSet[str]
    ) -> Optional[Set[int]]:
        """One edge per conflicting earlier accessor (Section III-A verbatim)."""
        writers = self._writers
        readers = self._readers
        # ``preds`` is only allocated once a conflict is found; the bulk
        # ``set.update`` over the per-record index lists is the entire
        # per-edge cost of construction.
        preds: Optional[Set[int]] = None
        for key in read_set:
            # write-then-read: the reader needs the writer's version (the
            # only conflict that orders transactions under MVCC too).
            earlier_writers = writers.get(key)
            if earlier_writers:
                if preds is None:
                    preds = set(earlier_writers)
                else:
                    preds.update(earlier_writers)
        if self._mode is not GraphMode.MULTI_VERSION:
            for key in write_set:
                earlier_writers = writers.get(key)
                if earlier_writers:
                    if preds is None:
                        preds = set(earlier_writers)
                    else:
                        preds.update(earlier_writers)
                earlier_readers = readers.get(key)
                if earlier_readers:
                    if preds is None:
                        preds = set(earlier_readers)
                    else:
                        preds.update(earlier_readers)
        for key in read_set:
            earlier_readers = readers.get(key)
            if earlier_readers is None:
                readers[key] = [idx]
            else:
                earlier_readers.append(idx)
        for key in write_set:
            earlier_writers = writers.get(key)
            if earlier_writers is None:
                writers[key] = [idx]
            else:
                earlier_writers.append(idx)
        return preds

    def _sparse_predecessors(
        self, idx: int, read_set: FrozenSet[str], write_set: FrozenSet[str]
    ) -> Optional[Set[int]]:
        """Frontier-chain edges: link only to each key's current frontier.

        A reader depends on the key's last writer (and joins the frontier);
        a writer depends on the frontier readers — every one of them must
        precede it, and each already reaches the last writer — or directly on
        the last writer when no reads intervened, then becomes the new
        frontier.  All transitively implied conflict pairs stay reachable
        through these chains, so the closure equals the all-pairs graph's.
        """
        last_writer = self._last_writer
        frontier_readers = self._frontier_readers
        preds: Optional[Set[int]] = None
        for key in read_set:
            if key in write_set:
                continue  # the write rule below orders it (and avoids a self-loop)
            writer = last_writer.get(key)
            if writer is not None:
                if preds is None:
                    preds = {writer}
                else:
                    preds.add(writer)
            readers = frontier_readers.get(key)
            if readers is None:
                frontier_readers[key] = [idx]
            else:
                readers.append(idx)
        for key in write_set:
            readers = frontier_readers.get(key)
            if readers:
                if preds is None:
                    preds = set(readers)
                else:
                    preds.update(readers)
                readers.clear()
            else:
                writer = last_writer.get(key)
                if writer is not None:
                    if preds is None:
                        preds = {writer}
                    else:
                        preds.add(writer)
            last_writer[key] = idx
        return preds

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """Add several transactions in order."""
        for tx in transactions:
            self.add(tx)

    def predecessors_of(self, tx_id: str) -> Set[str]:
        """``Pre(x)`` of an already-added transaction, as transaction ids."""
        index = self._index.get(tx_id)
        if index is None:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        txs = self._txs
        return {txs[u].tx_id for u in self._incoming[index]}

    def graph(self) -> DependencyGraph:
        """Snapshot the dependency graph built so far (builder stays usable)."""
        return DependencyGraph._from_indexed(
            list(self._txs),
            [set(preds) if preds else () for preds in self._incoming],
            self._mode,
            index=dict(self._index),
            construction=self._construction,
        )

    def take_graph(self) -> DependencyGraph:
        """Hand the accumulated state to a graph without copying and reset.

        This is what an orderer calls when it cuts a block: the graph takes
        ownership of the builder's arrays and the builder starts the next
        block empty.
        """
        graph = DependencyGraph._from_indexed(
            self._txs,
            self._incoming,
            self._mode,
            index=self._index,
            construction=self._construction,
        )
        self.reset()
        return graph

    def reset(self) -> None:
        """Forget everything (the orderer cut the block)."""
        self._txs = []
        self._index = {}
        self._writers = {}
        self._readers = {}
        self._last_writer = {}
        self._frontier_readers = {}
        self._incoming = []
        self._edge_count = 0
        self._last_timestamp = None


def build_dependency_graph(
    transactions: Sequence[Transaction],
    mode: GraphMode = GraphMode.SINGLE_VERSION,
    construction: GraphConstruction = GraphConstruction.ALL_PAIRS,
) -> DependencyGraph:
    """Construct the dependency graph of a block of transactions.

    Transactions must already carry strictly increasing timestamps in block
    order (the orderers stamp them).  The default construction is equivalent
    to checking every ordered pair (the definition in Section III-A) but is
    implemented per record via :class:`StreamingGraphBuilder`: only
    transactions that touch a common record can conflict, so the work is
    proportional to the contention actually present rather than always
    quadratic in block size.  Pass
    ``construction=GraphConstruction.SPARSE`` for the frontier-chain
    construction, which additionally drops transitively redundant edges —
    same closure, waves and committed state, O(accesses) edges.  (The
    *simulated* cost charged to orderers stays quadratic — see
    :meth:`repro.common.config.CostModel.dependency_graph_cost` — because
    that is the cost the paper's implementation pays.)
    """
    builder = StreamingGraphBuilder(mode=mode, construction=construction)
    for tx in sorted(transactions, key=lambda t: t.timestamp):
        builder.add(tx)
    return builder.take_graph()


@dataclass(frozen=True)
class OperationNode:
    """One node of a DGCC-style operation-level dependency graph."""

    tx_id: str
    operation: Operation

    @property
    def node_id(self) -> str:
        return f"{self.tx_id}:{self.operation.op_type.value}:{self.operation.key}"


class OperationGraph:
    """A DGCC-style operation-level dependency graph (networkx-free).

    Nodes are per-record read/write operations identified by
    ``"<tx_id>:<read|write>:<key>"``; edges connect conflicting operations of
    different transactions in timestamp order.  The query surface mirrors the
    small slice of ``networkx.DiGraph`` the callers used —
    :meth:`number_of_nodes`, :meth:`number_of_edges`, :meth:`has_edge` — plus
    neighbour and topological queries backed by the adjacency core.
    """

    def __init__(self, nodes: Sequence[OperationNode], edges: Iterable[Tuple[int, int]]) -> None:
        self._nodes = list(nodes)
        self._ids = [node.node_id for node in self._nodes]
        self._index = {node_id: i for i, node_id in enumerate(self._ids)}
        if len(self._index) != len(self._ids):
            raise DependencyGraphError("duplicate operation node ids")
        self._dag = AdjacencyDAG(len(self._ids))
        self._edge_set: Set[Tuple[int, int]] = set()
        for u, v in edges:
            if (u, v) not in self._edge_set:
                self._edge_set.add((u, v))
                self._dag.add_edge(u, v)

    def number_of_nodes(self) -> int:
        """How many per-record operations the block contains."""
        return len(self._ids)

    def number_of_edges(self) -> int:
        """How many operation-level conflicts were found."""
        return self._dag.edge_count

    def nodes(self) -> List[str]:
        """Node ids in timestamp-then-operation order."""
        return list(self._ids)

    def node(self, node_id: str) -> OperationNode:
        """The :class:`OperationNode` stored under ``node_id``."""
        index = self._index.get(node_id)
        if index is None:
            raise DependencyGraphError(f"unknown operation node {node_id!r}")
        return self._nodes[index]

    def has_edge(self, source: str, target: str) -> bool:
        """True iff the conflict edge ``source -> target`` exists."""
        u = self._index.get(source)
        v = self._index.get(target)
        if u is None or v is None:
            return False
        return (u, v) in self._edge_set

    def predecessors(self, node_id: str) -> Set[str]:
        """Operations that must run before ``node_id``."""
        index = self._index.get(node_id)
        if index is None:
            raise DependencyGraphError(f"unknown operation node {node_id!r}")
        return {self._ids[u] for u in self._dag.predecessors(index)}

    def successors(self, node_id: str) -> Set[str]:
        """Operations that depend on ``node_id``."""
        index = self._index.get(node_id)
        if index is None:
            raise DependencyGraphError(f"unknown operation node {node_id!r}")
        return {self._ids[v] for v in self._dag.successors(index)}

    def edges(self) -> List[Tuple[str, str]]:
        """Every conflict edge as an ``(earlier, later)`` id pair."""
        ids = self._ids
        return [(ids[u], ids[v]) for (u, v) in sorted(self._edge_set)]

    def topological_order(self) -> List[str]:
        """A valid execution order of the operations."""
        return list(self._ids)

    def to_networkx(self):
        """A ``networkx.DiGraph`` copy for analysis/plotting (debug only)."""
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover - depends on environment
            raise DependencyGraphError(
                "networkx is required for to_networkx(); install the 'debug' extra"
            ) from exc
        graph = nx.DiGraph()
        for node in self._nodes:
            graph.add_node(node.node_id, tx_id=node.tx_id, op=node.operation)
        graph.add_edges_from(self.edges())
        return graph


def build_operation_graph(transactions: Sequence[Transaction]) -> OperationGraph:
    """Build a DGCC-style operation-level dependency graph.

    Each transaction is broken into per-record read/write operations; edges
    connect conflicting operations of different transactions in timestamp
    order, allowing execution to be parallelised at the level of operations
    rather than whole transactions (the paper notes OXII's graph generator can
    be designed this way, citing DGCC).  Construction is per record: an
    operation only checks earlier accessors of its own key, so the cost is
    proportional to the conflicts present rather than quadratic in the total
    number of operations.
    """
    ordered = sorted(transactions, key=lambda t: t.timestamp)
    nodes: List[OperationNode] = []
    edges: List[Tuple[int, int]] = []
    # Per record: (transaction position, node index, is_read) of earlier accessors.
    accessors: Dict[str, List[Tuple[int, int, bool]]] = {}
    for tx_pos, tx in enumerate(ordered):
        for op in tx.operations():
            node_index = len(nodes)
            nodes.append(OperationNode(tx_id=tx.tx_id, operation=op))
            is_read = op.op_type is OperationType.READ
            history = accessors.setdefault(op.key, [])
            for earlier_pos, earlier_index, earlier_is_read in history:
                if earlier_pos == tx_pos:
                    continue  # operations of one transaction are not ordered
                if earlier_is_read and is_read:
                    continue
                edges.append((earlier_index, node_index))
            history.append((tx_pos, node_index, is_read))
    return OperationGraph(nodes, edges)


def contention_statistics(graph: DependencyGraph) -> Mapping[str, float]:
    """Summary statistics used by the benchmark reports."""
    size = len(graph)
    return {
        "transactions": float(size),
        "edges": float(graph.edge_count),
        "degree_of_contention": graph.degree_of_contention(),
        "critical_path": float(graph.critical_path_length()),
        "components": float(len(graph.components())),
        "cross_application_edges": float(len(graph.cross_application_edges())),
    }
