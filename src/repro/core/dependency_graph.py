"""Dependency graph construction (Section III-A of the paper).

Two transactions conflict if they access the same record and at least one of
the accesses is a write.  Given a block ``[T1 .. Tn]`` ordered by timestamp,
an *ordering dependency* ``Ti ~> Tj`` exists iff ``ts(Ti) < ts(Tj)`` and the
transactions conflict.  The dependency graph of a block is the directed graph
whose nodes are the block's transactions and whose edges are the ordering
dependencies.  Because every edge points from an earlier to a later
transaction, the graph is acyclic by construction.

Three construction modes are provided, all discussed in the paper:

* ``single_version`` (default) — the definition above: read-write,
  write-read and write-write conflicts all create edges.
* ``multi_version`` — for an MVCC datastore, writes create new versions, so
  write-write pairs and read-then-write pairs need no edge; only
  write-then-read pairs (the reader needs the writer's version) are ordered.
* operation-level graphs (DGCC-style) via :func:`build_operation_graph`, which
  splits each transaction into per-record operations so execution can be
  parallelised at operation granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.common.errors import DependencyGraphError
from repro.core.transaction import Operation, OperationType, Transaction


class ConflictType(str, Enum):
    """Why two transactions are ordered."""

    READ_WRITE = "rw"    # earlier reads a record the later writes
    WRITE_READ = "wr"    # earlier writes a record the later reads
    WRITE_WRITE = "ww"   # both write the same record


class GraphMode(str, Enum):
    """Which datastore semantics the graph is generated for."""

    SINGLE_VERSION = "single_version"
    MULTI_VERSION = "multi_version"


def conflicts(earlier: Transaction, later: Transaction) -> List[ConflictType]:
    """Return every conflict type between an earlier and a later transaction."""
    found: List[ConflictType] = []
    if earlier.read_set & later.write_set:
        found.append(ConflictType.READ_WRITE)
    if earlier.write_set & later.read_set:
        found.append(ConflictType.WRITE_READ)
    if earlier.write_set & later.write_set:
        found.append(ConflictType.WRITE_WRITE)
    return found


def has_ordering_dependency(
    earlier: Transaction, later: Transaction, mode: GraphMode = GraphMode.SINGLE_VERSION
) -> bool:
    """True iff ``earlier ~> later`` under the chosen datastore semantics."""
    if earlier.timestamp >= later.timestamp:
        return False
    kinds = conflicts(earlier, later)
    if not kinds:
        return False
    if mode is GraphMode.SINGLE_VERSION:
        return True
    # Multi-version: only write-then-read forces an ordering — concurrent
    # writes create distinct versions and a read before a later write can be
    # served from the older version.
    return ConflictType.WRITE_READ in kinds


@dataclass(frozen=True)
class DependencyEdge:
    """A directed ordering dependency with the conflict kinds that caused it."""

    source: str
    target: str
    kinds: Tuple[ConflictType, ...]

    def canonical_tuple(self) -> tuple:
        return ("edge", self.source, self.target, tuple(k.value for k in self.kinds))


class DependencyGraph:
    """The dependency graph of one block.

    Nodes are transaction ids; each node stores its :class:`Transaction`.
    The class exposes the notation of the paper — ``pre(x)`` and ``suc(x)`` —
    plus the structural queries the execution engine, the commit batcher and
    the benchmarks need (components, critical path, chain detection).
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        edges: Iterable[DependencyEdge],
        mode: GraphMode = GraphMode.SINGLE_VERSION,
    ) -> None:
        self._mode = mode
        self._transactions: Dict[str, Transaction] = {}
        self._graph = nx.DiGraph()
        for tx in transactions:
            if tx.tx_id in self._transactions:
                raise DependencyGraphError(f"duplicate transaction id {tx.tx_id!r}")
            self._transactions[tx.tx_id] = tx
            self._graph.add_node(tx.tx_id)
        for edge in edges:
            self._add_edge(edge)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise DependencyGraphError("dependency graph contains a cycle")

    def _add_edge(self, edge: DependencyEdge) -> None:
        if edge.source not in self._transactions or edge.target not in self._transactions:
            raise DependencyGraphError(
                f"edge ({edge.source!r}, {edge.target!r}) references unknown transactions"
            )
        source_ts = self._transactions[edge.source].timestamp
        target_ts = self._transactions[edge.target].timestamp
        if source_ts >= target_ts:
            raise DependencyGraphError(
                f"edge ({edge.source!r}, {edge.target!r}) violates timestamp order"
            )
        self._graph.add_edge(edge.source, edge.target, kinds=edge.kinds)

    # ------------------------------------------------------------- basic info
    @property
    def mode(self) -> GraphMode:
        """Datastore semantics the graph was generated for."""
        return self._mode

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._transactions

    def __iter__(self) -> Iterator[str]:
        return iter(self._transactions)

    @property
    def transaction_ids(self) -> List[str]:
        """Transaction ids in block (timestamp) order."""
        return sorted(self._transactions, key=lambda t: self._transactions[t].timestamp)

    def transaction(self, tx_id: str) -> Transaction:
        """The transaction stored under ``tx_id``."""
        try:
            return self._transactions[tx_id]
        except KeyError:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}") from None

    def transactions(self) -> List[Transaction]:
        """All transactions in block order."""
        return [self._transactions[t] for t in self.transaction_ids]

    @property
    def edge_count(self) -> int:
        """Number of ordering dependencies."""
        return self._graph.number_of_edges()

    def edges(self) -> List[DependencyEdge]:
        """All edges with their conflict kinds."""
        return [
            DependencyEdge(source=u, target=v, kinds=tuple(data.get("kinds", ())))
            for u, v, data in self._graph.edges(data=True)
        ]

    # -------------------------------------------------------- paper notation
    def predecessors(self, tx_id: str) -> Set[str]:
        """``Pre(x)`` — transactions that must commit/execute before ``x``."""
        if tx_id not in self._transactions:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        return set(self._graph.predecessors(tx_id))

    def successors(self, tx_id: str) -> Set[str]:
        """``Suc(x)`` — transactions that depend on ``x``."""
        if tx_id not in self._transactions:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        return set(self._graph.successors(tx_id))

    def roots(self) -> List[str]:
        """Transactions with no predecessors (immediately executable)."""
        return [t for t in self.transaction_ids if self._graph.in_degree(t) == 0]

    # ------------------------------------------------------------- structure
    def is_chain(self) -> bool:
        """True if the graph is a single path covering every transaction.

        A full-contention workload (Figure 6(d)) produces a chain: every
        consecutive pair of transactions conflicts.
        """
        n = len(self)
        if n <= 1:
            return True
        path_edges = n - 1
        if self.edge_count < path_edges:
            return False
        # A covering chain exists iff the longest path visits every node.
        return self.critical_path_length() == n

    def has_edges(self) -> bool:
        """True if any ordering dependency exists (contention present)."""
        return self.edge_count > 0

    def components(self) -> List[Set[str]]:
        """Weakly connected components, each a set of transaction ids.

        Components are the unit of independent execution across applications:
        if no component mixes applications, agents never need to exchange
        intermediate commit messages (Figure 4(b) in the paper).
        """
        return [set(c) for c in nx.weakly_connected_components(self._graph)]

    def component_applications(self) -> List[Set[str]]:
        """The set of applications appearing in each component."""
        return [
            {self._transactions[tx_id].application for tx_id in component}
            for component in self.components()
        ]

    def has_cross_application_dependency(self) -> bool:
        """True if any edge connects transactions of different applications."""
        return any(
            self._transactions[u].application != self._transactions[v].application
            for u, v in self._graph.edges()
        )

    def cross_application_edges(self) -> List[DependencyEdge]:
        """Edges whose endpoints belong to different applications."""
        return [
            edge
            for edge in self.edges()
            if self._transactions[edge.source].application
            != self._transactions[edge.target].application
        ]

    def topological_order(self) -> List[str]:
        """A deterministic topological order (ties broken by timestamp)."""
        order = list(
            nx.lexicographical_topological_sort(
                self._graph, key=lambda t: self._transactions[t].timestamp
            )
        )
        return order

    def critical_path_length(self) -> int:
        """Number of transactions on the longest dependency chain.

        With unlimited executor cores, executing the block takes
        ``critical_path_length()`` sequential transaction executions; a value
        of 1 means the whole block is embarrassingly parallel and a value of
        ``len(graph)`` means execution is fully sequential.
        """
        if len(self) == 0:
            return 0
        return nx.dag_longest_path_length(self._graph) + 1

    def parallelism_profile(self) -> List[int]:
        """Number of transactions executable at each dependency depth.

        Entry ``i`` is the number of transactions whose longest incoming
        dependency chain has length ``i``; the profile describes how much
        parallelism an executor with enough cores can extract wave by wave.
        """
        depth: Dict[str, int] = {}
        for tx_id in self.topological_order():
            preds = self.predecessors(tx_id)
            depth[tx_id] = 0 if not preds else 1 + max(depth[p] for p in preds)
        if not depth:
            return []
        profile = [0] * (max(depth.values()) + 1)
        for d in depth.values():
            profile[d] += 1
        return profile

    def degree_of_contention(self) -> float:
        """Fraction of transactions involved in at least one dependency."""
        if len(self) == 0:
            return 0.0
        involved = {u for u, v in self._graph.edges()} | {v for u, v in self._graph.edges()}
        return len(involved) / len(self)

    def subgraph_for_application(self, application: str) -> "DependencyGraph":
        """The induced subgraph containing only ``application``'s transactions."""
        txs = [t for t in self.transactions() if t.application == application]
        ids = {t.tx_id for t in txs}
        edges = [e for e in self.edges() if e.source in ids and e.target in ids]
        return DependencyGraph(txs, edges, mode=self._mode)

    def canonical_tuple(self) -> tuple:
        return (
            "depgraph",
            tuple(t.digest() for t in self.transactions()),
            tuple(sorted(e.canonical_tuple() for e in self.edges())),
            self._mode.value,
        )

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying networkx graph (for analysis/plotting)."""
        return self._graph.copy()


def build_dependency_graph(
    transactions: Sequence[Transaction],
    mode: GraphMode = GraphMode.SINGLE_VERSION,
) -> DependencyGraph:
    """Construct the dependency graph of a block of transactions.

    Transactions must already carry strictly increasing timestamps in block
    order (the orderers stamp them).  The construction is equivalent to
    checking every ordered pair (the definition in Section III-A) but is
    implemented per record: only transactions that touch a common record can
    conflict, so the work is proportional to the contention actually present
    rather than always quadratic.  (The *simulated* cost charged to orderers
    stays quadratic — see :meth:`repro.common.config.CostModel.dependency_graph_cost`
    — because that is the cost the paper's implementation pays.)
    """
    ordered = sorted(transactions, key=lambda t: t.timestamp)
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.timestamp >= later.timestamp:
            raise DependencyGraphError(
                f"timestamps must be strictly increasing: {earlier.tx_id} and {later.tx_id}"
            )
    # Index accessors per record, in block order.
    readers: Dict[str, List[Transaction]] = {}
    writers: Dict[str, List[Transaction]] = {}
    for tx in ordered:
        for key in tx.read_set:
            readers.setdefault(key, []).append(tx)
        for key in tx.write_set:
            writers.setdefault(key, []).append(tx)

    pair_kinds: Dict[Tuple[str, str], Set[ConflictType]] = {}

    def note(earlier: Transaction, later: Transaction, kind: ConflictType) -> None:
        if earlier.timestamp >= later.timestamp:
            return
        if mode is GraphMode.MULTI_VERSION and kind is not ConflictType.WRITE_READ:
            return
        pair_kinds.setdefault((earlier.tx_id, later.tx_id), set()).add(kind)

    for key, key_writers in writers.items():
        key_readers = readers.get(key, [])
        for i, writer in enumerate(key_writers):
            # write-write conflicts with later writers of the same record
            for later_writer in key_writers[i + 1 :]:
                note(writer, later_writer, ConflictType.WRITE_WRITE)
            for reader in key_readers:
                if reader.tx_id == writer.tx_id:
                    continue
                if reader.timestamp < writer.timestamp:
                    note(reader, writer, ConflictType.READ_WRITE)
                elif reader.timestamp > writer.timestamp:
                    note(writer, reader, ConflictType.WRITE_READ)

    kind_order = [ConflictType.READ_WRITE, ConflictType.WRITE_READ, ConflictType.WRITE_WRITE]
    edges = [
        DependencyEdge(
            source=source,
            target=target,
            kinds=tuple(k for k in kind_order if k in kinds),
        )
        for (source, target), kinds in pair_kinds.items()
    ]
    return DependencyGraph(ordered, edges, mode=mode)


@dataclass(frozen=True)
class OperationNode:
    """One node of a DGCC-style operation-level dependency graph."""

    tx_id: str
    operation: Operation

    @property
    def node_id(self) -> str:
        return f"{self.tx_id}:{self.operation.op_type.value}:{self.operation.key}"


def build_operation_graph(transactions: Sequence[Transaction]) -> nx.DiGraph:
    """Build a DGCC-style operation-level dependency graph.

    Each transaction is broken into per-record read/write operations; edges
    connect conflicting operations of different transactions in timestamp
    order, allowing execution to be parallelised at the level of operations
    rather than whole transactions (the paper notes OXII's graph generator can
    be designed this way, citing DGCC).
    """
    ordered = sorted(transactions, key=lambda t: t.timestamp)
    graph = nx.DiGraph()
    nodes: List[OperationNode] = []
    for tx in ordered:
        for op in tx.operations():
            node = OperationNode(tx_id=tx.tx_id, operation=op)
            nodes.append(node)
            graph.add_node(node.node_id, tx_id=tx.tx_id, op=op)
    for i, earlier_tx in enumerate(ordered):
        for later_tx in ordered[i + 1 :]:
            for earlier_op in earlier_tx.operations():
                for later_op in later_tx.operations():
                    if earlier_op.key != later_op.key:
                        continue
                    both_reads = (
                        earlier_op.op_type is OperationType.READ
                        and later_op.op_type is OperationType.READ
                    )
                    if both_reads:
                        continue
                    graph.add_edge(
                        OperationNode(earlier_tx.tx_id, earlier_op).node_id,
                        OperationNode(later_tx.tx_id, later_op).node_id,
                    )
    return graph


def contention_statistics(graph: DependencyGraph) -> Mapping[str, float]:
    """Summary statistics used by the benchmark reports."""
    size = len(graph)
    return {
        "transactions": float(size),
        "edges": float(graph.edge_count),
        "degree_of_contention": graph.degree_of_contention(),
        "critical_path": float(graph.critical_path_length()),
        "components": float(len(graph.components())),
        "cross_application_edges": float(len(graph.cross_application_edges())),
    }
