"""Algorithms 1-3 of the paper: dependency-graph-driven execution.

The three procedures an OXII executor runs concurrently are factored into
plain, deployment-independent classes so the same logic drives the simulated
executor nodes, the thread-pool executor and the unit tests:

* :class:`GraphScheduler` — Algorithm 1.  Tracks the waiting set ``W_e`` (the
  transactions this executor is an agent for), the executed set ``X_e`` and
  the committed set ``C_e``, and yields transactions whose predecessors are
  all in ``C_e ∪ X_e``.
* :class:`CommitBatcher` — Algorithm 2.  Accumulates execution results and
  decides when a COMMIT message must be multicast: as soon as an executed
  transaction has a successor belonging to a *different* application (a "cut"
  edge), the batch is flushed, which bounds the number of commit messages
  while preventing cross-application deadlock.
* :class:`StateUpdater` — Algorithm 3.  Collects COMMIT messages from
  executors and commits a transaction's updates to the blockchain state once
  ``τ(A)`` matching results from distinct agents have been received.
* :class:`ExecutionEngine` — a synchronous convenience engine that runs a
  whole block in-process (used by the OX paradigm's sequential execution and
  by correctness tests comparing parallel schedules against the sequential
  reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common.errors import DependencyGraphError, TransactionError
from repro.core.dependency_graph import DependencyGraph
from repro.core.transaction import Transaction, TransactionResult


class GraphScheduler:
    """Algorithm 1 — decide which waiting transactions are ready to execute."""

    def __init__(
        self,
        graph: DependencyGraph,
        assigned: Iterable[str],
    ) -> None:
        self._graph = graph
        assigned_set = set(assigned)
        unknown = assigned_set - set(graph.transaction_ids)
        if unknown:
            raise DependencyGraphError(f"assigned transactions not in graph: {sorted(unknown)}")
        #: ``W_e`` — transactions this executor must execute, in block order.
        self._waiting: List[str] = [t for t in graph.transaction_ids if t in assigned_set]
        #: ``X_e`` — transactions this executor has executed.
        self._executed: Set[str] = set()
        #: ``C_e`` — transactions known to be committed (locally or via COMMITs).
        self._committed: Set[str] = set()
        self._dispatched: Set[str] = set()

    # ------------------------------------------------------------------ state
    @property
    def waiting(self) -> List[str]:
        """``W_e`` — transactions still to be executed by this executor."""
        return list(self._waiting)

    @property
    def executed(self) -> Set[str]:
        """``X_e`` — transactions executed locally."""
        return set(self._executed)

    @property
    def committed(self) -> Set[str]:
        """``C_e`` — transactions committed (here or remotely)."""
        return set(self._committed)

    def is_done(self) -> bool:
        """True once every assigned transaction has been executed."""
        return not self._waiting

    # -------------------------------------------------------------- Algorithm 1
    def ready_transactions(self) -> List[Transaction]:
        """Transactions in ``W_e`` whose predecessors are all in ``C_e ∪ X_e``.

        Already-dispatched transactions are not returned twice, so callers can
        poll this after every state change without double-executing.
        """
        done = self._executed | self._committed
        ready: List[Transaction] = []
        for tx_id in self._waiting:
            if tx_id in self._dispatched:
                continue
            if self._graph.predecessors(tx_id) <= done:
                ready.append(self._graph.transaction(tx_id))
        for tx in ready:
            self._dispatched.add(tx.tx_id)
        return ready

    def mark_executed(self, tx_id: str) -> None:
        """Record that this executor finished executing ``tx_id``."""
        if tx_id not in self._graph:
            raise DependencyGraphError(f"unknown transaction {tx_id!r}")
        self._executed.add(tx_id)
        if tx_id in self._waiting:
            self._waiting.remove(tx_id)

    def mark_committed(self, tx_id: str) -> None:
        """Record that ``tx_id`` is committed (its results are in the state)."""
        if tx_id not in self._graph:
            # Commit messages may mention transactions from other blocks; the
            # scheduler only tracks its own block.
            return
        self._committed.add(tx_id)

    def blocked_on(self, tx_id: str) -> Set[str]:
        """Predecessors of ``tx_id`` that are not yet executed or committed."""
        return self._graph.predecessors(tx_id) - (self._executed | self._committed)


@dataclass(frozen=True)
class CommitMessage:
    """The payload of a COMMIT multicast: executed results from one executor."""

    executor: str
    block_sequence: int
    results: Tuple[TransactionResult, ...]

    def canonical_tuple(self) -> tuple:
        return (
            "commit",
            self.executor,
            self.block_sequence,
            tuple(r.canonical_tuple() for r in self.results),
        )


class CommitBatcher:
    """Algorithm 2 — batch execution results and flush on cross-application cuts."""

    def __init__(self, graph: DependencyGraph, executor: str, block_sequence: int) -> None:
        self._graph = graph
        self._executor = executor
        self._block_sequence = block_sequence
        self._batch: List[TransactionResult] = []
        self.flushes = 0

    @property
    def pending_results(self) -> List[TransactionResult]:
        """Results executed but not yet multicast."""
        return list(self._batch)

    def add_result(self, result: TransactionResult) -> Optional[CommitMessage]:
        """Record a finished execution; return a COMMIT message if a flush is due.

        A flush is due when the executed transaction has at least one
        successor that belongs to a different application — those agents need
        this result to make progress, so the accumulated batch is multicast.
        """
        self._batch.append(result)
        tx = self._graph.transaction(result.tx_id)
        needs_flush = any(
            self._graph.transaction(successor).application != tx.application
            for successor in self._graph.successors(result.tx_id)
        )
        if needs_flush:
            return self.flush()
        return None

    def flush(self) -> Optional[CommitMessage]:
        """Multicast everything accumulated so far (no-op on an empty batch)."""
        if not self._batch:
            return None
        message = CommitMessage(
            executor=self._executor,
            block_sequence=self._block_sequence,
            results=tuple(self._batch),
        )
        self._batch = []
        self.flushes += 1
        return message


@dataclass
class _ResultVotes:
    """Bookkeeping for one transaction's received results (``R_e(x)``)."""

    votes: List[Tuple[TransactionResult, str]] = field(default_factory=list)
    committed: bool = False

    def add(self, result: TransactionResult, executor: str) -> None:
        if any(sender == executor for _, sender in self.votes):
            return  # an executor only gets one vote per transaction
        self.votes.append((result, executor))

    def matching_count(self, result: TransactionResult) -> int:
        return sum(1 for candidate, _ in self.votes if candidate.matches(result))

    def best(self) -> Optional[Tuple[TransactionResult, int]]:
        """The result with the most matching votes and its count."""
        best_result: Optional[TransactionResult] = None
        best_count = 0
        for candidate, _ in self.votes:
            count = self.matching_count(candidate)
            if count > best_count:
                best_result, best_count = candidate, count
        if best_result is None:
            return None
        return best_result, best_count


class StateUpdater:
    """Algorithm 3 — commit results once τ(A) matching votes have arrived."""

    def __init__(
        self,
        block_transactions: Sequence[Transaction],
        tau: Callable[[str], int],
        is_agent: Callable[[str, str], bool],
        apply_update: Callable[[TransactionResult], None],
    ) -> None:
        """``tau(app)`` gives the required matching-vote count for ``app``;
        ``is_agent(executor, app)`` says whether ``executor`` is an agent of
        ``app`` (votes from non-agents are discarded); ``apply_update`` is
        called exactly once per committed transaction with the winning result.
        """
        self._transactions: Dict[str, Transaction] = {tx.tx_id: tx for tx in block_transactions}
        self._tau = tau
        self._is_agent = is_agent
        self._apply_update = apply_update
        self._votes: Dict[str, _ResultVotes] = {tx_id: _ResultVotes() for tx_id in self._transactions}
        self._committed: Dict[str, TransactionResult] = {}

    # ------------------------------------------------------------------ state
    @property
    def committed_ids(self) -> Set[str]:
        """Transactions whose results have been applied to the state."""
        return set(self._committed)

    def committed_result(self, tx_id: str) -> Optional[TransactionResult]:
        """The winning result for a committed transaction, if any."""
        return self._committed.get(tx_id)

    def is_complete(self) -> bool:
        """True once every transaction of the block has been committed."""
        return len(self._committed) == len(self._transactions)

    def pending_ids(self) -> Set[str]:
        """Transactions still waiting for enough matching votes."""
        return set(self._transactions) - set(self._committed)

    # -------------------------------------------------------------- Algorithm 3
    def receive(self, message: CommitMessage) -> List[str]:
        """Process a COMMIT message; return transactions committed by it."""
        newly_committed: List[str] = []
        for result in message.results:
            tx = self._transactions.get(result.tx_id)
            if tx is None:
                continue  # result for a transaction outside this block
            if not self._is_agent(message.executor, tx.application):
                continue  # only agents of the application may vote
            votes = self._votes[result.tx_id]
            if votes.committed:
                continue
            votes.add(result, message.executor)
            best = votes.best()
            if best is None:
                continue
            winning, count = best
            if count >= self._tau(tx.application):
                votes.committed = True
                self._committed[result.tx_id] = winning
                if not winning.is_abort:
                    self._apply_update(winning)
                newly_committed.append(result.tx_id)
        return newly_committed


class ExecutionEngine:
    """Synchronous reference engine: execute a block in a single process.

    ``contract_runner(tx, state_view)`` executes one transaction against a
    read view of the current state and returns its :class:`TransactionResult`.
    The engine applies committed updates to ``state`` (a mutable mapping) in
    dependency-graph order, which is the sequential-equivalent baseline every
    parallel schedule must match.
    """

    def __init__(
        self,
        contract_runner: Callable[[Transaction, Mapping[str, object]], TransactionResult],
        state: Dict[str, object],
    ) -> None:
        self._contract_runner = contract_runner
        self._state = state

    @property
    def state(self) -> Dict[str, object]:
        """The mutable world state the engine applies updates to."""
        return self._state

    def execute_sequentially(self, transactions: Sequence[Transaction]) -> List[TransactionResult]:
        """Execute ``transactions`` one by one in the given order (OX paradigm)."""
        results: List[TransactionResult] = []
        for tx in transactions:
            result = self._contract_runner(tx, self._state)
            if not result.is_abort:
                self._state.update(result.updates)
            results.append(result)
        return results

    def execute_with_graph(self, graph: DependencyGraph) -> List[TransactionResult]:
        """Execute a block following its dependency graph (OXII semantics).

        Transactions are executed wave by wave: every transaction whose
        predecessors have committed runs (conceptually in parallel), then their
        updates are applied, then the next wave runs.  The final state is
        guaranteed to equal the sequential execution of the block because the
        graph orders every conflicting pair.
        """
        scheduler = GraphScheduler(graph, assigned=graph.transaction_ids)
        results: Dict[str, TransactionResult] = {}
        while not scheduler.is_done():
            wave = scheduler.ready_transactions()
            if not wave:
                blocked = {tx_id: scheduler.blocked_on(tx_id) for tx_id in scheduler.waiting}
                raise TransactionError(f"execution deadlock; blocked on {blocked}")
            wave_results: List[TransactionResult] = []
            for tx in wave:
                wave_results.append(self._contract_runner(tx, self._state))
            for result in wave_results:
                if not result.is_abort:
                    self._state.update(result.updates)
                results[result.tx_id] = result
                scheduler.mark_executed(result.tx_id)
                scheduler.mark_committed(result.tx_id)
        return [results[tx_id] for tx_id in graph.transaction_ids]
