"""Algorithms 1-3 of the paper: dependency-graph-driven execution.

The three procedures an OXII executor runs concurrently are factored into
plain, deployment-independent classes so the same logic drives the simulated
executor nodes, the thread-pool executor and the unit tests:

* :class:`CountdownScheduler` — Algorithm 1 on the dense integer index space
  of :mod:`repro.core.graph_core`.  Keeps an array of remaining-predecessor
  counts and a FIFO of newly-ready indices, so scheduling a whole block costs
  O(V+E) total instead of rescanning the waiting list per poll.
* :class:`GraphScheduler` — the string-keyed compatibility facade over the
  countdown scheduler.  Tracks the waiting set ``W_e`` (the transactions this
  executor is an agent for), the executed set ``X_e`` and the committed set
  ``C_e``, and yields transactions whose predecessors are all in
  ``C_e ∪ X_e``.
* :class:`CommitBatcher` — Algorithm 2.  Accumulates execution results and
  decides when a COMMIT message must be multicast: as soon as an executed
  transaction has a successor belonging to a *different* application (a "cut"
  edge), the batch is flushed, which bounds the number of commit messages
  while preventing cross-application deadlock.
* :class:`StateUpdater` — Algorithm 3.  Collects COMMIT messages from
  executors and commits a transaction's updates to the blockchain state once
  ``τ(A)`` matching results from distinct agents have been received.
* :class:`ExecutionEngine` — a synchronous convenience engine that runs a
  whole block in-process (used by the OX paradigm's sequential execution and
  by correctness tests comparing parallel schedules against the sequential
  reference).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    KeysView,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.errors import DependencyGraphError
from repro.core.dependency_graph import DependencyGraph
from repro.core.transaction import Transaction, TransactionResult


class CountdownScheduler:
    """Algorithm 1 on dense indices: indegree countdown plus a ready FIFO.

    A transaction is ready once every predecessor has *settled* (entered
    ``X_e ∪ C_e``).  Instead of re-deriving that from sets on every poll, the
    scheduler counts down each node's remaining unsettled predecessors; the
    first settle event of a node decrements its successors, and any assigned
    successor that reaches zero is appended to the ready queue.  Every edge is
    therefore touched exactly once, so a whole block schedules in O(V+E).

    Indices are block positions — the same index space as
    :attr:`DependencyGraph.dag` — which keeps all bookkeeping in flat arrays.
    """

    __slots__ = (
        "_graph",
        "_dag",
        "_remaining",
        "_settled",
        "_assigned",
        "_dispatched",
        "_executed",
        "_committed",
        "_ready",
        "_waiting_count",
    )

    def __init__(self, graph: DependencyGraph, assigned_indices: Iterable[int]) -> None:
        dag = graph.dag
        n = dag.n
        self._graph = graph
        self._dag = dag
        #: Unsettled-predecessor countdown per node (drives readiness).
        self._remaining = dag.in_degrees()
        #: Node flags, one byte each: settled = entered ``X_e ∪ C_e``.
        self._settled = bytearray(n)
        self._assigned = bytearray(n)
        self._dispatched = bytearray(n)
        self._executed = bytearray(n)
        self._committed = bytearray(n)
        for v in assigned_indices:
            self._assigned[self._check_index(v)] = 1
        self._waiting_count = sum(self._assigned)
        remaining = self._remaining
        assigned = self._assigned
        #: FIFO of assigned indices whose countdown reached zero (block order
        #: initially; settle order afterwards — drained sorted per poll).
        self._ready: Deque[int] = deque(
            v for v in range(n) if assigned[v] and remaining[v] == 0
        )

    # ------------------------------------------------------------------ state
    @property
    def graph(self) -> DependencyGraph:
        """The dependency graph being scheduled."""
        return self._graph

    def is_assigned(self, index: int) -> bool:
        """True if ``index`` is in ``W_e`` (this executor must execute it)."""
        return bool(self._assigned[self._check_index(index)])

    def is_executed(self, index: int) -> bool:
        """True if ``index`` is in ``X_e``."""
        return bool(self._executed[self._check_index(index)])

    def is_committed(self, index: int) -> bool:
        """True if ``index`` is in ``C_e``."""
        return bool(self._committed[self._check_index(index)])

    def waiting_count(self) -> int:
        """How many assigned transactions have not been executed yet."""
        return self._waiting_count

    def is_done(self) -> bool:
        """True once every assigned transaction has been executed."""
        return self._waiting_count == 0

    def waiting_indices(self) -> List[int]:
        """Assigned, not-yet-executed indices in block order (error paths)."""
        assigned, executed = self._assigned, self._executed
        return [v for v in range(self._dag.n) if assigned[v] and not executed[v]]

    # -------------------------------------------------------------- Algorithm 1
    def ready_indices(self) -> List[int]:
        """Newly-ready assigned indices, in block order, each returned once."""
        ready = self._ready
        if not ready:
            return []
        dispatched, executed = self._dispatched, self._executed
        out: List[int] = []
        while ready:
            v = ready.popleft()
            if dispatched[v] or executed[v]:
                continue
            dispatched[v] = 1
            out.append(v)
        if len(out) > 1:
            out.sort()
        return out

    def _settle(self, v: int) -> None:
        """First entry of ``v`` into ``X_e ∪ C_e``: count down its successors."""
        if self._settled[v]:
            return
        self._settled[v] = 1
        remaining = self._remaining
        assigned, dispatched, executed = self._assigned, self._dispatched, self._executed
        ready = self._ready
        for w in self._dag.successors(v):
            remaining[w] -= 1
            if remaining[w] == 0 and assigned[w] and not dispatched[w] and not executed[w]:
                ready.append(w)

    def _check_index(self, index: int) -> int:
        # bytearrays wrap negative indices to the end of the block, which
        # would silently mark the wrong transaction; fail fast instead.
        if not 0 <= index < self._dag.n:
            raise IndexError(f"index {index} out of range for {self._dag.n} transactions")
        return index

    def mark_executed(self, index: int) -> None:
        """Record that this executor finished executing ``index``."""
        self._check_index(index)
        if not self._executed[index]:
            self._executed[index] = 1
            self._dispatched[index] = 1
            if self._assigned[index]:
                self._waiting_count -= 1
        self._settle(index)

    def mark_committed(self, index: int) -> None:
        """Record that ``index`` is committed (its results are in the state)."""
        self._committed[self._check_index(index)] = 1
        self._settle(index)

    def blocked_on_indices(self, index: int) -> List[int]:
        """Predecessors of ``index`` that are not yet executed or committed."""
        settled = self._settled
        return [u for u in self._dag.predecessors(self._check_index(index)) if not settled[u]]


class GraphScheduler:
    """Algorithm 1 — string-keyed facade over :class:`CountdownScheduler`.

    Kept as the drop-in surface the executor nodes and the thread-pool
    executor program against; every call translates transaction ids to block
    positions once and delegates, so the facade inherits the countdown
    scheduler's O(V+E) total cost.  ``executed``/``committed`` are exposed as
    read-only dict-key views (set-like, always current) rather than per-access
    set copies.
    """

    def __init__(
        self,
        graph: DependencyGraph,
        assigned: Iterable[str],
    ) -> None:
        self._graph = graph
        indices: List[int] = []
        unknown: List[str] = []
        for tx_id in assigned:
            try:
                indices.append(graph.index_of(tx_id))
            except DependencyGraphError:
                unknown.append(tx_id)
        if unknown:
            raise DependencyGraphError(
                f"assigned transactions not in graph: {sorted(set(unknown))}"
            )
        self._core = CountdownScheduler(graph, indices)
        #: ``X_e`` / ``C_e`` as insertion-ordered dicts; ``.keys()`` gives the
        #: callers a live, read-only, set-like view without copying.
        self._executed: Dict[str, None] = {}
        self._committed: Dict[str, None] = {}

    # ------------------------------------------------------------------ state
    @property
    def core(self) -> CountdownScheduler:
        """The underlying index-based scheduler."""
        return self._core

    @property
    def waiting(self) -> Tuple[str, ...]:
        """``W_e`` — transactions still to be executed, in block order.

        Materialised on demand (an O(V) scan); only error reporting and tests
        read it, so the hot loop never pays for list maintenance.
        """
        graph = self._graph
        return tuple(graph.id_at(v) for v in self._core.waiting_indices())

    @property
    def executed(self) -> KeysView[str]:
        """``X_e`` — transactions executed locally (read-only live view)."""
        return self._executed.keys()

    @property
    def committed(self) -> KeysView[str]:
        """``C_e`` — transactions committed here or remotely (read-only live view)."""
        return self._committed.keys()

    def is_done(self) -> bool:
        """True once every assigned transaction has been executed."""
        return self._core.is_done()

    # -------------------------------------------------------------- Algorithm 1
    def ready_transactions(self) -> List[Transaction]:
        """Transactions in ``W_e`` whose predecessors are all in ``C_e ∪ X_e``.

        Already-dispatched transactions are not returned twice, so callers can
        poll this after every state change without double-executing.
        """
        graph = self._graph
        return [graph.transaction_at(v) for v in self._core.ready_indices()]

    def mark_executed(self, tx_id: str) -> None:
        """Record that this executor finished executing ``tx_id``."""
        self._core.mark_executed(self._graph.index_of(tx_id))
        self._executed[tx_id] = None

    def mark_committed(self, tx_id: str) -> None:
        """Record that ``tx_id`` is committed (its results are in the state)."""
        if tx_id not in self._graph:
            # Commit messages may mention transactions from other blocks; the
            # scheduler only tracks its own block.
            return
        self._core.mark_committed(self._graph.index_of(tx_id))
        self._committed[tx_id] = None

    def blocked_on(self, tx_id: str) -> Set[str]:
        """Predecessors of ``tx_id`` that are not yet executed or committed."""
        graph = self._graph
        blocked = self._core.blocked_on_indices(graph.index_of(tx_id))
        return {graph.id_at(u) for u in blocked}


@dataclass(frozen=True)
class CommitMessage:
    """The payload of a COMMIT multicast: executed results from one executor."""

    executor: str
    block_sequence: int
    results: Tuple[TransactionResult, ...]

    def canonical_tuple(self) -> tuple:
        return (
            "commit",
            self.executor,
            self.block_sequence,
            tuple(r.canonical_tuple() for r in self.results),
        )


class CommitBatcher:
    """Algorithm 2 — batch execution results and flush on cross-application cuts."""

    def __init__(self, graph: DependencyGraph, executor: str, block_sequence: int) -> None:
        self._graph = graph
        # One pass over the edges per block instead of loading successor
        # Transaction objects per executed result.
        self._cut_flags = graph.cross_application_successor_flags()
        self._executor = executor
        self._block_sequence = block_sequence
        self._batch: List[TransactionResult] = []
        self.flushes = 0

    @property
    def pending_results(self) -> List[TransactionResult]:
        """Results executed but not yet multicast."""
        return list(self._batch)

    def add_result(self, result: TransactionResult) -> Optional[CommitMessage]:
        """Record a finished execution; return a COMMIT message if a flush is due.

        A flush is due when the executed transaction has at least one
        successor that belongs to a different application — those agents need
        this result to make progress, so the accumulated batch is multicast.
        """
        self._batch.append(result)
        if self._cut_flags[self._graph.index_of(result.tx_id)]:
            return self.flush()
        return None

    def flush(self) -> Optional[CommitMessage]:
        """Multicast everything accumulated so far (no-op on an empty batch)."""
        if not self._batch:
            return None
        message = CommitMessage(
            executor=self._executor,
            block_sequence=self._block_sequence,
            results=tuple(self._batch),
        )
        self._batch = []
        self.flushes += 1
        return message


class _ResultVotes:
    """Bookkeeping for one transaction's received results (``R_e(x)``).

    Votes are tallied in a single pass, keyed by each result's
    ``match_key()`` (outcome + updates frozen with ``==``-preserving
    semantics), so receiving a vote is O(1) instead of the O(votes²)
    pairwise ``matches()`` comparisons the naive tally pays.  Results whose
    updates cannot be frozen faithfully (``match_key()`` raises
    ``TypeError``) drop to a pairwise-``matches()`` bucket list — the seed
    semantics, exact by construction, and only ever paid for exotic update
    values.  The running best is only replaced by a strictly higher count,
    which commits the first result variant to reach ``τ(A)`` — the same
    result Algorithm 3 committed under pairwise matching (a variant that had
    reached the threshold earlier would already have committed).
    """

    __slots__ = ("committed", "_senders", "_tally", "_unkeyed", "_best")

    def __init__(self) -> None:
        self.committed = False
        self._senders: Set[str] = set()
        #: match key -> [first result with that key, matching-vote count]
        self._tally: Dict[object, list] = {}
        #: entries for results without a usable match key (pairwise-compared)
        self._unkeyed: List[list] = []
        self._best: Optional[list] = None

    def _entry_for(self, result: TransactionResult) -> Optional[list]:
        """The bucket ``result`` belongs to, or None.

        A bucket lives in ``_tally`` or ``_unkeyed`` depending on its *first*
        result's freezability, but Python allows ``==`` across the divide
        (``bytes == bytearray``), so the rare miss on one side falls through
        to a pairwise scan of the other — membership is always decided by
        ``matches()``, exactly like the seed's pairwise tally.
        """
        try:
            key = result.match_key()
        except TypeError:
            key = None
        if key is not None:
            entry = self._tally.get(key)
            if entry is not None:
                return entry
            candidates: Iterable[list] = self._unkeyed
        else:
            candidates = (*self._unkeyed, *self._tally.values())
        for entry in candidates:
            if entry[0].matches(result):
                return entry
        return None

    def add(self, result: TransactionResult, executor: str) -> None:
        if executor in self._senders:
            return  # an executor only gets one vote per transaction
        self._senders.add(executor)
        entry = self._entry_for(result)
        if entry is None:
            entry = [result, 1]
            try:
                self._tally[result.match_key()] = entry
            except TypeError:
                self._unkeyed.append(entry)
        else:
            entry[1] += 1
        if self._best is None or entry[1] > self._best[1]:
            self._best = entry

    def best(self) -> Optional[Tuple[TransactionResult, int]]:
        """The result with the most matching votes and its count."""
        if self._best is None:
            return None
        return self._best[0], self._best[1]


class StateUpdater:
    """Algorithm 3 — commit results once τ(A) matching votes have arrived."""

    def __init__(
        self,
        block_transactions: Sequence[Transaction],
        tau: Callable[[str], int],
        is_agent: Callable[[str, str], bool],
        apply_update: Optional[Callable[[TransactionResult], None]] = None,
        *,
        apply_batch: Optional[Callable[[Sequence[TransactionResult]], None]] = None,
    ) -> None:
        """``tau(app)`` gives the required matching-vote count for ``app``;
        ``is_agent(executor, app)`` says whether ``executor`` is an agent of
        ``app`` (votes from non-agents are discarded).  Exactly one of the
        apply callbacks is used per committed transaction: ``apply_update`` is
        called once per winning result; ``apply_batch``, when provided, is
        instead called once per COMMIT message with every non-abort winner it
        committed (the batched path the world state applies in one pass).
        """
        if apply_update is None and apply_batch is None:
            raise ValueError("StateUpdater needs apply_update or apply_batch")
        self._transactions: Dict[str, Transaction] = {tx.tx_id: tx for tx in block_transactions}
        self._tau = tau
        self._is_agent = is_agent
        self._apply_update = apply_update
        self._apply_batch = apply_batch
        self._votes: Dict[str, _ResultVotes] = {tx_id: _ResultVotes() for tx_id in self._transactions}
        self._committed: Dict[str, TransactionResult] = {}
        #: Block position per transaction and, per record, the position of the
        #: latest writer whose update has been applied — the dependency-graph
        #: order gate (see :meth:`_effective_updates`).
        self._positions: Dict[str, int] = {
            tx.tx_id: index for index, tx in enumerate(block_transactions)
        }
        self._last_writer: Dict[str, int] = {}
        self._effective: Dict[str, Mapping[str, Any]] = {}

    # ------------------------------------------------------------------ state
    @property
    def committed_ids(self) -> Set[str]:
        """Transactions whose results have been applied to the state."""
        return set(self._committed)

    def committed_result(self, tx_id: str) -> Optional[TransactionResult]:
        """The winning result for a committed transaction, if any."""
        return self._committed.get(tx_id)

    def effective_updates(self, tx_id: str) -> Mapping[str, Any]:
        """The updates of ``tx_id`` that survived the block-order write gate.

        Empty until the transaction commits (and for committed aborts).
        """
        return self._effective.get(tx_id, {})

    def _gate_updates(self, tx_id: str, winning: TransactionResult) -> Mapping[str, Any]:
        """Filter a winner's updates to those not superseded in block order.

        COMMIT messages from different agents travel on independent links, so
        the votes of two transactions writing the same record can arrive out
        of dependency-graph order.  Applying them in arrival order would let
        the *earlier* writer overwrite the *later* one — a committed state no
        serial execution can produce (the bug the serializability oracle
        catches).  Each record therefore remembers the block position of the
        latest applied writer and drops updates from before it.
        """
        position = self._positions[tx_id]
        last = self._last_writer
        filtered: Dict[str, Any] = {}
        for key, value in winning.updates.items():
            if last.get(key, -1) < position:
                filtered[key] = value
                last[key] = position
        self._effective[tx_id] = filtered
        return filtered

    def is_complete(self) -> bool:
        """True once every transaction of the block has been committed."""
        return len(self._committed) == len(self._transactions)

    def pending_ids(self) -> Set[str]:
        """Transactions still waiting for enough matching votes."""
        return set(self._transactions) - set(self._committed)

    # -------------------------------------------------------------- Algorithm 3
    def receive(self, message: CommitMessage) -> List[str]:
        """Process a COMMIT message; return transactions committed by it."""
        newly_committed: List[str] = []
        winners: List[TransactionResult] = []
        for result in message.results:
            tx = self._transactions.get(result.tx_id)
            if tx is None:
                continue  # result for a transaction outside this block
            if not self._is_agent(message.executor, tx.application):
                continue  # only agents of the application may vote
            votes = self._votes[result.tx_id]
            if votes.committed:
                continue
            votes.add(result, message.executor)
            best = votes.best()
            if best is None:
                continue
            winning, count = best
            if count >= self._tau(tx.application):
                votes.committed = True
                self._committed[result.tx_id] = winning
                if not winning.is_abort:
                    effective = self._gate_updates(result.tx_id, winning)
                    # The common (in-order) case applies the result untouched;
                    # a gated result is re-wrapped so both apply paths see
                    # only the surviving updates.
                    applied = (
                        winning
                        if len(effective) == len(winning.updates)
                        else replace(winning, updates=effective)
                    )
                    if self._apply_batch is not None:
                        winners.append(applied)
                    else:
                        self._apply_update(applied)
                newly_committed.append(result.tx_id)
        if winners:
            self._apply_batch(winners)
        return newly_committed


class ExecutionEngine:
    """Synchronous reference engine: execute a block in a single process.

    ``contract_runner(tx, state_view)`` executes one transaction against a
    read view of the current state and returns its :class:`TransactionResult`.
    The engine applies committed updates to ``state`` (a mutable mapping) in
    dependency-graph order, which is the sequential-equivalent baseline every
    parallel schedule must match.
    """

    def __init__(
        self,
        contract_runner: Callable[[Transaction, Mapping[str, object]], TransactionResult],
        state: Dict[str, object],
    ) -> None:
        self._contract_runner = contract_runner
        self._state = state

    @property
    def state(self) -> Dict[str, object]:
        """The mutable world state the engine applies updates to."""
        return self._state

    def execute_sequentially(self, transactions: Sequence[Transaction]) -> List[TransactionResult]:
        """Execute ``transactions`` one by one in the given order (OX paradigm)."""
        results: List[TransactionResult] = []
        for tx in transactions:
            result = self._contract_runner(tx, self._state)
            if not result.is_abort:
                self._state.update(result.updates)
            results.append(result)
        return results

    def execute_with_graph(self, graph: DependencyGraph) -> List[TransactionResult]:
        """Execute a block following its dependency graph (OXII semantics).

        Transactions are executed wave by wave: every transaction whose
        predecessors have committed runs (conceptually in parallel), then their
        updates are applied, then the next wave runs.  The final state is
        guaranteed to equal the sequential execution of the block because the
        graph orders every conflicting pair that must observe each other.

        A whole wave's updates are applied in one batch.  That is safe
        because waves come out in block order and ``dict.update`` is
        last-writer-wins: under ``single_version`` semantics two writers of
        one record never share a wave (their WW edge separates them), and
        under ``multi_version`` semantics — where WW pairs carry no edge and
        *can* share a wave — the block-order merge commits exactly the later
        writer's value, the same record the seed's per-result application in
        wave order left behind.

        When every transaction executes locally the waves need no event-driven
        bookkeeping at all: they are exactly the dependency-depth levels of
        the DAG (``test_countdown_waves_are_a_topological_stratification``
        pins that the countdown scheduler dispatches the same waves in the
        same in-wave block order), so the engine stratifies the block once
        with :meth:`AdjacencyDAG.wave_partition` instead of paying the
        per-edge countdown the distributed executors need for remote COMMIT
        interleaving.
        """
        n = len(graph)
        results: List[Optional[TransactionResult]] = [None] * n
        runner = self._contract_runner
        state = self._state
        for wave in graph.dag.wave_partition():
            wave_updates: Dict[str, object] = {}
            for v in wave:
                result = runner(graph.transaction_at(v), state)
                if not result.is_abort:
                    wave_updates.update(result.updates)
                results[v] = result
            if wave_updates:
                state.update(wave_updates)
        return list(results)
