"""Dense integer-indexed DAG primitives for the dependency-graph hot path.

The orderer builds a dependency graph for every block and the executors
schedule off it (Section III-A), so graph construction and traversal sit on
the hottest loop of the whole system.  This module provides the purpose-built
core that :mod:`repro.core.dependency_graph` is layered on: nodes are dense
integers ``0 .. n-1``, adjacency is plain Python lists, in-degrees are
precomputed arrays, topological sorting is an iterative Kahn's algorithm,
the critical path is a single dynamic-programming pass and weak components
come from a union-find with path halving.

Dependency graphs have a structural invariant the core exploits: every edge
points from an earlier to a later timestamp, and nodes are indexed in
timestamp order, so every edge satisfies ``u < v``.  That makes the graph
acyclic *by construction* (no cycle check needed) and makes the identity
ordering ``0, 1, .., n-1`` a valid topological order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core._accel import HAVE_NUMPY, np


class UnionFind:
    """Disjoint sets over ``0 .. n-1`` with path halving and union by size."""

    __slots__ = ("_parent", "_size")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> List[List[int]]:
        """The sets, each sorted, ordered by their smallest member."""
        members: dict = {}
        for x in range(len(self._parent)):
            members.setdefault(self.find(x), []).append(x)
        return sorted(members.values(), key=lambda group: group[0])


class AdjacencyDAG:
    """A forward-only DAG over dense integer nodes.

    Every edge must satisfy ``u < v`` (dependency edges always point from an
    earlier to a later timestamp), which guarantees acyclicity without a
    cycle check and makes ``range(n)`` a valid topological order.
    """

    __slots__ = (
        "_n",
        "_succ",
        "_pred",
        "_in_degree",
        "_out_degree",
        "_edge_count",
        "_edge_arrays",
    )

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("node count must be non-negative")
        self._n = n
        self._succ: List[List[int]] = [[] for _ in range(n)]
        self._pred: List[List[int]] = [[] for _ in range(n)]
        self._in_degree = [0] * n
        self._out_degree = [0] * n
        self._edge_count = 0
        self._edge_arrays: Optional[Tuple[object, object]] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_incoming(cls, incoming: Sequence[Iterable[int]]) -> "AdjacencyDAG":
        """Bulk-build from per-node predecessor collections (the fast path).

        ``incoming[v]`` holds the in-neighbours of ``v``; all must be smaller
        than ``v`` (checked once per node on the sorted list, not per edge).
        """
        dag = cls(len(incoming))
        succ, pred = dag._succ, dag._pred
        in_degree, out_degree = dag._in_degree, dag._out_degree
        edge_count = 0
        for v, collection in enumerate(incoming):
            if not collection:
                continue
            preds = sorted(collection) if len(collection) > 1 else list(collection)
            if preds[0] < 0 or preds[-1] >= v:
                raise ValueError(f"predecessors of {v} must lie in [0, {v})")
            pred[v] = preds
            in_degree[v] = len(preds)
            edge_count += len(preds)
            for u in preds:
                succ[u].append(v)
                out_degree[u] += 1
        dag._edge_count = edge_count
        return dag

    def add_edge(self, u: int, v: int) -> None:
        """Add the edge ``u -> v``; requires ``u < v`` (callers dedupe)."""
        if not 0 <= u < self._n or not 0 <= v < self._n:
            raise ValueError(f"edge ({u}, {v}) out of range for {self._n} nodes")
        if u >= v:
            raise ValueError(f"edge ({u}, {v}) must point forward (u < v)")
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._in_degree[v] += 1
        self._out_degree[u] += 1
        self._edge_count += 1
        self._edge_arrays = None

    # ------------------------------------------------------------------ shape
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    def successors(self, u: int) -> List[int]:
        """Out-neighbours of ``u`` (the internal list — do not mutate)."""
        return self._succ[u]

    def predecessors(self, v: int) -> List[int]:
        """In-neighbours of ``v`` (the internal list — do not mutate)."""
        return self._pred[v]

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        return self._in_degree[v]

    def in_degrees(self) -> List[int]:
        """A fresh copy of the in-degree array (countdown schedulers own it)."""
        return list(self._in_degree)

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return self._out_degree[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Every edge ``(u, v)`` in node-then-insertion order."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def roots(self) -> List[int]:
        """Nodes with no incoming edge, in index order."""
        in_degree = self._in_degree
        return [v for v in range(self._n) if in_degree[v] == 0]

    # -------------------------------------------------------------- traversal
    def topological_order(self) -> List[int]:
        """A valid topological order — the identity, by the ``u < v`` invariant."""
        return list(range(self._n))

    def kahn_order(self, priority: Optional[Callable[[int], object]] = None) -> List[int]:
        """Iterative Kahn's algorithm with an optional tie-breaking priority.

        With ``priority=None`` nodes are released in index order (a min-heap
        on the node index), which for timestamp-indexed dependency graphs is
        exactly the lexicographic-by-timestamp order.  Provided mostly for
        validation and for graphs built through other frontends.
        """
        remaining = list(self._in_degree)
        if priority is None:
            heap: List = [v for v in range(self._n) if remaining[v] == 0]
        else:
            heap = [(priority(v), v) for v in range(self._n) if remaining[v] == 0]
        heapq.heapify(heap)
        order: List[int] = []
        while heap:
            item = heapq.heappop(heap)
            v = item if priority is None else item[1]
            order.append(v)
            for w in self._succ[v]:
                remaining[w] -= 1
                if remaining[w] == 0:
                    heapq.heappush(heap, w if priority is None else (priority(w), w))
        if len(order) != self._n:
            raise ValueError("graph contains a cycle")
        return order

    def longest_path_depths(self) -> List[int]:
        """``depths[v]`` — edges on the longest path ending at ``v``.

        A single DP pass in index order (valid because edges point forward):
        ``depths[v] = 1 + max(depths[u] for u in pred(v))`` with roots at 0.
        """
        depths = [0] * self._n
        pred = self._pred
        for v in range(self._n):
            incoming = pred[v]
            if incoming:
                depths[v] = 1 + max(depths[u] for u in incoming)
        return depths

    def critical_path_length(self) -> int:
        """Nodes on the longest path (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(self.longest_path_depths()) + 1

    def wave_partition(self, depths: Optional[Sequence[int]] = None) -> List[List[int]]:
        """Nodes grouped by dependency depth, block order inside each wave.

        Wave ``k`` is exactly the set of nodes whose longest incoming chain
        has ``k`` edges — the same stratification the countdown scheduler
        produces when every node settles as soon as it executes (proven by
        ``test_countdown_waves_are_a_topological_stratification``), so a
        whole-block executor can dispatch wave by wave without paying the
        per-edge settle bookkeeping.  Pass precomputed ``depths`` to avoid
        recomputing the longest-path DP.

        The bucketing is vectorised with numpy when available: a stable
        argsort on the depth array yields every wave already in block order.
        """
        if depths is None:
            depths = self.longest_path_depths()
        n = self._n
        if n == 0:
            return []
        if HAVE_NUMPY:
            arr = np.asarray(depths, dtype=np.int64)
            counts = np.bincount(arr)
            order = np.argsort(arr, kind="stable")
            waves: List[List[int]] = []
            start = 0
            for count in counts.tolist():
                waves.append(order[start : start + count].tolist())
                start += count
            return waves
        waves = [[] for _ in range(max(depths) + 1)]
        for v, d in enumerate(depths):
            waves[d].append(v)
        return waves

    def edge_index_arrays(self) -> Optional[Tuple[object, object]]:
        """The edges as parallel ``(sources, targets)`` numpy arrays, cached.

        Returns ``None`` when numpy is unavailable — callers fall back to the
        per-edge Python loop.  Built once per graph (graphs are immutable
        after construction on the hot path) so every vectorised whole-block
        pass over the edges shares the arrays.
        """
        if not HAVE_NUMPY:
            return None
        if self._edge_arrays is None:
            m = self._edge_count
            sources = np.empty(m, dtype=np.int64)
            targets = np.empty(m, dtype=np.int64)
            offset = 0
            for u, succ in enumerate(self._succ):
                if not succ:
                    continue
                end = offset + len(succ)
                sources[offset:end] = u
                targets[offset:end] = succ
                offset = end
            self._edge_arrays = (sources, targets)
        return self._edge_arrays

    def components(self) -> List[List[int]]:
        """Weakly connected components via union-find, smallest member first."""
        uf = UnionFind(self._n)
        for u, targets in enumerate(self._succ):
            for v in targets:
                uf.union(u, v)
        return uf.groups()


def depth_histogram(depths: Sequence[int]) -> List[int]:
    """Entry ``i`` is how many nodes sit at dependency depth ``i``."""
    if not depths:
        return []
    if HAVE_NUMPY:
        return np.bincount(np.asarray(depths, dtype=np.int64)).tolist()
    histogram = [0] * (max(depths) + 1)
    for d in depths:
        histogram[d] += 1
    return histogram
