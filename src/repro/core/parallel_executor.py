"""Thread-pool execution of a dependency graph with real threads.

The performance experiments run on the discrete-event simulator (see
DESIGN.md), but the examples and the correctness tests also exercise a real
concurrent executor: transactions run on a ``ThreadPoolExecutor`` as soon as
their dependency-graph predecessors have committed, with per-record locking
deliberately omitted because the graph already orders every conflicting pair.
The final state is checked (in tests) to equal the sequential execution of the
block, demonstrating the paper's central correctness claim.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import TransactionError
from repro.core.dependency_graph import DependencyGraph
from repro.core.execution import GraphScheduler
from repro.core.transaction import Transaction, TransactionResult

ContractRunner = Callable[[Transaction, Mapping[str, object]], TransactionResult]


class ParallelGraphExecutor:
    """Execute one block's dependency graph on a pool of worker threads."""

    def __init__(self, contract_runner: ContractRunner, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._contract_runner = contract_runner
        self._max_workers = max_workers

    def execute(
        self,
        graph: DependencyGraph,
        state: Dict[str, object],
        assigned: Optional[Sequence[str]] = None,
    ) -> List[TransactionResult]:
        """Execute the graph, mutating ``state``; return results in block order.

        ``assigned`` restricts execution to a subset of transaction ids (an
        executor that is only the agent of some applications); by default the
        whole block is executed.  Updates of committed transactions are applied
        to ``state`` under a lock before dependants are released, so every
        transaction observes exactly the writes of its graph predecessors.
        """
        assigned_ids = list(assigned) if assigned is not None else list(graph.transaction_ids)
        scheduler = GraphScheduler(graph, assigned=assigned_ids)
        state_lock = threading.Lock()
        results: Dict[str, TransactionResult] = {}

        def run_one(tx: Transaction) -> TransactionResult:
            with state_lock:
                snapshot = dict(state)
            return self._contract_runner(tx, snapshot)

        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            in_flight: Dict[Future, str] = {}
            self._submit_ready(pool, scheduler, run_one, in_flight)
            while in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    tx_id = in_flight.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        # A contract that raises (instead of returning an abort
                        # result) breaks its contract; converting to an aborted
                        # result keeps the scheduler consistent and lets the
                        # rest of the block finish instead of abandoning the
                        # in-flight transactions mid-loop.
                        result = TransactionResult.abort(
                            graph.transaction(tx_id),
                            reason=f"contract raised {type(exc).__name__}: {exc}",
                        )
                    with state_lock:
                        if not result.is_abort:
                            state.update(result.updates)
                    results[tx_id] = result
                    scheduler.mark_executed(tx_id)
                    scheduler.mark_committed(tx_id)
                self._submit_ready(pool, scheduler, run_one, in_flight)
            if not scheduler.is_done():
                raise TransactionError(
                    f"parallel execution stalled with waiting transactions {scheduler.waiting}"
                )
        return [results[tx_id] for tx_id in graph.transaction_ids if tx_id in results]

    @staticmethod
    def _submit_ready(
        pool: ThreadPoolExecutor,
        scheduler: GraphScheduler,
        run_one: Callable[[Transaction], TransactionResult],
        in_flight: Dict[Future, str],
    ) -> None:
        for tx in scheduler.ready_transactions():
            future = pool.submit(run_one, tx)
            in_flight[future] = tx.tx_id
