"""Thread-pool execution of a dependency graph with real threads.

The performance experiments run on the discrete-event simulator (see
DESIGN.md), but the examples and the correctness tests also exercise a real
concurrent executor: transactions run on a ``ThreadPoolExecutor`` as soon as
their dependency-graph predecessors have committed, with per-record locking
deliberately omitted because the graph already orders every conflicting pair.
The final state is checked (in tests) to equal the sequential execution of the
block, demonstrating the paper's central correctness claim.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import TransactionError
from repro.core.dependency_graph import DependencyGraph
from repro.core.execution import GraphScheduler
from repro.core.transaction import Transaction, TransactionResult

ContractRunner = Callable[[Transaction, Mapping[str, object]], TransactionResult]


class _SharedStateView(Mapping):
    """Lock-guarded read view of the shared state dict.

    Replaces the seed's full-dict copy per transaction: contracts see the
    live dict through per-operation locking instead, so a transaction pays
    for the keys it reads, not for the whole state.  Per-key reads are
    consistent for everything a transaction *declared* — the dependency
    graph orders every conflicting pair, so declared keys cannot change
    while the transaction runs.  Iteration/len snapshot the keys under the
    lock, so contracts that scan their view never race the commit loop's
    inserts (no "dict changed size during iteration").

    Reads *outside* the declared read set come with a deliberate relaxation:
    each read is individually atomic, but two undeclared reads may straddle
    another transaction's commit and observe it half-applied — the seed's
    per-transaction snapshot copy was transactionally consistent even for
    undeclared reads (though *which* commits it contained was still
    timing-dependent, so undeclared access voided sequential equivalence
    there too).  The paper's model requires rw-sets to be declared
    (Section III-A); the graph, and therefore this executor, is only sound
    when they are.
    """

    __slots__ = ("_data", "_lock")

    def __init__(self, data: Dict[str, object], lock: threading.Lock) -> None:
        self._data = data
        self._lock = lock

    def get(self, key: str, default: object = None) -> object:
        with self._lock:
            return self._data.get(key, default)

    def __getitem__(self, key: str) -> object:
        with self._lock:
            return self._data[key]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self):
        with self._lock:
            return iter(list(self._data))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ParallelGraphExecutor:
    """Execute one block's dependency graph on a pool of worker threads."""

    def __init__(self, contract_runner: ContractRunner, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._contract_runner = contract_runner
        self._max_workers = max_workers

    def execute(
        self,
        graph: DependencyGraph,
        state: Dict[str, object],
        assigned: Optional[Sequence[str]] = None,
    ) -> List[TransactionResult]:
        """Execute the graph, mutating ``state``; return results in block order.

        ``assigned`` restricts execution to a subset of transaction ids (an
        executor that is only the agent of some applications); by default the
        whole block is executed.  Updates of committed transactions are applied
        to ``state`` under a lock before dependants are released, so every
        transaction observes exactly the writes of its graph predecessors.
        """
        assigned_ids = list(assigned) if assigned is not None else list(graph.transaction_ids)
        scheduler = GraphScheduler(graph, assigned=assigned_ids)
        state_lock = threading.Lock()
        shared_view = _SharedStateView(state, state_lock)
        results: Dict[str, TransactionResult] = {}

        def run_one(tx: Transaction) -> TransactionResult:
            return self._contract_runner(tx, shared_view)

        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            in_flight: Dict[Future, str] = {}
            self._submit_ready(pool, scheduler, run_one, in_flight)
            while in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    tx_id = in_flight.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        # A contract that raises (instead of returning an abort
                        # result) breaks its contract; converting to an aborted
                        # result keeps the scheduler consistent and lets the
                        # rest of the block finish instead of abandoning the
                        # in-flight transactions mid-loop.
                        result = TransactionResult.abort(
                            graph.transaction(tx_id),
                            reason=f"contract raised {type(exc).__name__}: {exc}",
                        )
                    with state_lock:
                        if not result.is_abort:
                            state.update(result.updates)
                    results[tx_id] = result
                    scheduler.mark_executed(tx_id)
                    scheduler.mark_committed(tx_id)
                self._submit_ready(pool, scheduler, run_one, in_flight)
            if not scheduler.is_done():
                raise TransactionError(
                    f"parallel execution stalled with waiting transactions {scheduler.waiting}"
                )
        return [results[tx_id] for tx_id in graph.transaction_ids if tx_id in results]

    @staticmethod
    def _submit_ready(
        pool: ThreadPoolExecutor,
        scheduler: GraphScheduler,
        run_one: Callable[[Transaction], TransactionResult],
        in_flight: Dict[Future, str],
    ) -> None:
        for tx in scheduler.ready_transactions():
            future = pool.submit(run_one, tx)
            in_flight[future] = tx.tx_id
