"""Transactions with pre-declared read/write sets.

Section III-A of the paper assumes that each transaction's read-set ``rho(T)``
and write-set ``omega(T)`` are pre-declared (or obtainable by static
analysis), and that each transaction carries a timestamp ``ts(T)`` consistent
with its position in the block.  :class:`Transaction` captures exactly that,
plus the application the transaction belongs to and an opaque payload that the
application's smart contract interprets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import hashlib

from repro.common.errors import TransactionError
from repro.crypto.hashing import content_hash, encode_object_tuple


class OperationType(str, Enum):
    """A single read or write access to one record."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One access to a single record, used by DGCC-style operation-level graphs."""

    op_type: OperationType
    key: str

    def canonical_tuple(self) -> tuple:
        return ("op", self.op_type.value, self.key)


@dataclass(frozen=True)
class ReadWriteSet:
    """The pre-declared read and write sets of a transaction."""

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()

    @classmethod
    def build(cls, reads: Iterable[str] = (), writes: Iterable[str] = ()) -> "ReadWriteSet":
        """Normalise arbitrary iterables of keys into a ReadWriteSet."""
        return cls(reads=frozenset(reads), writes=frozenset(writes))

    @property
    def keys(self) -> FrozenSet[str]:
        """Every record the transaction touches."""
        return self.reads | self.writes

    def sorted_keys(self) -> Tuple[str, ...]:
        """Every touched record key in sorted order, computed once.

        The hot consumers — endorsement read-version collection and the
        contract replay cache — need a deterministic key order per
        transaction, and the set union + sort is worth not repeating per
        executing peer.
        """
        cached = self.__dict__.get("_sorted_keys")
        if cached is None:
            cached = tuple(sorted(self.reads | self.writes))
            object.__setattr__(self, "_sorted_keys", cached)
        return cached

    def is_read_only(self) -> bool:
        """True if the transaction writes nothing."""
        return not self.writes

    def canonical_tuple(self) -> tuple:
        return ("rwset", tuple(sorted(self.reads)), tuple(sorted(self.writes)))

    def canonical_bytes(self) -> bytes:
        """Canonical encoding, computed once (read/write sets are immutable).

        Transaction copies made by :meth:`Transaction.with_timestamp` and
        :meth:`Transaction.with_submitted_at` share the same ``ReadWriteSet``
        object, so the sorted-set encoding is paid once per logical
        transaction rather than once per copy per consumer.
        """
        cached = self.__dict__.get("_canonical_bytes")
        if cached is None:
            cached = encode_object_tuple(self.canonical_tuple())
            object.__setattr__(self, "_canonical_bytes", cached)
        return cached


@dataclass(frozen=True)
class Transaction:
    """A client request ordered into a block.

    Attributes mirror the paper's notation:

    * ``tx_id`` — unique identifier.
    * ``application`` — the application (smart contract) the transaction is for.
    * ``rw_set`` — ``rho(T)`` and ``omega(T)``.
    * ``timestamp`` — ``ts(T)``; within a block, earlier transactions have
      strictly smaller timestamps.
    * ``payload`` — contract-specific arguments (e.g. transfer amount).
    * ``client`` / ``client_timestamp`` — issuing client and its local
      timestamp, used for exactly-once semantics.
    """

    tx_id: str
    application: str
    rw_set: ReadWriteSet
    timestamp: int = 0
    payload: Mapping[str, Any] = field(default_factory=dict)
    client: str = ""
    client_timestamp: float = 0.0
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.tx_id:
            raise TransactionError("transaction id must be non-empty")
        if not self.application:
            raise TransactionError("transaction application must be non-empty")

    # --------------------------------------------------------------- notation
    @property
    def read_set(self) -> FrozenSet[str]:
        """``rho(T)`` — records read by this transaction."""
        return self.rw_set.reads

    @property
    def write_set(self) -> FrozenSet[str]:
        """``omega(T)`` — records written by this transaction."""
        return self.rw_set.writes

    def operations(self) -> Tuple[Operation, ...]:
        """Flatten the read/write sets into per-record operations."""
        reads = tuple(Operation(OperationType.READ, k) for k in sorted(self.read_set))
        writes = tuple(Operation(OperationType.WRITE, k) for k in sorted(self.write_set))
        return reads + writes

    def with_timestamp(self, timestamp: int) -> "Transaction":
        """Return a copy stamped with its position in the total order.

        Copies go through ``__dict__`` directly (one per ordered transaction,
        on the hot path): the original's fields are already validated, so
        re-running the constructor would only repeat work.  The payload object
        is shared, so its content hash carries over; the full canonical
        encoding does not (it covers the timestamp).
        """
        copy = object.__new__(Transaction)
        state = self.__dict__.copy()
        state["timestamp"] = timestamp
        state.pop("_canonical_bytes", None)
        state.pop("_digest", None)
        copy.__dict__.update(state)
        return copy

    def with_submitted_at(self, submitted_at: float) -> "Transaction":
        """Return a copy recording when the client submitted the transaction.

        Same direct ``__dict__`` copy as :meth:`with_timestamp` (one per
        submission).  ``submitted_at`` is excluded from canonical_tuple(), so
        every canonical memo transfers verbatim to the stamped copy.
        """
        copy = object.__new__(Transaction)
        state = self.__dict__.copy()
        state["submitted_at"] = submitted_at
        copy.__dict__.update(state)
        return copy

    def payload_hash(self) -> str:
        """Content hash of the payload mapping, computed once.

        The payload dict is shared between the copies made by
        :meth:`with_timestamp`/:meth:`with_submitted_at`, which forward the
        memo, so the payload is canonicalised once per logical transaction
        no matter how many stamped copies the pipeline creates.
        """
        cached = self.__dict__.get("_payload_hash")
        if cached is None:
            cached = content_hash(dict(self.payload))
            object.__setattr__(self, "_payload_hash", cached)
        return cached

    def canonical_tuple(self) -> tuple:
        return (
            "tx",
            self.tx_id,
            self.application,
            self.rw_set.canonical_tuple(),
            self.timestamp,
            self.payload_hash(),
            self.client,
            self.client_timestamp,
        )

    def canonical_bytes(self) -> bytes:
        """Canonical encoding of the transaction, computed once.

        The same bytes back the Merkle leaf, the block hash, signatures and
        COMMIT matching; memoising them here (transactions are immutable)
        means the canonical serialisation is paid once per transaction
        instead of once per consumer.
        """
        cached = self.__dict__.get("_canonical_bytes")
        if cached is None:
            cached = encode_object_tuple(self.canonical_tuple())
            object.__setattr__(self, "_canonical_bytes", cached)
        return cached

    def digest(self) -> str:
        """Content hash of the transaction (cached — transactions are immutable)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(self.canonical_bytes()).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


def _freeze_value(value: Any) -> Any:
    """A hashable stand-in for ``value`` that preserves ``==`` semantics.

    Containers are tagged by the equivalence class Python's ``==`` puts them
    in: lists never equal tuples, but sets equal frozensets and dicts compare
    by content, and numeric types compare across int/float/bool — so scalars
    pass through unchanged (their hashes already agree wherever ``==`` does).
    Raises ``TypeError`` for values that are neither plain data nor hashable;
    :meth:`TransactionResult.match_key` falls back to content hashing then.
    """
    if isinstance(value, dict):
        return ("dict", tuple(sorted((k, _freeze_value(v)) for k, v in value.items())))
    if isinstance(value, list):
        return ("list", tuple(_freeze_value(v) for v in value))
    if isinstance(value, tuple):
        return ("tuple", tuple(_freeze_value(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(_freeze_value(v) for v in value))
    hash(value)  # propagate TypeError for unhashable leaves
    return value


ABORTED = "abort"


@dataclass(frozen=True)
class TransactionResult:
    """The outcome of executing a transaction on a smart contract.

    ``updates`` maps record keys to their new values; an aborted transaction
    (e.g. insufficient funds) carries the sentinel status ``"abort"`` and no
    updates, matching the paper's ``(x, "abort")`` pairs in commit messages.
    """

    tx_id: str
    application: str
    updates: Mapping[str, Any] = field(default_factory=dict)
    status: str = "ok"
    executed_by: str = ""
    read_versions: Mapping[str, int] = field(default_factory=dict)
    #: Diagnostic only — excluded from canonical_tuple() and matches() so that
    #: executors whose error messages differ still produce matching votes.
    abort_reason: str = ""

    @property
    def is_abort(self) -> bool:
        """True if the contract rejected the transaction."""
        return self.status == ABORTED

    @classmethod
    def abort(cls, tx: "Transaction", executed_by: str = "", reason: str = "") -> "TransactionResult":
        """Build an abort result for ``tx``."""
        return cls(
            tx_id=tx.tx_id,
            application=tx.application,
            updates={},
            status=ABORTED,
            executed_by=executed_by,
            abort_reason=reason,
        )

    def canonical_tuple(self) -> tuple:
        return (
            "result",
            self.tx_id,
            self.application,
            content_hash(dict(self.updates)),
            self.status,
        )

    def canonical_bytes(self) -> bytes:
        """Canonical encoding of the result, computed once (results are
        immutable); COMMIT messages embed many results, so signing and
        digesting them reuses this."""
        cached = self.__dict__.get("_canonical_bytes")
        if cached is None:
            cached = encode_object_tuple(self.canonical_tuple())
            object.__setattr__(self, "_canonical_bytes", cached)
        return cached

    def matches(self, other: "TransactionResult") -> bool:
        """Two results match if they agree on outcome and state updates.

        The executor identity is deliberately excluded: τ(A) counts *matching*
        results from distinct executors.
        """
        return (
            self.tx_id == other.tx_id
            and self.status == other.status
            and dict(self.updates) == dict(other.updates)
        )

    def match_key(self) -> tuple:
        """A hashable key equal between results iff :meth:`matches` is True.

        Lets Algorithm 3 tally votes in a single pass (dict keyed by this)
        instead of pairwise ``matches()`` comparisons.  Values are frozen by
        :func:`_freeze_value`, which preserves Python ``==`` semantics (so
        ``{"x": 5}`` and ``{"x": 5.0}`` still land in the same tally bucket,
        exactly as pairwise ``matches()`` counted them).

        Raises ``TypeError`` for updates whose values cannot be frozen
        ``==``-faithfully (unhashable leaves, dicts with incomparable mixed
        keys); the vote tally falls back to pairwise :meth:`matches` for
        those, so no approximate key can ever split or merge vote buckets
        differently than the seed's pairwise comparison did.
        """
        cached = self.__dict__.get("_match_key")
        if cached is None:
            cached = (self.tx_id, self.status, _freeze_value(dict(self.updates)))
            object.__setattr__(self, "_match_key", cached)
        return cached


def transaction_digests(transactions: Iterable[Transaction]) -> "list[str]":
    """Content hashes of a whole batch of transactions, one tight loop.

    Block assembly and Merkle verification hash every transaction of a block;
    calling :meth:`Transaction.digest` per leaf pays a ``__dict__`` probe,
    an attribute lookup and a method call each time.  This helper hoists the
    hash constructor and memo probe out of the call chain while writing back
    the same ``_digest`` memo, so individual ``digest()`` calls afterwards
    stay free.
    """
    sha256 = hashlib.sha256
    digests: list = []
    append = digests.append
    for tx in transactions:
        d = tx.__dict__
        cached = d.get("_digest")
        if cached is None:
            cached = sha256(tx.canonical_bytes()).hexdigest()
            object.__setattr__(tx, "_digest", cached)
        append(cached)
    return digests


def validate_block_timestamps(transactions: Iterable[Transaction]) -> None:
    """Check that transaction timestamps are strictly increasing.

    The paper requires ``ts(Ti) < ts(Tj)`` whenever ``Ti`` appears before
    ``Tj`` in a block; orderers stamp transactions accordingly and executors
    can re-validate with this helper.
    """
    previous: Optional[int] = None
    for tx in transactions:
        if previous is not None and tx.timestamp <= previous:
            raise TransactionError(
                f"non-increasing timestamp {tx.timestamp} after {previous} (tx {tx.tx_id})"
            )
        previous = tx.timestamp


def summarize_applications(transactions: Iterable[Transaction]) -> Dict[str, int]:
    """Count how many transactions each application contributes."""
    counts: Dict[str, int] = {}
    for tx in transactions:
        counts[tx.application] = counts.get(tx.application, 0) + 1
    return counts
