"""Cryptographic substrate: hashing, signatures and Merkle trees.

The paper's testbed uses real public-key signatures and TLS identities; what
matters for the reproduction is (a) the authenticity semantics — a Byzantine
node cannot forge a message from a correct node — and (b) the (amortised) CPU
cost of the operations.  This package provides HMAC-based signatures keyed by
a per-node secret registered with a :class:`KeyRegistry`, a SHA-256 content
hash and a binary Merkle tree, all deterministic and dependency-free.
"""

from repro.crypto.hashing import content_hash, hash_chain, hash_pair
from repro.crypto.signatures import KeyPair, KeyRegistry, SignedMessage, sign, verify
from repro.crypto.merkle import MerkleTree

__all__ = [
    "KeyPair",
    "KeyRegistry",
    "MerkleTree",
    "SignedMessage",
    "content_hash",
    "hash_chain",
    "hash_pair",
    "sign",
    "verify",
]
