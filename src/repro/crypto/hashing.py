"""Deterministic content hashing used for the block hash chain.

Blocks, transactions and messages in this library are plain Python objects
(dataclasses, tuples, dicts, strings, numbers).  :func:`content_hash`
canonicalises such an object into a byte string and hashes it with SHA-256, so
two structurally equal objects always hash identically regardless of dict
insertion order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

GENESIS_HASH = "0" * 64


def _canonical_bytes(value: Any) -> bytes:
    """Serialise ``value`` into a canonical byte string.

    Supported values: ``None``, bools, ints, floats, strings, bytes, and
    (arbitrarily nested) lists/tuples, sets/frozensets and dicts of supported
    values.  Objects exposing a ``canonical_tuple()`` method (transactions,
    blocks) are serialised through it; immutable objects that additionally
    expose ``canonical_bytes()`` (returning their complete canonical
    encoding, typically memoised) short-circuit the recursion — that is how
    a transaction's encoding is computed once and reused by the Merkle leaf,
    the block hash, signatures and COMMIT matching.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"T" if value else b"F"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"s" + str(len(encoded)).encode() + b":" + encoded
    if isinstance(value, bytes):
        return b"b" + str(len(value)).encode() + b":" + value
    cached = getattr(value, "canonical_bytes", None)
    if cached is not None:
        return cached()
    if hasattr(value, "canonical_tuple"):
        return b"o" + _canonical_bytes(value.canonical_tuple())
    if isinstance(value, (list, tuple)):
        parts = b"".join(_canonical_bytes(v) for v in value)
        return b"l" + str(len(value)).encode() + b":" + parts
    if isinstance(value, (set, frozenset)):
        ordered = sorted(value, key=lambda v: _canonical_bytes(v))
        return b"e" + _canonical_bytes(list(ordered))
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: _canonical_bytes(kv[0]))
        parts = b"".join(_canonical_bytes(k) + _canonical_bytes(v) for k, v in items)
        return b"d" + str(len(items)).encode() + b":" + parts
    raise TypeError(f"cannot canonically hash value of type {type(value).__name__}")


def canonical_bytes(value: Any) -> bytes:
    """The canonical encoding of ``value`` (what :func:`content_hash` hashes).

    Objects can memoise this (see ``Transaction.canonical_bytes``) so the
    encoding of an immutable object is computed once, no matter how many
    hashes, signatures or Merkle leaves reference it.
    """
    return _canonical_bytes(value)


def encode_object_tuple(value: tuple) -> bytes:
    """Encode an object's ``canonical_tuple()`` with the object tag.

    Helper for classes implementing the ``canonical_bytes()`` memoisation
    protocol: the result is byte-identical to what :func:`canonical_bytes`
    would derive from the object via ``canonical_tuple()``.
    """
    return b"o" + _canonical_bytes(value)


def content_hash(value: Any) -> str:
    """Return the hex SHA-256 hash of the canonical encoding of ``value``."""
    return hashlib.sha256(_canonical_bytes(value)).hexdigest()


def hash_pair(left: str, right: str) -> str:
    """Hash two hex digests together (used by Merkle trees and the chain)."""
    return hashlib.sha256((left + right).encode("ascii")).hexdigest()


def hash_chain(previous_hash: str, value: Any) -> str:
    """Chain ``value`` onto ``previous_hash`` — the ledger's append operation."""
    return hash_pair(previous_hash, content_hash(value))


def combined_hash(values: Iterable[Any]) -> str:
    """Hash an iterable of values in order into a single digest."""
    running = GENESIS_HASH
    for value in values:
        running = hash_chain(running, value)
    return running
