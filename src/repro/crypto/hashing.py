"""Deterministic content hashing used for the block hash chain.

Blocks, transactions and messages in this library are plain Python objects
(dataclasses, tuples, dicts, strings, numbers).  :func:`content_hash`
canonicalises such an object into a byte string and hashes it with SHA-256, so
two structurally equal objects always hash identically regardless of dict
insertion order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

GENESIS_HASH = "0" * 64


#: Memoised encodings of recurring strings (dict keys, node ids, message
#: kinds, record keys).  Bounded so pathological workloads with unbounded
#: distinct strings cannot grow it without limit; once full, new strings are
#: encoded without being cached.
_STR_CACHE: dict = {}
_STR_CACHE_MAX = 1 << 16


def _encode_str(value: str) -> bytes:
    cached = _STR_CACHE.get(value)
    if cached is None:
        encoded = value.encode("utf-8")
        cached = b"s%d:" % len(encoded) + encoded
        if len(_STR_CACHE) < _STR_CACHE_MAX:
            _STR_CACHE[value] = cached
    return cached


def _write_str(value: str, out: bytearray) -> None:
    out += _encode_str(value)


def _write_int(value: int, out: bytearray) -> None:
    out += b"i%d" % value


def _write_float(value: float, out: bytearray) -> None:
    out += b"f"
    out += repr(value).encode()


def _write_bool(value: bool, out: bytearray) -> None:
    out += b"T" if value else b"F"


def _write_none(value: None, out: bytearray) -> None:
    out += b"N"


def _write_bytes(value: bytes, out: bytearray) -> None:
    out += b"b%d:" % len(value)
    out += value


def _write_sequence(value: Any, out: bytearray) -> None:
    out += b"l%d:" % len(value)
    for item in value:
        _write(item, out)


def _write_set(value: Any, out: bytearray) -> None:
    # Sorting the encodings directly orders elements exactly as sorting the
    # elements by their encodings did.
    ordered = sorted(_canonical_bytes(v) for v in value)
    out += b"el%d:" % len(ordered)
    for encoded in ordered:
        out += encoded


def _key_bytes(key: Any) -> bytes:
    if type(key) is str:
        return _encode_str(key)
    return _canonical_bytes(key)


def _write_dict(value: dict, out: bytearray) -> None:
    encoded = [(_key_bytes(k), v) for k, v in value.items()]
    encoded.sort(key=lambda kv: kv[0])
    out += b"d%d:" % len(encoded)
    for key_bytes, item in encoded:
        out += key_bytes
        _write(item, out)


#: Exact-type dispatch for the hot serialisation path; subclasses (e.g. the
#: ``str``-backed ``OperationType`` enum) fall through to :func:`_write_slow`,
#: which replicates the original ``isinstance`` chain byte-for-byte.
_WRITERS = {
    str: _write_str,
    int: _write_int,
    float: _write_float,
    bool: _write_bool,
    type(None): _write_none,
    bytes: _write_bytes,
    list: _write_sequence,
    tuple: _write_sequence,
    set: _write_set,
    frozenset: _write_set,
    dict: _write_dict,
}


def _write_slow(value: Any, out: bytearray) -> None:
    """Encode values missed by exact-type dispatch (subclasses, protocols)."""
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        out += b"i%d" % value
    elif isinstance(value, float):
        out += b"f"
        out += repr(value).encode()
    elif isinstance(value, str):
        _write_str(value, out)
    elif isinstance(value, bytes):
        _write_bytes(value, out)
    else:
        cached = getattr(value, "canonical_bytes", None)
        if cached is not None:
            out += cached()
        elif hasattr(value, "canonical_tuple"):
            out += b"o"
            _write(value.canonical_tuple(), out)
        elif isinstance(value, (list, tuple)):
            _write_sequence(value, out)
        elif isinstance(value, (set, frozenset)):
            _write_set(value, out)
        elif isinstance(value, dict):
            _write_dict(value, out)
        else:
            raise TypeError(
                f"cannot canonically hash value of type {type(value).__name__}"
            )


def _write(value: Any, out: bytearray) -> None:
    writer = _WRITERS.get(type(value))
    if writer is not None:
        writer(value, out)
    else:
        _write_slow(value, out)


def _canonical_bytes(value: Any) -> bytes:
    """Serialise ``value`` into a canonical byte string.

    Supported values: ``None``, bools, ints, floats, strings, bytes, and
    (arbitrarily nested) lists/tuples, sets/frozensets and dicts of supported
    values.  Objects exposing a ``canonical_tuple()`` method (transactions,
    blocks) are serialised through it; immutable objects that additionally
    expose ``canonical_bytes()`` (returning their complete canonical
    encoding, typically memoised) short-circuit the recursion — that is how
    a transaction's encoding is computed once and reused by the Merkle leaf,
    the block hash, signatures and COMMIT matching.

    Internally this writes into a single ``bytearray`` accumulator (no
    intermediate ``bytes`` concatenation) with exact-type dispatch; the
    output encoding is unchanged.
    """
    out = bytearray()
    _write(value, out)
    return bytes(out)


def canonical_bytes(value: Any) -> bytes:
    """The canonical encoding of ``value`` (what :func:`content_hash` hashes).

    Objects can memoise this (see ``Transaction.canonical_bytes``) so the
    encoding of an immutable object is computed once, no matter how many
    hashes, signatures or Merkle leaves reference it.
    """
    return _canonical_bytes(value)


def encode_object_tuple(value: tuple) -> bytes:
    """Encode an object's ``canonical_tuple()`` with the object tag.

    Helper for classes implementing the ``canonical_bytes()`` memoisation
    protocol: the result is byte-identical to what :func:`canonical_bytes`
    would derive from the object via ``canonical_tuple()``.
    """
    return b"o" + _canonical_bytes(value)


def content_hash(value: Any) -> str:
    """Return the hex SHA-256 hash of the canonical encoding of ``value``."""
    return hashlib.sha256(_canonical_bytes(value)).hexdigest()


def hash_pair(left: str, right: str) -> str:
    """Hash two hex digests together (used by Merkle trees and the chain)."""
    return hashlib.sha256((left + right).encode("ascii")).hexdigest()


def hash_chain(previous_hash: str, value: Any) -> str:
    """Chain ``value`` onto ``previous_hash`` — the ledger's append operation."""
    return hash_pair(previous_hash, content_hash(value))


def combined_hash(values: Iterable[Any]) -> str:
    """Hash an iterable of values in order into a single digest."""
    running = GENESIS_HASH
    for value in values:
        running = hash_chain(running, value)
    return running
