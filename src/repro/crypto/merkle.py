"""Binary Merkle tree over transaction hashes.

Blocks carry a Merkle root over their transactions so that executors can
cheaply verify membership, mirroring what production permissioned blockchains
(Fabric, Tendermint) store in their block headers.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import hashlib

from repro.crypto.hashing import GENESIS_HASH, content_hash, hash_pair


#: Memoised roots keyed by the tuple of leaf digests.  In a deployment run
#: the same block's tree is rebuilt by every orderer (pre-prepare digest
#: checks) and every validating peer — identical leaves each time — so the
#: root is computed once and the other rebuilds are a dict hit.  Bounded so
#: long-lived processes cannot grow it without limit.
_ROOT_CACHE: dict = {}
_ROOT_CACHE_MAX = 4096


def merkle_root(leaf_hashes: Sequence[str]) -> str:
    """Root digest over already-computed leaf digests, memoised per leaf set.

    Equivalent to ``MerkleTree.from_leaf_hashes(leaf_hashes).root`` without
    building (or re-building) the intermediate levels; use the tree class
    when proofs are needed.
    """
    key = tuple(leaf_hashes)
    cached = _ROOT_CACHE.get(key)
    if cached is None:
        cached = MerkleTree._build_levels(key)[-1][0]
        if len(_ROOT_CACHE) < _ROOT_CACHE_MAX:
            _ROOT_CACHE[key] = cached
    return cached


class MerkleTree:
    """An immutable binary Merkle tree built over a sequence of leaves."""

    def __init__(self, leaves: Sequence[Any]) -> None:
        self._leaf_hashes: List[str] = [content_hash(leaf) for leaf in leaves]
        self._levels: List[List[str]] = self._build_levels(self._leaf_hashes)

    @classmethod
    def from_leaf_hashes(cls, leaf_hashes: Sequence[str]) -> "MerkleTree":
        """Build a tree over already-computed leaf digests.

        Blocks store each transaction's content hash (``tx.digest()``, which
        is memoised on the transaction), so re-hashing the digest string per
        leaf — what ``MerkleTree(leaves)`` does — would pay the canonical
        encoding again for every block build and every verification.
        """
        tree = cls.__new__(cls)
        tree._leaf_hashes = list(leaf_hashes)
        tree._levels = cls._build_levels(tree._leaf_hashes)
        return tree

    @staticmethod
    def _build_levels(leaf_hashes: Sequence[str]) -> List[List[str]]:
        if not leaf_hashes:
            return [[GENESIS_HASH]]
        # Whole levels are hashed in one comprehension with the sha256
        # constructor hoisted out — a block build pays ~n pair hashes, so the
        # per-call overhead of hash_pair() is measurable at 4096 leaves.  An
        # odd level duplicates its last element (same padding rule as the
        # per-pair loop this replaces); the *stored* level stays unpadded so
        # proof() sees identical sibling indices.
        sha256 = hashlib.sha256
        levels: List[List[str]] = [list(leaf_hashes)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            if len(current) % 2:
                current = current + current[-1:]
            parents = [
                sha256((current[i] + current[i + 1]).encode("ascii")).hexdigest()
                for i in range(0, len(current), 2)
            ]
            levels.append(parents)
        return levels

    @property
    def root(self) -> str:
        """Hex digest of the Merkle root (genesis hash for an empty tree)."""
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def proof(self, index: int) -> List[Tuple[str, str]]:
        """Return the audit path for the leaf at ``index``.

        Each path element is a ``(side, sibling_hash)`` pair where ``side`` is
        ``"left"`` or ``"right"`` indicating where the sibling sits relative to
        the running hash.
        """
        if not 0 <= index < len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        path: List[Tuple[str, str]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index >= len(level):
                sibling_index = position
            side = "right" if sibling_index > position else "left"
            path.append((side, level[sibling_index]))
            position //= 2
        return path

    @staticmethod
    def verify_proof(leaf: Any, proof: Sequence[Tuple[str, str]], root: str) -> bool:
        """Check that ``leaf`` is included under ``root`` via ``proof``."""
        return MerkleTree.verify_proof_hash(content_hash(leaf), proof, root)

    @staticmethod
    def verify_proof_hash(leaf_hash: str, proof: Sequence[Tuple[str, str]], root: str) -> bool:
        """Check a proof for an already-hashed leaf (``from_leaf_hashes`` trees)."""
        running = leaf_hash
        for side, sibling in proof:
            if side == "right":
                running = hash_pair(running, sibling)
            else:
                running = hash_pair(sibling, running)
        return running == root
