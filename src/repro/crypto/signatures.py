"""HMAC-based message signatures with a shared key registry.

The paper assumes pairwise-authenticated channels and signed client requests,
new-block messages and commit messages.  Real deployments use asymmetric
signatures; this module substitutes HMAC-SHA256 keyed by a per-node secret.
Verification goes through the :class:`KeyRegistry`, which plays the role of
the permissioned membership service: only registered identities can produce
verifiable signatures, and a Byzantine node that does not know another node's
secret cannot forge that node's signature.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import SignatureError
from repro.crypto.hashing import content_hash


@dataclass(frozen=True)
class KeyPair:
    """A node identity: public name plus secret signing key."""

    node_id: str
    secret: bytes

    @classmethod
    def generate(cls, node_id: str, seed: Optional[str] = None) -> "KeyPair":
        """Derive a deterministic key pair for ``node_id``.

        The secret is derived from the node id and an optional seed so test
        runs are reproducible; unpredictability is not a goal of this substrate.
        """
        material = f"{node_id}|{seed if seed is not None else 'parblockchain'}"
        return cls(node_id=node_id, secret=hashlib.sha256(material.encode()).digest())


def sign_digest(digest: str, key: KeyPair) -> str:
    """Sign a precomputed content digest with ``key``.

    The hot-path primitive behind :func:`sign`: callers that already hold the
    canonical content hash of their payload (e.g. a
    :meth:`~repro.network.message.Message.unsigned_hash` memo) sign it
    directly, producing exactly the signature :func:`sign` would.
    """
    # One-shot C implementation; produces exactly the bytes (and therefore
    # the hex signature) hmac.new(...).hexdigest() does, without allocating
    # an HMAC object per signature.
    return hmac.digest(key.secret, digest.encode("ascii"), "sha256").hex()


def sign(payload: Any, key: KeyPair) -> str:
    """Sign ``payload`` (any canonically hashable value) with ``key``."""
    return sign_digest(content_hash(payload), key)


def verify(payload: Any, signature: str, key: KeyPair) -> bool:
    """Check that ``signature`` is ``key``'s signature over ``payload``."""
    expected = sign(payload, key)
    return hmac.compare_digest(expected, signature)


@dataclass(frozen=True)
class SignedMessage:
    """A payload together with the signer id and signature over the payload."""

    payload: Any
    signer: str
    signature: str

    def canonical_tuple(self) -> tuple:
        return ("signed", self.signer, self.signature, content_hash(self.payload))


class KeyRegistry:
    """Membership service mapping node identities to their verification keys.

    In a permissioned blockchain every participant is known and identified;
    the registry models that assumption.  Nodes sign with their own key pair
    and any node can verify a signature by looking the signer up here.
    """

    def __init__(self, seed: Optional[str] = None) -> None:
        self._seed = seed
        self._keys: Dict[str, KeyPair] = {}
        #: True once :meth:`trust_channels` declared this deployment fault-free.
        self.trusted = False

    def trust_channels(self) -> None:
        """Declare every channel trusted: skip message signing and verification.

        Sound exactly when no component can inject or tamper with messages —
        i.e. a run with no fault schedule, where every message on the wire was
        built by honest protocol code and verification succeeds by
        construction.  Nodes then send with a placeholder signature and accept
        it without recomputing the HMAC, eliminating the per-message
        canonicalise+hash+sign wall-clock cost; the *simulated* signature
        latencies (:attr:`~repro.common.config.CostModel.signature`) are still
        charged, so simulated results are bit-identical either way.
        """
        self.trusted = True

    def register(self, node_id: str) -> KeyPair:
        """Create (or return the existing) key pair for ``node_id``."""
        if node_id not in self._keys:
            self._keys[node_id] = KeyPair.generate(node_id, self._seed)
        return self._keys[node_id]

    def key_for(self, node_id: str) -> KeyPair:
        """Return the key pair for a registered node."""
        try:
            return self._keys[node_id]
        except KeyError:
            raise SignatureError(f"unknown identity: {node_id!r}") from None

    def known(self, node_id: str) -> bool:
        """True if ``node_id`` has been registered."""
        return node_id in self._keys

    def sign(self, payload: Any, node_id: str) -> SignedMessage:
        """Sign ``payload`` on behalf of ``node_id`` and wrap it."""
        key = self.key_for(node_id)
        return SignedMessage(payload=payload, signer=node_id, signature=sign(payload, key))

    def verify(self, message: SignedMessage) -> bool:
        """Verify a :class:`SignedMessage` against its claimed signer."""
        if not self.known(message.signer):
            return False
        return verify(message.payload, message.signature, self._keys[message.signer])

    def sign_hash(self, digest: str, node_id: str) -> str:
        """Sign a precomputed content digest on behalf of ``node_id``.

        Equivalent to ``self.sign(payload, node_id).signature`` when
        ``digest == content_hash(payload)`` — used by the message hot path,
        where the digest is memoised on the message itself.
        """
        return sign_digest(digest, self.key_for(node_id))

    def verify_hash(self, digest: str, signer: str, signature: str) -> bool:
        """Verify a signature over a precomputed content digest."""
        key = self._keys.get(signer)
        if key is None:
            return False
        return hmac.compare_digest(sign_digest(digest, key), signature)

    def check(self, message: SignedMessage) -> None:
        """Verify a message and raise :class:`SignatureError` if it is invalid."""
        if not self.verify(message):
            raise SignatureError(
                f"invalid signature from {message.signer!r} on {type(message.payload).__name__}"
            )

    def __len__(self) -> int:
        return len(self._keys)
