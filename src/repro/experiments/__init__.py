"""Declarative experiment API: scenario specs, registries, sweep engine.

The paper's evaluation — and every scenario beyond it — is described as data
instead of bespoke benchmark modules:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec` / :class:`ExperimentSpec`,
  a schema-versioned dataclass family loadable from dicts and JSON/TOML files,
  expanding into a deterministic :class:`ExperimentPoint` matrix.
* :mod:`repro.common.registry` (re-exported here) — pluggable registries with
  ``@register_paradigm`` / ``@register_contract`` / ``@register_workload``
  decorators, so third-party components join the spec namespace without
  editing core modules.
* :mod:`repro.experiments.engine` — :class:`SweepEngine`, executing the matrix
  serially or in parallel across processes with identical, deterministic
  results.
* :mod:`repro.experiments.result` — :class:`ExperimentResult` rows with
  provenance (schema versions, spec hash, git revision, engine settings).

Quickstart::

    from repro.experiments import ExperimentSpec, SweepEngine

    spec = ExperimentSpec.from_dict({
        "name": "contention-probe",
        "loads": [1000, 2000],
        "scenarios": [
            {"name": "oxii-20", "paradigm": "OXII", "contention": 0.2},
            {"name": "xov-20", "paradigm": "XOV", "contention": 0.2,
             "system": {"block_cut": {"max_transactions": 100}}},
        ],
    })
    result = SweepEngine().run(spec)
    for row in result.rows:
        print(row.point.scenario, row.metrics.throughput)
"""

from repro.common.registry import (
    Registry,
    contract_registry,
    ensure_builtins,
    paradigm_registry,
    register_contract,
    register_paradigm,
    register_workload,
    workload_registry,
)
from repro.experiments.engine import SweepEngine, execute_point, run_spec
from repro.experiments.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ExperimentRow,
    git_revision,
)
from repro.experiments.spec import (
    SPEC_SCHEMA_VERSION,
    ExperimentPoint,
    ExperimentSpec,
    ScenarioSpec,
    config_overrides,
    single_point_spec,
)

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SPEC_SCHEMA_VERSION",
    "ExperimentPoint",
    "ExperimentResult",
    "ExperimentRow",
    "ExperimentSpec",
    "Registry",
    "ScenarioSpec",
    "SweepEngine",
    "config_overrides",
    "contract_registry",
    "ensure_builtins",
    "execute_point",
    "git_revision",
    "paradigm_registry",
    "register_contract",
    "register_paradigm",
    "register_workload",
    "run_spec",
    "single_point_spec",
    "workload_registry",
]
