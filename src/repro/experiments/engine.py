"""The sweep engine: expand a spec into a point matrix and execute it.

:class:`SweepEngine` turns an :class:`~repro.experiments.spec.ExperimentSpec`
into its deterministic point matrix and runs every point — serially, or in
parallel across worker processes with :mod:`multiprocessing`.  Each point is
an independent simulation with its own seed, so parallel execution returns
bit-identical results in the same deterministic order as a serial run; only
the wall-clock time changes.

On platforms with ``fork`` (Linux, CI) worker processes inherit every
registered paradigm/contract/workload, including ones registered at runtime.
Under ``spawn`` (Windows, macOS default) workers re-import :mod:`repro`, so
third-party components must be registered at import time of an importable
module to be visible to parallel runs.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.registry import ensure_builtins
from repro.experiments.result import ExperimentResult, ExperimentRow, build_provenance
from repro.experiments.spec import ExperimentPoint, ExperimentSpec
from repro.metrics.collector import RunMetrics
from repro.workload.generator import WorkloadConfig


def execute_point(point: ExperimentPoint) -> RunMetrics:
    """Run one fully-resolved experiment point (the multiprocessing worker)."""
    ensure_builtins()
    from repro.paradigms.run import execute_run

    system_config = SystemConfig().with_overrides(**dict(point.system))
    workload_config = WorkloadConfig(
        num_applications=system_config.num_applications
    ).with_overrides(**dict(point.workload))
    return execute_run(
        point.paradigm,
        system_config=system_config,
        workload_config=workload_config,
        offered_load=point.offered_load,
        duration=point.duration,
        warmup_fraction=point.warmup_fraction,
        drain=point.drain,
        generator=point.generator,
        faults=dict(point.faults) or None,
    )


def _pool_context():
    """Prefer ``fork`` so runtime-registered components reach the workers."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SweepEngine:
    """Expands experiment specs and executes their point matrices.

    ``workers`` bounds the process pool for parallel runs (default: the CPU
    count); ``parallel=False`` forces serial in-process execution, which is
    also used automatically when the matrix has a single point or one worker.
    """

    def __init__(self, workers: Optional[int] = None, parallel: bool = True) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self.parallel = parallel

    # ----------------------------------------------------------------- matrix
    def matrix(self, spec: ExperimentSpec) -> List[ExperimentPoint]:
        """The spec's deterministic point matrix (without running anything)."""
        return spec.expand()

    def _effective_workers(self, num_points: int) -> int:
        limit = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(limit, num_points))

    def plan(
        self, spec: ExperimentSpec, parallel: Optional[bool] = None
    ) -> Tuple[List[ExperimentPoint], int, bool]:
        """How ``run`` would execute ``spec``: (points, workers, uses_pool)."""
        points = self.matrix(spec)
        parallel = self.parallel if parallel is None else parallel
        workers = self._effective_workers(len(points))
        use_pool = parallel and workers > 1 and len(points) > 1
        return points, workers, use_pool

    # -------------------------------------------------------------------- run
    def run(
        self,
        spec: ExperimentSpec,
        parallel: Optional[bool] = None,
        progress: Optional[Callable[[ExperimentPoint], None]] = None,
    ) -> ExperimentResult:
        """Execute every point of ``spec`` and return the structured result.

        ``progress`` (serial runs only) is invoked with each point before it
        executes — the CLI uses it for per-point progress lines.
        """
        points, workers, use_pool = self.plan(spec, parallel)

        if use_pool:
            with _pool_context().Pool(processes=workers) as pool:
                metrics = pool.map(execute_point, points, chunksize=1)
        else:
            workers = 1
            metrics = []
            for point in points:
                if progress is not None:
                    progress(point)
                metrics.append(execute_point(point))

        rows = tuple(ExperimentRow(point=p, metrics=m) for p, m in zip(points, metrics))
        provenance = build_provenance(
            spec, parallel=use_pool, workers=workers, points=len(points)
        )
        return ExperimentResult(spec=spec, rows=rows, provenance=provenance)


def run_spec(
    spec: ExperimentSpec,
    workers: Optional[int] = None,
    parallel: bool = True,
) -> ExperimentResult:
    """One-call convenience: ``SweepEngine(workers, parallel).run(spec)``."""
    return SweepEngine(workers=workers, parallel=parallel).run(spec)
