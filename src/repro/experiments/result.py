"""Structured experiment results with provenance.

Every engine run produces one :class:`ExperimentResult`: the spec it ran, one
:class:`ExperimentRow` per executed point (in matrix order, so results are
deterministic regardless of execution parallelism) and a provenance block —
result/spec schema versions, spec content hash, git revision, library
version and engine settings — stamped into every JSON export.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.experiments.spec import ExperimentPoint, ExperimentSpec
from repro.metrics.collector import RunMetrics

#: Version of the result dict/file format produced by this module.
RESULT_SCHEMA_VERSION = 1


def git_revision() -> str:
    """This repository's short git revision, or ``"unknown"`` outside a checkout.

    Guarded against site-packages installs that happen to live *inside some
    other* git repository: the revision is only reported when the enclosing
    checkout actually contains this source tree (``src/repro`` layout), so
    provenance never stamps an unrelated project's commit.
    """
    package_dir = Path(__file__).resolve().parent

    def _git(*args: str) -> str:
        try:
            out = subprocess.run(
                ["git", *args], cwd=package_dir, capture_output=True, text=True, timeout=5
            )
        except (OSError, subprocess.SubprocessError):
            return ""
        return out.stdout.strip() if out.returncode == 0 else ""

    toplevel = _git("rev-parse", "--show-toplevel")
    if not toplevel or not (Path(toplevel) / "src" / "repro").is_dir():
        return "unknown"
    return _git("rev-parse", "--short", "HEAD") or "unknown"


@dataclass(frozen=True)
class ExperimentRow:
    """One executed point: where it sits in the matrix plus its measurements."""

    point: ExperimentPoint
    metrics: RunMetrics

    def as_dict(self) -> Dict[str, Any]:
        """Flat row: the metrics dict plus the point's matrix coordinates."""
        row = self.metrics.as_dict()
        row.update(
            {
                "point_index": self.point.index,
                "scenario": self.point.scenario,
                "generator": self.point.generator,
                "seed": self.point.seed,
                "repeat": self.point.repeat,
                "contention": self.point.workload.get("contention", 0.0),
                "conflict_scope": self.point.workload.get("conflict_scope"),
                "tags": list(self.point.tags),
            }
        )
        return row


@dataclass(frozen=True)
class ExperimentResult:
    """All rows of one engine run, in deterministic matrix order."""

    spec: ExperimentSpec
    rows: Tuple[ExperimentRow, ...]
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def rows_for(self, scenario: str) -> List[ExperimentRow]:
        """Rows of one scenario, in matrix (seed, repeat, load) order."""
        return [row for row in self.rows if row.point.scenario == scenario]

    def metrics_for(self, scenario: str) -> List[RunMetrics]:
        """Just the :class:`RunMetrics` of one scenario's rows."""
        return [row.metrics for row in self.rows_for(scenario)]

    def rows_as_dicts(self) -> List[Dict[str, Any]]:
        """Every row in flat-dict form (one JSON object per point)."""
        return [row.as_dict() for row in self.rows]

    def as_dict(self) -> Dict[str, Any]:
        """Full payload: provenance + spec + rows."""
        return {
            "provenance": dict(self.provenance),
            "spec": self.spec.to_dict(),
            "rows": self.rows_as_dicts(),
        }

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise the result (provenance included); optionally write ``path``."""
        payload = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(payload + "\n", encoding="utf-8")
        return payload


def build_provenance(
    spec: ExperimentSpec,
    *,
    parallel: bool,
    workers: int,
    points: int,
) -> Dict[str, Any]:
    """The provenance block stamped onto an :class:`ExperimentResult`."""
    from repro import __version__

    return {
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "spec_schema_version": spec.schema_version,
        "spec_hash": spec.spec_hash(),
        "git_rev": git_revision(),
        "repro_version": __version__,
        "python_version": platform.python_version(),
        "engine": {"parallel": parallel, "workers": workers, "points": points},
    }
