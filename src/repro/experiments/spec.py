"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes the whole evaluation grid of the paper —
and any scenario beyond it — as data: a list of :class:`ScenarioSpec` entries
(paradigm, workload generator, contention, config overrides, load sweep) plus
run-level knobs (duration, seeds, repeats).  Specs load from Python dicts and
from JSON/TOML files, serialise back to dicts, and expand deterministically
into a flat matrix of :class:`ExperimentPoint` rows for the sweep engine.

The dict form is schema-versioned (``schema_version``) so stored spec files
stay loadable as the format evolves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.config import reject_unknown_fields
from repro.common.errors import ConfigurationError
from repro.workload.generator import ConflictScope

#: Version of the spec dict/file format produced and accepted by this module.
SPEC_SCHEMA_VERSION = 1

def repeat_seed(base_seed: int, repeat: int) -> int:
    """The effective workload seed of repeat ``repeat`` of base seed ``base_seed``.

    Repeat 0 runs with the base seed itself (so single-repeat specs match the
    legacy one-seed behaviour); later repeats derive a decorrelated seed by
    hashing (base_seed, repeat), which, unlike a linear stride, cannot collide
    with another configured base seed's repeats.
    """
    if repeat == 0:
        return base_seed
    digest = hashlib.sha256(f"{base_seed}:{repeat}".encode("utf-8")).hexdigest()
    return int(digest[:12], 16)


def _jsonify(value: Any) -> Any:
    """Spec values as JSON-serialisable primitives (tuples→lists, enums→values)."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def config_overrides(config: Any, default: Any = None) -> Dict[str, Any]:
    """Express a config dataclass as the override dict that recreates it.

    Returns the (nested) fields of ``config`` that differ from ``default``
    (a freshly constructed instance of the same type when omitted) — the
    inverse of ``with_overrides``, used to turn an explicit ``SystemConfig``
    into the ``system`` section of a scenario spec.
    """
    if not dataclasses.is_dataclass(config):
        raise ConfigurationError(f"{type(config).__name__} is not a config dataclass")
    default = default if default is not None else type(config)()
    overrides: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        base = getattr(default, f.name)
        if value == base:
            continue
        if dataclasses.is_dataclass(value) and dataclasses.is_dataclass(base):
            overrides[f.name] = config_overrides(value, base)
        else:
            overrides[f.name] = _jsonify(value)
    return overrides


def _coerce_loads(value: Any, where: str) -> Tuple[float, ...]:
    if value is None:
        return ()
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"{where}: loads must be a list of positive numbers")
    loads = tuple(float(v) for v in value)
    if any(v <= 0 for v in loads):
        raise ConfigurationError(f"{where}: offered loads must be positive")
    return loads


#: Workload keys owned by the scenario/experiment level rather than the
#: ``workload`` overrides dict, so one value can't be specified twice.
_RESERVED_WORKLOAD_KEYS = ("contention", "conflict_scope", "seed")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the evaluation grid.

    ``system`` and ``workload`` are override dicts applied on top of the
    default :class:`~repro.common.config.SystemConfig` /
    :class:`~repro.workload.generator.WorkloadConfig` (nested dicts allowed,
    e.g. ``{"block_cut": {"max_transactions": 100}}``).  ``contention``,
    ``conflict_scope`` and the per-point seed are first-class fields and must
    not appear again inside ``workload``.
    """

    name: str
    paradigm: str = "OXII"
    generator: str = "accounting"
    contention: float = 0.0
    conflict_scope: str = ConflictScope.WITHIN_APPLICATION.value
    #: Offered-load sweep for this scenario; empty → the experiment default.
    loads: Tuple[float, ...] = ()
    system: Mapping[str, Any] = field(default_factory=dict)
    workload: Mapping[str, Any] = field(default_factory=dict)
    #: Fault schedule for adversarial scenarios: ``{"events": [...]}`` for an
    #: explicit :class:`repro.testing.FaultSchedule` dict, or ``{"random":
    #: {"events": N, ...}}`` for one generated deterministically from each
    #: point's seed.  Empty — fault-free (the performance default).
    faults: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("scenario name must be a non-empty string")
        if not self.paradigm:
            raise ConfigurationError(f"scenario {self.name!r}: paradigm must be non-empty")
        object.__setattr__(self, "contention", float(self.contention))
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigurationError(f"scenario {self.name!r}: contention must be in [0, 1]")
        try:
            ConflictScope(self.conflict_scope)
        except ValueError:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown conflict_scope {self.conflict_scope!r}; "
                f"expected one of {[s.value for s in ConflictScope]}"
            ) from None
        object.__setattr__(self, "loads", _coerce_loads(self.loads, f"scenario {self.name!r}"))
        object.__setattr__(self, "tags", tuple(self.tags))
        for section, mapping in (
            ("system", self.system),
            ("workload", self.workload),
            ("faults", self.faults),
        ):
            if not isinstance(mapping, Mapping):
                raise ConfigurationError(
                    f"scenario {self.name!r}: {section} must be a mapping of overrides"
                )
        if self.faults and not ({"events", "random"} & set(self.faults)):
            raise ConfigurationError(
                f"scenario {self.name!r}: faults must carry 'events' or 'random'"
            )
        reserved = [k for k in _RESERVED_WORKLOAD_KEYS if k in self.workload]
        if reserved:
            raise ConfigurationError(
                f"scenario {self.name!r}: {reserved} are scenario/experiment-level fields; "
                "set them outside the workload overrides"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON/TOML-ready) form of the scenario."""
        return {
            "name": self.name,
            "paradigm": self.paradigm,
            "generator": self.generator,
            "contention": self.contention,
            "conflict_scope": self.conflict_scope,
            "loads": list(self.loads),
            "system": _jsonify(dict(self.system)),
            "workload": _jsonify(dict(self.workload)),
            "faults": _jsonify(dict(self.faults)),
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a scenario from its dict form, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"scenario must be a mapping, got {type(data).__name__}")
        reject_unknown_fields("scenario", data, {f.name for f in dataclasses.fields(cls)})
        kwargs = dict(data)
        if isinstance(kwargs.get("conflict_scope"), ConflictScope):
            kwargs["conflict_scope"] = kwargs["conflict_scope"].value
        return cls(**kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, schema-versioned experiment: scenarios × loads × seeds × repeats."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    schema_version: int = SPEC_SCHEMA_VERSION
    description: str = ""
    #: Default offered-load sweep for scenarios that don't set their own.
    loads: Tuple[float, ...] = (1000.0,)
    duration: float = 2.0
    drain: float = 3.0
    warmup_fraction: float = 0.2
    seeds: Tuple[int, ...] = (7,)
    repeats: int = 1
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("experiment name must be a non-empty string")
        if self.schema_version > SPEC_SCHEMA_VERSION or self.schema_version < 1:
            raise ConfigurationError(
                f"unsupported spec schema_version {self.schema_version}; "
                f"this build reads versions 1..{SPEC_SCHEMA_VERSION}"
            )
        scenarios = tuple(
            s if isinstance(s, ScenarioSpec) else ScenarioSpec.from_dict(s) for s in self.scenarios
        )
        if not scenarios:
            raise ConfigurationError(f"experiment {self.name!r} needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate scenario name(s) {duplicates}")
        object.__setattr__(self, "scenarios", scenarios)
        object.__setattr__(self, "loads", _coerce_loads(self.loads, f"experiment {self.name!r}"))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.seeds:
            raise ConfigurationError(f"experiment {self.name!r} needs at least one seed")
        if not float(self.repeats).is_integer():
            raise ConfigurationError(f"repeats must be an integer, got {self.repeats!r}")
        object.__setattr__(self, "repeats", int(self.repeats))
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        # Coerce to float so TOML `duration = 2` and JSON `2.0` are the same
        # spec with the same content hash.
        for numeric in ("duration", "drain", "warmup_fraction"):
            object.__setattr__(self, numeric, float(getattr(self, numeric)))
        if self.duration <= 0 or self.drain < 0:
            raise ConfigurationError("duration must be positive and drain >= 0")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        for scenario in scenarios:
            if not scenario.loads and not self.loads:
                raise ConfigurationError(
                    f"scenario {scenario.name!r} has no loads and the experiment sets no default"
                )

    # -------------------------------------------------------------- serialise
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON/TOML-ready) form of the whole experiment."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "loads": list(self.loads),
            "duration": self.duration,
            "drain": self.drain,
            "warmup_fraction": self.warmup_fraction,
            "seeds": list(self.seeds),
            "repeats": self.repeats,
            "tags": list(self.tags),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build an experiment from its dict form, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"experiment spec must be a mapping, got {type(data).__name__}")
        reject_unknown_fields("experiment", data, {f.name for f in dataclasses.fields(cls)})
        kwargs = dict(data)
        kwargs["scenarios"] = tuple(
            s if isinstance(s, ScenarioSpec) else ScenarioSpec.from_dict(s)
            for s in kwargs.get("scenarios", ())
        )
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".json":
            data = json.loads(path.read_text(encoding="utf-8"))
        elif suffix == ".toml":
            try:
                import tomllib
            except ImportError:  # Python 3.10: stdlib tomllib arrived in 3.11
                try:
                    import tomli as tomllib
                except ImportError:
                    raise ConfigurationError(
                        f"reading {path} needs TOML support: Python 3.11+ (tomllib) or "
                        "the tomli package; alternatively convert the spec to JSON"
                    ) from None
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        else:
            raise ConfigurationError(
                f"unsupported spec file type {suffix!r} for {path}; expected .json or .toml"
            )
        return cls.from_dict(data)

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise the spec to JSON; optionally also write it to ``path``."""
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(payload + "\n", encoding="utf-8")
        return payload

    def spec_hash(self) -> str:
        """Stable content hash of the spec (provenance stamp on every result)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ----------------------------------------------------------------- expand
    def scenario(self, name: str) -> ScenarioSpec:
        """The scenario named ``name``."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise ConfigurationError(
            f"unknown scenario {name!r}; expected one of {[s.name for s in self.scenarios]}"
        )

    def expand(self) -> List["ExperimentPoint"]:
        """The deterministic scenario × seed × repeat × load point matrix."""
        points: List[ExperimentPoint] = []
        for scenario in self.scenarios:
            loads = scenario.loads or self.loads
            for seed in self.seeds:
                for repeat in range(self.repeats):
                    point_seed = repeat_seed(seed, repeat)
                    for load in loads:
                        workload = dict(scenario.workload)
                        workload["contention"] = scenario.contention
                        workload["conflict_scope"] = scenario.conflict_scope
                        workload["seed"] = point_seed
                        points.append(
                            ExperimentPoint(
                                index=len(points),
                                experiment=self.name,
                                scenario=scenario.name,
                                paradigm=scenario.paradigm,
                                generator=scenario.generator,
                                offered_load=load,
                                seed=point_seed,
                                base_seed=seed,
                                repeat=repeat,
                                duration=self.duration,
                                drain=self.drain,
                                warmup_fraction=self.warmup_fraction,
                                system=dict(scenario.system),
                                workload=workload,
                                faults=dict(scenario.faults),
                                tags=self.tags + scenario.tags,
                            )
                        )
        return points


@dataclass(frozen=True)
class ExperimentPoint:
    """One fully-resolved measurement: everything a worker needs, picklable."""

    index: int
    experiment: str
    scenario: str
    paradigm: str
    generator: str
    offered_load: float
    #: Effective workload seed of this point (base seed decorrelated by repeat).
    seed: int
    base_seed: int
    repeat: int
    duration: float
    drain: float
    warmup_fraction: float
    system: Mapping[str, Any]
    workload: Mapping[str, Any]
    faults: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (used by ``bench matrix`` and result rows)."""
        return {
            "index": self.index,
            "experiment": self.experiment,
            "scenario": self.scenario,
            "paradigm": self.paradigm,
            "generator": self.generator,
            "offered_load": self.offered_load,
            "seed": self.seed,
            "base_seed": self.base_seed,
            "repeat": self.repeat,
            "duration": self.duration,
            "drain": self.drain,
            "warmup_fraction": self.warmup_fraction,
            "system": _jsonify(dict(self.system)),
            "workload": _jsonify(dict(self.workload)),
            "faults": _jsonify(dict(self.faults)),
            "tags": list(self.tags),
        }


def single_point_spec(
    name: str,
    paradigm: str,
    offered_load: float,
    contention: float = 0.0,
    conflict_scope: str = ConflictScope.WITHIN_APPLICATION.value,
    system: Optional[Mapping[str, Any]] = None,
    workload: Optional[Mapping[str, Any]] = None,
    duration: float = 2.0,
    drain: float = 20.0,
    warmup_fraction: float = 0.2,
    seed: int = 7,
    generator: str = "accounting",
    tags: Sequence[str] = (),
) -> ExperimentSpec:
    """Convenience: a one-scenario, one-load spec (the ``run_paradigm`` shape).

    Defaults (duration 2.0, drain 20.0, warmup 0.2) mirror ``run_paradigm``'s,
    so the migration documented in docs/experiments.md reproduces identical
    numbers without extra arguments.
    """
    scenario = ScenarioSpec(
        name=name,
        paradigm=paradigm,
        generator=generator,
        contention=contention,
        conflict_scope=conflict_scope,
        loads=(offered_load,),
        system=dict(system or {}),
        workload=dict(workload or {}),
        tags=tuple(tags),
    )
    return ExperimentSpec(
        name=name,
        scenarios=(scenario,),
        loads=(offered_load,),
        duration=duration,
        drain=drain,
        warmup_fraction=warmup_fraction,
        seeds=(seed,),
    )
