"""The blockchain ledger and state substrate.

Each executor peer maintains three components (Section III-B of the paper):
the append-only hash-chained ledger, the blockchain state (datastore) and its
smart contracts.  This package provides the first two:

* :class:`~repro.ledger.ledger.Ledger` — the append-only chain of blocks with
  hash-link verification.
* :class:`~repro.ledger.state.WorldState` — a versioned key-value datastore
  (the single-version store the default dependency-graph rules target).
* :class:`~repro.ledger.mvcc.MultiVersionStore` — a multi-version datastore
  supporting the relaxed dependency rules discussed in Section III-A.
"""

from repro.ledger.ledger import Ledger
from repro.ledger.state import StateSnapshot, VersionedValue, WorldState
from repro.ledger.mvcc import MultiVersionStore

__all__ = [
    "Ledger",
    "MultiVersionStore",
    "StateSnapshot",
    "VersionedValue",
    "WorldState",
]
