"""The append-only, hash-chained block ledger."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.errors import LedgerError
from repro.core.block import Block


class Ledger:
    """An append-only sequence of blocks linked by header hashes.

    Every executor peer holds a copy; :meth:`append` enforces that each new
    block's ``previous_hash`` matches the digest of the current tip and that
    sequence numbers are consecutive, so a fork or a tampered block is rejected
    immediately.
    """

    def __init__(self, genesis: Optional[Block] = None) -> None:
        self._blocks: List[Block] = [genesis if genesis is not None else Block.genesis()]

    # -------------------------------------------------------------- accessors
    @property
    def height(self) -> int:
        """Sequence number of the latest block."""
        return self._blocks[-1].sequence

    @property
    def tip(self) -> Block:
        """The latest block."""
        return self._blocks[-1]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block(self, sequence: int) -> Block:
        """Return the block with the given sequence number."""
        if not 0 <= sequence < len(self._blocks):
            raise LedgerError(f"no block with sequence {sequence} (height={self.height})")
        return self._blocks[sequence]

    def blocks(self) -> List[Block]:
        """A copy of the full chain, genesis first."""
        return list(self._blocks)

    def transaction_count(self) -> int:
        """Total number of transactions recorded in the chain."""
        return sum(len(block) for block in self._blocks)

    def contains_transaction(self, tx_id: str) -> bool:
        """True if any block records a transaction with ``tx_id``."""
        return any(tx.tx_id == tx_id for block in self._blocks for tx in block)

    # ---------------------------------------------------------------- appends
    def append(self, block: Block) -> None:
        """Append ``block`` after verifying its hash link and sequence number."""
        tip = self.tip
        if block.sequence != tip.sequence + 1:
            raise LedgerError(
                f"expected sequence {tip.sequence + 1}, got {block.sequence}"
            )
        if block.previous_hash != tip.digest():
            raise LedgerError(f"block {block.sequence} does not chain onto the current tip")
        if not block.verify_merkle_root():
            raise LedgerError(f"block {block.sequence} has an invalid Merkle root")
        self._blocks.append(block)

    # ------------------------------------------------------------ validation
    def verify_chain(self) -> bool:
        """Re-verify every hash link and Merkle root in the chain."""
        for previous, current in zip(self._blocks, self._blocks[1:]):
            if not current.verify_links_to(previous):
                return False
            if not current.verify_merkle_root():
                return False
        return True
