"""A multi-version key-value store.

Section III-A of the paper notes that the dependency graph generator can be
adapted to a multi-version database: every write creates a new version and a
read is directed to the version that matches the reading transaction's
position in the block.  This store provides exactly that interface and is used
by the MVCC ablation benchmark together with the ``multi_version`` graph mode.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import LedgerError


class MultiVersionStore:
    """Key-value store retaining every committed version of every key."""

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        # key -> parallel lists of (timestamps, values), kept sorted by timestamp
        self._timestamps: Dict[str, List[int]] = {}
        self._values: Dict[str, List[Any]] = {}
        if initial:
            for key, value in initial.items():
                self._timestamps[key] = [0]
                self._values[key] = [value]

    # ---------------------------------------------------------------- queries
    def __contains__(self, key: str) -> bool:
        return key in self._timestamps

    def versions_of(self, key: str) -> List[int]:
        """Timestamps of every version of ``key`` in increasing order."""
        return list(self._timestamps.get(key, []))

    def read(self, key: str, at_timestamp: int) -> Tuple[Any, Optional[int]]:
        """Read the newest version of ``key`` written at or before ``at_timestamp``.

        Returns ``(value, version_timestamp)``; ``(None, None)`` when no
        version is visible at that timestamp.
        """
        timestamps = self._timestamps.get(key)
        if not timestamps:
            return None, None
        index = bisect.bisect_right(timestamps, at_timestamp) - 1
        if index < 0:
            return None, None
        return self._values[key][index], timestamps[index]

    def latest(self, key: str, default: Any = None) -> Any:
        """The most recent committed value of ``key``."""
        values = self._values.get(key)
        return values[-1] if values else default

    def as_dict(self) -> Dict[str, Any]:
        """Latest value of every key."""
        return {key: values[-1] for key, values in self._values.items()}

    # ---------------------------------------------------------------- updates
    def write(self, key: str, value: Any, at_timestamp: int) -> None:
        """Install a new version of ``key`` stamped ``at_timestamp``.

        Versions may be installed out of order (writers of different
        transactions can commit concurrently); reads always see the correct
        version for their timestamp.  Writing two different values at the same
        timestamp is rejected — the dependency graph never allows it.
        """
        timestamps = self._timestamps.setdefault(key, [])
        values = self._values.setdefault(key, [])
        index = bisect.bisect_left(timestamps, at_timestamp)
        if index < len(timestamps) and timestamps[index] == at_timestamp:
            if values[index] != value:
                raise LedgerError(
                    f"conflicting write to {key!r} at timestamp {at_timestamp}"
                )
            return
        timestamps.insert(index, at_timestamp)
        values.insert(index, value)

    def apply_updates(self, updates: Mapping[str, Any], at_timestamp: int) -> None:
        """Install a transaction's whole write set at ``at_timestamp``."""
        for key, value in updates.items():
            self.write(key, value, at_timestamp)

    def prune(self, before_timestamp: int) -> int:
        """Drop versions strictly older than ``before_timestamp`` except the newest visible one.

        Returns the number of versions removed.  Keeping the newest version at
        or before the horizon preserves reads at the horizon.
        """
        removed = 0
        for key, timestamps in self._timestamps.items():
            values = self._values[key]
            index = bisect.bisect_right(timestamps, before_timestamp) - 1
            if index > 0:
                removed += index
                self._timestamps[key] = timestamps[index:]
                self._values[key] = values[index:]
        return removed
