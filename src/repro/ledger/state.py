"""The blockchain world state: a versioned key-value datastore."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple



@dataclass(frozen=True)
class VersionedValue:
    """A value together with the version number of the write that produced it."""

    value: Any
    version: int


class WorldState:
    """A single-version key-value store with per-key version counters.

    Versions increase by one on every committed write to a key, which is what
    the XOV paradigm's validation phase checks read versions against (a
    transaction whose read versions are stale is aborted, exactly like
    Hyperledger Fabric's MVCC read-conflict check).
    """

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._data: Dict[str, VersionedValue] = {}
        if initial:
            for key, value in initial.items():
                self._data[key] = VersionedValue(value=value, version=0)

    # ---------------------------------------------------------------- queries
    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        """Current value of ``key`` (or ``default``)."""
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def version(self, key: str) -> int:
        """Current version of ``key`` (-1 if the key has never been written)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else -1

    def read(self, key: str) -> Tuple[Any, int]:
        """Return ``(value, version)`` for ``key`` (``(None, -1)`` if absent)."""
        entry = self._data.get(key)
        if entry is None:
            return None, -1
        return entry.value, entry.version

    def snapshot(self) -> "StateSnapshot":
        """An immutable snapshot of the current state (used by endorsers)."""
        return StateSnapshot(dict(self._data))

    def as_dict(self) -> Dict[str, Any]:
        """Plain ``key -> value`` view of the state."""
        return {key: entry.value for key, entry in self._data.items()}

    def keys(self) -> Iterable[str]:
        """All keys currently present."""
        return self._data.keys()

    # ---------------------------------------------------------------- updates
    def put(self, key: str, value: Any) -> int:
        """Write ``value`` to ``key``; return the new version number."""
        current = self._data.get(key)
        new_version = (current.version + 1) if current is not None else 0
        self._data[key] = VersionedValue(value=value, version=new_version)
        return new_version

    def apply_updates(self, updates: Mapping[str, Any]) -> None:
        """Apply a transaction's write set atomically."""
        for key, value in updates.items():
            self.put(key, value)

    def copy(self) -> "WorldState":
        """A deep-enough copy for simulating independent replicas."""
        clone = WorldState()
        clone._data = dict(self._data)
        return clone


class StateSnapshot(Mapping[str, Any]):
    """A read-only view of the world state at a point in time.

    Endorsers in the XOV paradigm execute against snapshots and record the
    versions of every key they read; the validation phase later compares those
    versions with the committed state.
    """

    def __init__(self, data: Mapping[str, VersionedValue]) -> None:
        self._data = dict(data)

    def __getitem__(self, key: str) -> Any:
        return self._data[key].value

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get_value(self, key: str, default: Any = None) -> Any:
        """Value of ``key`` in the snapshot, or ``default``."""
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def version(self, key: str) -> int:
        """Version of ``key`` in the snapshot (-1 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else -1

    def read_versions(self, keys: Iterable[str]) -> Dict[str, int]:
        """Versions of every key in ``keys`` (used to build XOV read sets)."""
        return {key: self.version(key) for key in keys}
