"""The blockchain world state: a versioned key-value datastore.

Snapshots are copy-on-write: :meth:`WorldState.snapshot` hands the *live*
entry dict to the :class:`StateSnapshot` in O(1) and marks it frozen; the
first write after that re-materialises a private copy for the world state,
so the snapshot keeps reading the frozen base while the state accumulates
its delta.  XOV endorsers take one snapshot per endorsement, so this turns a
per-endorsement O(state) copy into (at most) one copy per committed block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class VersionedValue:
    """A value together with the version number of the write that produced it.

    Slotted: one is allocated per committed write (and per initial-state key
    per peer), making this one of the highest-volume small objects in a run.
    """

    value: Any
    version: int


class WorldState:
    """A single-version key-value store with per-key version counters.

    Versions increase by one on every committed write to a key, which is what
    the XOV paradigm's validation phase checks read versions against (a
    transaction whose read versions are stale is aborted, exactly like
    Hyperledger Fabric's MVCC read-conflict check).
    """

    __slots__ = ("_data", "_shared")

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        if isinstance(initial, WorldState):
            # Copy-on-write clone: share the entry dict (and every
            # VersionedValue in it) until either side writes.  Deployments
            # seed one WorldState from the initial state and clone it per
            # peer, instead of re-wrapping every key on every node.
            self._data = initial._data
            self._shared = True
            initial._shared = True
            return
        self._data: Dict[str, VersionedValue] = {}
        #: True while ``_data`` is also referenced by a snapshot or a copy;
        #: the next mutation re-materialises a private dict (copy-on-write).
        self._shared = False
        if initial:
            for key, value in initial.items():
                self._data[key] = VersionedValue(value=value, version=0)

    # ---------------------------------------------------------------- queries
    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        """Current value of ``key`` (or ``default``)."""
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def version(self, key: str) -> int:
        """Current version of ``key`` (-1 if the key has never been written)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else -1

    def read(self, key: str) -> Tuple[Any, int]:
        """Return ``(value, version)`` for ``key`` (``(None, -1)`` if absent)."""
        entry = self._data.get(key)
        if entry is None:
            return None, -1
        return entry.value, entry.version

    def snapshot(self) -> "StateSnapshot":
        """An immutable snapshot of the current state (used by endorsers).

        O(1): the snapshot shares the entry dict; the world state copies it
        lazily on its next write, never the snapshot.
        """
        self._shared = True
        return StateSnapshot(self._data, _copy=False)

    def as_dict(self) -> Dict[str, Any]:
        """Plain ``key -> value`` view of the state."""
        return {key: entry.value for key, entry in self._data.items()}

    def keys(self) -> Iterable[str]:
        """All keys present right now (a stable list, not a live view).

        A live dict view would silently detach when copy-on-write rebinds
        the entry dict after a snapshot, so a point-in-time copy is the only
        honest surface here.
        """
        return list(self._data)

    # ---------------------------------------------------------------- updates
    def _own(self) -> Dict[str, VersionedValue]:
        """The entry dict, privately owned (copied here if snapshots share it)."""
        if self._shared:
            self._data = dict(self._data)
            self._shared = False
        return self._data

    def put(self, key: str, value: Any) -> int:
        """Write ``value`` to ``key``; return the new version number."""
        data = self._own()
        current = data.get(key)
        new_version = (current.version + 1) if current is not None else 0
        data[key] = VersionedValue(value=value, version=new_version)
        return new_version

    def apply_updates(self, updates: Mapping[str, Any]) -> None:
        """Apply a transaction's write set atomically (single pass, no per-key
        method dispatch)."""
        if not updates:
            return
        data = self._own()
        get = data.get
        for key, value in updates.items():
            current = get(key)
            data[key] = VersionedValue(
                value=value, version=(current.version + 1) if current is not None else 0
            )

    def apply_results(self, results: Sequence[Any]) -> None:
        """Apply many committed results' updates in one batched pass.

        ``results`` is any sequence of objects exposing ``updates`` (the
        :class:`~repro.core.transaction.TransactionResult` surface); this is
        the ``apply_batch`` hook of Algorithm 3's state updater.  The
        batching win is one callback per COMMIT message; the per-key write
        loop lives in :meth:`apply_updates` alone (``_own`` is O(1) after
        the first call, so delegating per result costs only the call).
        """
        for result in results:
            self.apply_updates(result.updates)

    def copy(self) -> "WorldState":
        """An independent replica of the state (copy-on-write, like snapshots)."""
        clone = WorldState()
        clone._data = self._data
        clone._shared = True
        self._shared = True
        return clone


class StateSnapshot(Mapping[str, Any]):
    """A read-only view of the world state at a point in time.

    Endorsers in the XOV paradigm execute against snapshots and record the
    versions of every key they read; the validation phase later compares those
    versions with the committed state.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, VersionedValue], *, _copy: bool = True) -> None:
        # Public constructions copy (the caller's mapping may mutate later);
        # WorldState.snapshot() passes its own dict with _copy=False and
        # guarantees copy-on-write semantics instead.
        self._data = dict(data) if _copy else data

    def __getitem__(self, key: str) -> Any:
        return self._data[key].value

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get_value(self, key: str, default: Any = None) -> Any:
        """Value of ``key`` in the snapshot, or ``default``."""
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def version(self, key: str) -> int:
        """Version of ``key`` in the snapshot (-1 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else -1

    def read_versions(self, keys: Iterable[str]) -> Dict[str, int]:
        """Versions of every key in ``keys`` (used to build XOV read sets)."""
        data = self._data
        out: Dict[str, int] = {}
        for key in keys:
            entry = data.get(key)
            out[key] = entry.version if entry is not None else -1
        return out
