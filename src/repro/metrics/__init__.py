"""Measurement: latency distributions, throughput and saturation search.

The paper reports peak throughput "just below saturation" and the average
end-to-end latency measured during the steady state of each experiment.  The
collector in this package records per-transaction submission and commit times
at every measurement peer, computes throughput over a steady-state window and
latency percentiles, and the saturation module sweeps the offered load to find
the knee of the latency/throughput curve.
"""

from repro.metrics.collector import CompletionEvent, MetricsCollector, RunMetrics
from repro.metrics.latency import LatencyStats, percentile
from repro.metrics.saturation import LoadSweepResult, find_peak, sweep_offered_load

__all__ = [
    "CompletionEvent",
    "LatencyStats",
    "LoadSweepResult",
    "MetricsCollector",
    "RunMetrics",
    "find_peak",
    "percentile",
    "sweep_offered_load",
]
