"""Per-run measurement: submissions, commits, aborts, throughput, latency."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.metrics.latency import LatencyStats


@dataclass(frozen=True, slots=True)
class CompletionEvent:
    """One transaction finishing at every measurement peer (commit or abort).

    Published to subscribers (:meth:`MetricsCollector.subscribe`) the moment
    the last measurement peer reports — the feedback channel closed-loop
    workload drivers use to route outcomes back to the submitting agent.
    """

    tx_id: str
    completed_at: float
    aborted: bool
    #: Stable abort reason (majority vote across peers, ties broken
    #: lexicographically); "" for committed transactions.
    reason: str
    submitted_at: Optional[float]


@dataclass(frozen=True)
class RunMetrics:
    """The result of one experiment run (one paradigm, one workload, one load)."""

    paradigm: str
    offered_load: float
    submitted: int
    committed: int
    aborted: int
    duration: float
    measurement_window: float
    throughput: float
    latency: LatencyStats
    blocks_committed: int = 0
    messages_sent: int = 0
    extra: Mapping[str, object] = field(default_factory=dict)
    #: Windowed abort counts keyed by stable reason string ("mvcc_conflict",
    #: "insufficient_funds", ...), plus whole-run "dedup_drop" counts merged
    #: in by the run loop.
    abort_reasons: Mapping[str, int] = field(default_factory=dict)

    @property
    def latency_avg(self) -> float:
        """Average end-to-end latency (seconds) of committed transactions."""
        return self.latency.average

    @property
    def abort_rate(self) -> float:
        """Fraction of finished transactions that aborted."""
        finished = self.committed + self.aborted
        return self.aborted / finished if finished else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view for reports and JSON output."""
        return {
            "paradigm": self.paradigm,
            "offered_load": self.offered_load,
            "submitted": self.submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "duration": self.duration,
            "measurement_window": self.measurement_window,
            "throughput": self.throughput,
            "latency": self.latency.as_dict(),
            "blocks_committed": self.blocks_committed,
            "messages_sent": self.messages_sent,
            "abort_rate": self.abort_rate,
            "abort_reasons": dict(self.abort_reasons),
            **dict(self.extra),
        }


class MetricsCollector:
    """Records per-transaction timings across the deployment's measurement peers.

    A transaction is *complete* once every measurement peer has reported a
    commit (or abort) for it; its end-to-end latency is the difference between
    the last such report and the client submission time.  OXII counts only
    executor peers as measurement peers (non-executors are merely informed of
    the state), whereas OX and XOV count every peer, matching how the paper's
    Figure 7(d) experiment distinguishes the two paradigms.
    """

    def __init__(self, measurement_peers: Sequence[str]) -> None:
        self._measurement_peers: Set[str] = set(measurement_peers)
        self._peer_count = len(self._measurement_peers)
        self._submissions: Dict[str, float] = {}
        self._reports: Dict[str, Dict[str, float]] = {}
        self._aborted_votes: Dict[str, Set[str]] = {}
        self._reason_votes: Dict[str, List[str]] = {}
        self._completion_time: Dict[str, float] = {}
        self._completed_aborted: Set[str] = set()
        self._abort_reason_of: Dict[str, str] = {}
        #: Incrementally accumulated completion records, one compact tuple
        #: ``(completed_at, aborted, reason, submitted_at)`` per transaction in
        #: completion order — :meth:`summarise` is a single pass over this list
        #: instead of a re-aggregation across four per-transaction mappings.
        self._completions: List[tuple] = []
        self._subscribers: List[Callable[[CompletionEvent], None]] = []
        self.blocks_committed = 0

    # -------------------------------------------------------------- recording
    def record_submission(self, tx_id: str, time: float) -> None:
        """Record the client submission time of ``tx_id``."""
        self._submissions.setdefault(tx_id, time)

    def subscribe(self, callback: Callable[[CompletionEvent], None]) -> None:
        """Call ``callback`` with a :class:`CompletionEvent` per completed tx."""
        self._subscribers.append(callback)

    @property
    def has_subscribers(self) -> bool:
        """True if any completion subscriber is registered.

        Peers consult this before block-batching their commit loops: a
        subscriber (e.g. the closed-loop agent engine) reacts *at* the
        simulated completion instant, so batching — which records the same
        completion times but from the end of the block — would shift when
        those reactions run.
        """
        return bool(self._subscribers)

    def record_commit(
        self, node_id: str, tx_id: str, time: float, aborted: bool = False, reason: str = ""
    ) -> None:
        """Record that ``node_id`` committed (or aborted) ``tx_id`` at ``time``."""
        if node_id not in self._measurement_peers:
            return
        reports = self._reports.setdefault(tx_id, {})
        if node_id in reports:
            return
        reports[node_id] = time
        if aborted:
            self._aborted_votes.setdefault(tx_id, set()).add(node_id)
            self._reason_votes.setdefault(tx_id, []).append(reason or "abort")
        if len(reports) == self._peer_count and tx_id not in self._completion_time:
            completed_at = max(reports.values())
            self._completion_time[tx_id] = completed_at
            aborts = self._aborted_votes.get(tx_id, set())
            fully_aborted = len(aborts) >= self._peer_count
            stable_reason = ""
            if fully_aborted:
                self._completed_aborted.add(tx_id)
                stable_reason = self._stable_reason(tx_id)
                self._abort_reason_of[tx_id] = stable_reason
            submitted_at = self._submissions.get(tx_id)
            self._completions.append((completed_at, fully_aborted, stable_reason, submitted_at))
            if self._subscribers:
                event = CompletionEvent(
                    tx_id=tx_id,
                    completed_at=completed_at,
                    aborted=fully_aborted,
                    reason=stable_reason,
                    submitted_at=submitted_at,
                )
                for subscriber in self._subscribers:
                    subscriber(event)

    def _stable_reason(self, tx_id: str) -> str:
        """Majority abort reason across peers; ties broken lexicographically."""
        votes = self._reason_votes.get(tx_id, [])
        if not votes:
            return "abort"
        return min(sorted(set(votes)), key=lambda r: (-votes.count(r), r))

    def record_block_commit(self) -> None:
        """Count one block reaching the ledger (reference peer only)."""
        self.blocks_committed += 1

    # ---------------------------------------------------------------- queries
    @property
    def submitted_count(self) -> int:
        """Number of transactions submitted so far."""
        return len(self._submissions)

    @property
    def completed_count(self) -> int:
        """Transactions complete at every measurement peer (committed or aborted)."""
        return len(self._completion_time)

    @property
    def aborted_count(self) -> int:
        """Completed transactions that aborted on every measurement peer."""
        return len(self._completed_aborted)

    @property
    def committed_count(self) -> int:
        """Completed transactions that committed (whole run, not windowed)."""
        return len(self._completion_time) - len(self._completed_aborted)

    def all_complete(self, expected: int) -> bool:
        """True once ``expected`` transactions have completed everywhere."""
        return self.completed_count >= expected

    def completion_times(self) -> Dict[str, float]:
        """Completion time per completed transaction."""
        return dict(self._completion_time)

    def abort_reason_of(self, tx_id: str) -> str:
        """Stable abort reason of a fully aborted transaction ("" otherwise)."""
        return self._abort_reason_of.get(tx_id, "")

    # ------------------------------------------------------------- summarising
    def summarise(
        self,
        paradigm: str,
        offered_load: float,
        warmup: float,
        horizon: float,
        messages_sent: int = 0,
        extra: Optional[Mapping[str, object]] = None,
        extra_abort_reasons: Optional[Mapping[str, int]] = None,
    ) -> RunMetrics:
        """Compute throughput/latency over the steady-state window [warmup, horizon].

        ``extra_abort_reasons`` merges whole-run reason counts the collector
        cannot see itself (e.g. orderer dedup drops) into ``abort_reasons``.
        """
        window = max(horizon - warmup, 1e-9)
        committed_in_window = 0
        aborted_in_window = 0
        abort_reasons: Dict[str, int] = {}
        latencies: List[float] = []
        # Single pass over the incrementally accumulated completion records
        # (kept in completion order, matching the old per-dict traversal).
        for completed_at, was_aborted, reason, submitted_at in self._completions:
            if completed_at < warmup or completed_at > horizon:
                continue
            if was_aborted:
                aborted_in_window += 1
                reason = reason or "abort"
                abort_reasons[reason] = abort_reasons.get(reason, 0) + 1
                continue
            committed_in_window += 1
            if submitted_at is not None:
                latencies.append(completed_at - submitted_at)
        return RunMetrics(
            paradigm=paradigm,
            offered_load=offered_load,
            submitted=self.submitted_count,
            committed=committed_in_window,
            aborted=aborted_in_window,
            duration=horizon,
            measurement_window=window,
            throughput=committed_in_window / window,
            latency=LatencyStats.from_samples(latencies),
            blocks_committed=self.blocks_committed,
            messages_sent=messages_sent,
            extra=dict(extra or {}),
            abort_reasons=dict(
                sorted({**abort_reasons, **dict(extra_abort_reasons or {})}.items())
            ),
        )
