"""Latency statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    Returns 0.0 for an empty sequence so callers can report empty runs without
    special-casing.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (seconds)."""

    count: int
    average: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the summary of ``samples`` (all zeros when empty)."""
        if not samples:
            return cls(count=0, average=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)
        return cls(
            count=len(samples),
            average=sum(samples) / len(samples),
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
            p99=percentile(samples, 0.99),
            maximum=max(samples),
        )

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "count": self.count,
            "average": self.average,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }
