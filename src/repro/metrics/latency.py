"""Latency statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    Returns 0.0 for an empty sequence so callers can report empty runs without
    special-casing.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return _percentile_sorted(sorted(values), fraction)


def _percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """``percentile`` over an already-sorted non-empty sequence."""
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Summary of a latency sample (seconds)."""

    count: int
    average: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the summary of ``samples`` (all zeros when empty)."""
        if not samples:
            return cls(count=0, average=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            # Summed in sample (completion) order, not sorted order: float
            # addition is not associative, and the average must stay
            # bit-identical to the historical insertion-order computation.
            average=sum(samples) / len(ordered),
            p50=_percentile_sorted(ordered, 0.50),
            p95=_percentile_sorted(ordered, 0.95),
            p99=_percentile_sorted(ordered, 0.99),
            maximum=ordered[-1],
        )

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "count": self.count,
            "average": self.average,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }
