"""Offered-load sweeps and peak-throughput (saturation) search.

The paper's methodology: increase the client load until end-to-end throughput
saturates and report the throughput just below saturation together with its
latency.  :func:`sweep_offered_load` reproduces that by running an experiment
at increasing offered loads and detecting the knee where measured throughput
stops tracking the offered load (or latency explodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.metrics.collector import RunMetrics

RunFunction = Callable[[float], RunMetrics]


@dataclass(frozen=True)
class LoadSweepResult:
    """Every point of a load sweep plus the detected peak."""

    points: Sequence[RunMetrics]
    peak: RunMetrics

    @property
    def peak_throughput(self) -> float:
        """Throughput at the detected saturation knee."""
        return self.peak.throughput

    @property
    def peak_latency(self) -> float:
        """Average latency at the detected saturation knee."""
        return self.peak.latency_avg

    def throughput_series(self) -> List[float]:
        """Measured throughput at every swept load."""
        return [p.throughput for p in self.points]

    def latency_series(self) -> List[float]:
        """Average latency at every swept load."""
        return [p.latency_avg for p in self.points]


def find_peak(
    points: Sequence[RunMetrics],
    efficiency_threshold: float = 0.85,
    latency_ceiling: Optional[float] = None,
) -> LoadSweepResult:
    """Locate the saturation knee among already-measured sweep points.

    A point is *saturated* when its measured throughput falls below
    ``efficiency_threshold`` of the offered load, or when its average latency
    exceeds ``latency_ceiling`` (if given).  The peak is the highest-throughput
    point that is not saturated; if every point saturates, the
    highest-throughput point overall is reported (the system's ceiling).
    """
    if not points:
        raise ValueError("at least one measured point is required")
    unsaturated: List[RunMetrics] = []
    for point in points:
        efficient = point.throughput >= efficiency_threshold * point.offered_load
        latency_ok = latency_ceiling is None or point.latency_avg <= latency_ceiling
        if efficient and latency_ok:
            unsaturated.append(point)
    candidates = unsaturated if unsaturated else list(points)
    peak = max(candidates, key=lambda p: p.throughput)
    return LoadSweepResult(points=tuple(points), peak=peak)


def sweep_offered_load(
    run: RunFunction,
    loads: Sequence[float],
    efficiency_threshold: float = 0.85,
    latency_ceiling: Optional[float] = None,
) -> LoadSweepResult:
    """Run ``run(load)`` for each load and locate the saturation knee."""
    if not loads:
        raise ValueError("at least one offered load is required")
    points: List[RunMetrics] = [run(load) for load in loads]
    return find_peak(points, efficiency_threshold, latency_ceiling)
