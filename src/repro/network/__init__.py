"""Simulated asynchronous network with authenticated point-to-point channels.

Every pair of nodes is connected by a bi-directional channel (Section III of
the paper).  The network delivers messages after a latency drawn from the
:class:`~repro.network.topology.Topology` (LAN within a data center, WAN
across data centers, plus deterministic jitter), optionally degraded by a
:class:`~repro.network.faults.FaultPlan` (crashed nodes, dropped or delayed
links, partitions).  Channels are pairwise authenticated: the transport stamps
the true sender on every envelope, so a Byzantine node cannot forge a message
from a correct node.
"""

from repro.network.backend import BaseTransport
from repro.network.message import Envelope, Message
from repro.network.topology import Topology
from repro.network.transport import Network, NetworkInterface
from repro.network.faults import FaultPlan

__all__ = [
    "BaseTransport",
    "Envelope",
    "FaultPlan",
    "Message",
    "Network",
    "NetworkInterface",
    "Topology",
]
