"""The transport backend contract shared by the simulated and real networks.

Every backend moves :class:`~repro.network.message.Message` objects between
registered node interfaces and keeps the same conservation-law accounting:

``messages_sent + messages_duplicated ==
  messages_delivered + messages_dropped + messages_discarded_crash
  + messages_in_flight``

* ``messages_sent`` counts every :meth:`send` attempt (a drop is still an
  attempted send — the sender paid for it).
* ``messages_duplicated`` counts network-injected at-least-once duplicates
  (scheduled deliveries that no ``send`` call produced).
* ``messages_dropped`` counts sends the fault plan dropped before scheduling.
* ``messages_discarded_crash`` counts scheduled deliveries discarded because
  the recipient was crashed at delivery time.
* ``messages_in_flight`` counts deliveries scheduled but not yet resolved.

:meth:`reconcile` asserts the identity; the fault battery calls it after
every scenario so a backend can never silently leak or invent messages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import NetworkError
from repro.network.message import Message
from repro.simulation import Environment, Event, Store


class NetworkInterface:
    """A node's handle on the network: its inbox plus send helpers.

    The interface is backend-agnostic: nodes written against it run unchanged
    over the simulated transport and the asyncio backends.
    """

    __slots__ = ("_network", "node_id", "inbox")

    def __init__(self, network: "BaseTransport", node_id: str) -> None:
        self._network = network
        self.node_id = node_id
        self.inbox: Store = Store(network.env)

    def send(self, recipient: str, message: Message, payload_bytes: Optional[int] = None) -> None:
        """Send ``message`` to ``recipient`` (fire-and-forget)."""
        self._network.send(self.node_id, recipient, message, payload_bytes)

    def multicast(
        self, recipients: Iterable[str], message: Message, payload_bytes: Optional[int] = None
    ) -> None:
        """Send ``message`` to every node in ``recipients``."""
        self._network.multicast(self.node_id, recipients, message, payload_bytes)

    def receive(self) -> Event:
        """Event that fires with the next :class:`Envelope` in the inbox."""
        return self.inbox.get()

    def pending(self) -> int:
        """Number of envelopes waiting in the inbox."""
        return len(self.inbox)


class BaseTransport:
    """Registration, fan-out helpers and conservation-law accounting.

    Concrete backends implement :meth:`send` (and whatever delivery machinery
    they need) and call the ``_account_*`` helpers at the corresponding
    lifecycle points so the :meth:`reconcile` identity holds by construction.
    """

    #: Phase label picked up by the profiler for delivery callbacks.
    profile_phase = "transport"

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._interfaces: Dict[str, NetworkInterface] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_duplicated = 0
        self.messages_dropped = 0
        self.messages_discarded_crash = 0
        self.messages_in_flight = 0
        self.bytes_sent = 0

    # ----------------------------------------------------------- registration
    def register(self, node_id: str, datacenter: Optional[str] = None) -> NetworkInterface:
        """Attach ``node_id`` to the network and return its interface."""
        if node_id in self._interfaces:
            raise NetworkError(f"node {node_id!r} is already registered")
        self._place(node_id, datacenter)
        interface = NetworkInterface(self, node_id)
        self._interfaces[node_id] = interface
        return interface

    def _place(self, node_id: str, datacenter: Optional[str]) -> None:
        """Hook for backends with a placement notion (topology datacenters)."""

    def interface(self, node_id: str) -> NetworkInterface:
        """Return the interface of a registered node."""
        try:
            return self._interfaces[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> List[str]:
        """All registered node ids."""
        return list(self._interfaces)

    # ------------------------------------------------------------------ sends
    def send(
        self,
        sender: str,
        recipient: str,
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        """Deliver ``message`` from ``sender`` to ``recipient`` asynchronously."""
        raise NotImplementedError

    def multicast(
        self,
        sender: str,
        recipients: Iterable[str],
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        """Send ``message`` from ``sender`` to every node in ``recipients``."""
        for recipient in recipients:
            if recipient == sender:
                continue
            self.send(sender, recipient, message, payload_bytes)

    def broadcast(self, sender: str, message: Message, payload_bytes: Optional[int] = None) -> None:
        """Send ``message`` to every registered node except the sender."""
        self.multicast(sender, self.node_ids(), message, payload_bytes)

    # ------------------------------------------------------------- accounting
    def counters(self) -> Dict[str, int]:
        """The accounting counters as a plain dict (metrics / debugging)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_duplicated": self.messages_duplicated,
            "messages_dropped": self.messages_dropped,
            "messages_discarded_crash": self.messages_discarded_crash,
            "messages_in_flight": self.messages_in_flight,
            "bytes_sent": self.bytes_sent,
        }

    def reconcile(self) -> Dict[str, int]:
        """Assert the message conservation identity and return the counters.

        ``sent + duplicated == delivered + dropped + discarded_crash +
        in_flight`` must hold at any instant; a violation means the backend
        lost or invented a message without accounting for it.
        """
        counters = self.counters()
        produced = self.messages_sent + self.messages_duplicated
        resolved = (
            self.messages_delivered
            + self.messages_dropped
            + self.messages_discarded_crash
            + self.messages_in_flight
        )
        if produced != resolved:
            raise NetworkError(
                "transport accounting identity violated: "
                f"sent({self.messages_sent}) + duplicated({self.messages_duplicated}) "
                f"!= delivered({self.messages_delivered}) + dropped({self.messages_dropped}) "
                f"+ discarded_crash({self.messages_discarded_crash}) "
                f"+ in_flight({self.messages_in_flight})"
            )
        return counters
