"""Fault injection for the simulated network.

The consensus substrate tolerates crash and Byzantine faults; this module
provides the knobs the tests use to exercise those code paths: crashing nodes,
dropping a fraction of messages on selected links, adding extra delay, and
partitioning the network into isolated groups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple


@dataclass(slots=True)
class LinkFault:
    """Degradation applied to a single directed link.

    ``duplicate_probability`` models at-least-once delivery: a message that is
    not dropped may be delivered a second time.  ``reorder_window`` lifts the
    transport's per-link FIFO guarantee on the link and adds a uniform random
    extra delay in ``[0, reorder_window]`` to each message, so a later message
    can overtake an earlier one.
    """

    drop_probability: float = 0.0
    extra_delay: float = 0.0
    duplicate_probability: float = 0.0
    reorder_window: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if self.extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        if self.reorder_window < 0:
            raise ValueError("reorder_window must be >= 0")


@dataclass
class FaultPlan:
    """A mutable description of the faults currently active in the network."""

    seed: int = 13
    crashed: Set[str] = field(default_factory=set)
    link_faults: Dict[Tuple[str, str], LinkFault] = field(default_factory=dict)
    partitions: Optional[Tuple[FrozenSet[str], ...]] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ nodes
    def crash(self, node_id: str) -> None:
        """Crash ``node_id``: it neither sends nor receives from now on."""
        self.crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        """Recover a previously crashed node."""
        self.crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        """True if ``node_id`` is currently crashed."""
        return node_id in self.crashed

    # ------------------------------------------------------------------ links
    def degrade_link(
        self,
        sender: str,
        recipient: str,
        drop_probability: float = 0.0,
        extra_delay: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_window: float = 0.0,
    ) -> None:
        """Apply drop/delay/duplication/reordering on the directed link."""
        self.link_faults[(sender, recipient)] = LinkFault(
            drop_probability, extra_delay, duplicate_probability, reorder_window
        )

    def heal_link(self, sender: str, recipient: str) -> None:
        """Remove any degradation from the directed link."""
        self.link_faults.pop((sender, recipient), None)

    # ------------------------------------------------------------- partitions
    def partition(self, *groups: Set[str]) -> None:
        """Split the network: messages only flow within a group."""
        self.partitions = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        """Remove the partition."""
        self.partitions = None

    # --------------------------------------------------------------- verdicts
    def should_drop(self, sender: str, recipient: str) -> bool:
        """Decide whether a message on this link is lost."""
        if sender in self.crashed or recipient in self.crashed:
            return True
        if self.partitions is not None:
            same_group = any(sender in g and recipient in g for g in self.partitions)
            if not same_group:
                return True
        fault = self.link_faults.get((sender, recipient))
        if fault and fault.drop_probability > 0:
            return self._rng.random() < fault.drop_probability
        return False

    def extra_delay(self, sender: str, recipient: str) -> float:
        """Additional (fixed) delay injected on this link."""
        fault = self.link_faults.get((sender, recipient))
        return fault.extra_delay if fault else 0.0

    def should_duplicate(self, sender: str, recipient: str) -> bool:
        """Decide whether a delivered message on this link is delivered twice."""
        fault = self.link_faults.get((sender, recipient))
        if fault and fault.duplicate_probability > 0:
            return self._rng.random() < fault.duplicate_probability
        return False

    def reorder_delay(self, sender: str, recipient: str) -> Optional[float]:
        """Random extra delay for a reordering link, or ``None`` when FIFO.

        A non-``None`` return both adds the drawn delay and tells the
        transport to skip its per-link FIFO clamp for this message.
        """
        fault = self.link_faults.get((sender, recipient))
        if fault and fault.reorder_window > 0:
            return self._rng.uniform(0.0, fault.reorder_window)
        return None

    def any_active(self) -> bool:
        """True while any crash, link fault or partition is in effect."""
        return bool(self.crashed or self.link_faults or self.partitions is not None)
