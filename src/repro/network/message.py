"""Message and envelope types carried by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.crypto.hashing import content_hash


@dataclass(frozen=True)
class Message:
    """An application-level message.

    ``kind`` is the protocol message type (``REQUEST``, ``NEWBLOCK``,
    ``COMMIT``, ``PREPARE`` ...), ``body`` is an arbitrary payload dictionary
    and ``signature`` optionally carries the sender's signature over the body.
    """

    kind: str
    body: Mapping[str, Any] = field(default_factory=dict)
    signature: str = ""

    def canonical_tuple(self) -> tuple:
        return ("msg", self.kind, content_hash(dict(self.body)), self.signature)

    def with_signature(self, signature: str) -> "Message":
        """Return a copy carrying ``signature``."""
        return Message(kind=self.kind, body=self.body, signature=signature)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus transport metadata.

    The ``sender`` field is stamped by the transport itself (not by the
    sending node), modelling pairwise-authenticated channels: receivers can
    trust that ``sender`` really originated the envelope.
    """

    sender: str
    recipient: str
    message: Message
    sent_at: float
    delivered_at: float
    size_bytes: int

    @property
    def delay(self) -> float:
        """Network delay experienced by this envelope."""
        return self.delivered_at - self.sent_at

    def canonical_tuple(self) -> tuple:
        return (
            "envelope",
            self.sender,
            self.recipient,
            self.message.canonical_tuple(),
            self.sent_at,
        )
