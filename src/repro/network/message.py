"""Message and envelope types carried by the simulated network.

Both types are deliberately lean: they are the highest-volume small objects
in an end-to-end run (one :class:`Envelope` per delivered hop), so they use
``__slots__`` and the :class:`Message` memoises the canonical hash of its
body.  A multicast shares one :class:`Message` instance across every
recipient, which means the body — often containing a whole block — is
canonicalised exactly once per message instead of once per hop (signing) plus
once per recipient (verification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.crypto.hashing import content_hash


@dataclass(frozen=True, slots=True)
class Message:
    """An application-level message.

    ``kind`` is the protocol message type (``REQUEST``, ``NEWBLOCK``,
    ``COMMIT``, ``PREPARE`` ...), ``body`` is an arbitrary payload dictionary
    and ``signature`` optionally carries the sender's signature over the body.

    The body must not be mutated after the message is constructed: its
    canonical hash is computed on first use and cached (and shared with the
    signed copy produced by :meth:`with_signature`).
    """

    kind: str
    body: Mapping[str, Any] = field(default_factory=dict)
    signature: str = ""
    #: Lazily computed canonical hash of ``body`` (see :meth:`body_hash`).
    _body_hash: Optional[str] = field(
        default=None, compare=False, repr=False, hash=False
    )
    #: Lazily computed hash of :meth:`unsigned_tuple` (see :meth:`unsigned_hash`).
    _unsigned_hash: Optional[str] = field(
        default=None, compare=False, repr=False, hash=False
    )

    def body_hash(self) -> str:
        """Canonical content hash of the body, computed once and cached."""
        cached = self._body_hash
        if cached is None:
            body = self.body
            if type(body) is not dict:
                body = dict(body)
            cached = content_hash(body)
            object.__setattr__(self, "_body_hash", cached)
        return cached

    def unsigned_hash(self) -> str:
        """Content hash of :meth:`unsigned_tuple`, computed once and cached.

        Exactly what the sender signs and every recipient verifies; since a
        multicast shares one message instance, caching it here means the
        signed tuple is canonicalised once per message rather than once per
        signature check.
        """
        cached = self._unsigned_hash
        if cached is None:
            cached = content_hash(self.unsigned_tuple())
            object.__setattr__(self, "_unsigned_hash", cached)
        return cached

    def canonical_tuple(self) -> tuple:
        return ("msg", self.kind, self.body_hash(), self.signature)

    def unsigned_tuple(self) -> tuple:
        """The canonical tuple of the unsigned form of this message.

        This is what senders sign and receivers verify — computing it here
        (rather than constructing an unsigned :class:`Message` copy) reuses
        the memoised body hash on the verification path.
        """
        return ("msg", self.kind, self.body_hash(), "")

    def with_signature(self, signature: str) -> "Message":
        """Return a copy carrying ``signature`` (sharing the cached hashes)."""
        return Message(
            kind=self.kind,
            body=self.body,
            signature=signature,
            _body_hash=self._body_hash,
            _unsigned_hash=self._unsigned_hash,
        )


#: Signature placeholder on messages sent over trusted channels (see
#: :meth:`repro.crypto.signatures.KeyRegistry.trust_channels`).  Non-empty so
#: the ``if not message.signature`` guard on every verify path still rejects
#: explicitly unsigned messages.
TRUSTED_SIGNATURE = "trusted-channel"


def build_trusted(kind: str, body: Mapping[str, Any]) -> Message:
    """Construct a message for a trusted (fault-free) deployment.

    Skips body canonicalisation and signing entirely — in a run with no fault
    schedule every message is built by honest code, so verification would
    succeed by construction and the signature bytes are observable nowhere
    (not in ledgers, metrics or fingerprints).  The hashes stay lazily
    computable should anything ask for them.
    """
    return Message(kind=kind, body=body, signature=TRUSTED_SIGNATURE)


def build_signed(kind: str, body: Mapping[str, Any], sign) -> Message:
    """Construct a signed :class:`Message` in a single allocation.

    ``sign`` maps the unsigned hash (a hex digest) to a signature string.
    Equivalent to ``Message(kind, body)`` + signing + :meth:`Message.with_signature`,
    but skips the intermediate unsigned copy — this sits on the hot path of
    every protocol send.
    """
    body_hash = content_hash(body if type(body) is dict else dict(body))
    unsigned_hash = content_hash(("msg", kind, body_hash, ""))
    return Message(
        kind=kind,
        body=body,
        signature=sign(unsigned_hash),
        _body_hash=body_hash,
        _unsigned_hash=unsigned_hash,
    )


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight: payload plus transport metadata.

    The ``sender`` field is stamped by the transport itself (not by the
    sending node), modelling pairwise-authenticated channels: receivers can
    trust that ``sender`` really originated the envelope.
    """

    sender: str
    recipient: str
    message: Message
    sent_at: float
    delivered_at: float
    size_bytes: int

    @property
    def delay(self) -> float:
        """Network delay experienced by this envelope."""
        return self.delivered_at - self.sent_at

    def canonical_tuple(self) -> tuple:
        return (
            "envelope",
            self.sender,
            self.recipient,
            self.message.canonical_tuple(),
            self.sent_at,
        )
