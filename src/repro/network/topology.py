"""Data-center placement and link-latency model.

The paper's scalability experiments (Figure 7) move one group of nodes at a
time from AWS US-West to AWS Tokyo.  The :class:`Topology` captures exactly
that: every node is assigned to a named data center, intra-DC links use the
LAN latency and inter-DC links use the WAN latency, with a small deterministic
jitter so message arrivals are not artificially synchronised.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional

from repro.common.config import LatencyConfig
from repro.common.errors import NetworkError

NEAR_DC = "us-west"
FAR_DC = "ap-tokyo"


class Topology:
    """Maps node ids to data centers and computes per-message link delays."""

    def __init__(
        self,
        latency: Optional[LatencyConfig] = None,
        placements: Optional[Mapping[str, str]] = None,
        seed: int = 7,
    ) -> None:
        self.latency = latency or LatencyConfig()
        self._placements: Dict[str, str] = dict(placements or {})
        self._rng = random.Random(seed)

    # ------------------------------------------------------------- placement
    def place(self, node_id: str, datacenter: str = NEAR_DC) -> None:
        """Assign ``node_id`` to ``datacenter``."""
        self._placements[node_id] = datacenter

    def place_all(self, node_ids: Iterable[str], datacenter: str = NEAR_DC) -> None:
        """Assign every node in ``node_ids`` to ``datacenter``."""
        for node_id in node_ids:
            self.place(node_id, datacenter)

    def datacenter_of(self, node_id: str) -> str:
        """Data center of ``node_id`` (defaults to the near DC if unplaced)."""
        return self._placements.get(node_id, NEAR_DC)

    def nodes(self) -> Dict[str, str]:
        """Copy of the node → datacenter mapping."""
        return dict(self._placements)

    # ---------------------------------------------------------------- latency
    def base_latency(self, sender: str, recipient: str) -> float:
        """One-way propagation delay between two nodes, without jitter."""
        if sender == recipient:
            return 0.0
        if self.datacenter_of(sender) == self.datacenter_of(recipient):
            return self.latency.lan
        return self.latency.wan

    def message_delay(self, sender: str, recipient: str, payload_bytes: int = 0) -> float:
        """Total delay for one message: propagation + serialisation + jitter."""
        if sender == recipient:
            return 0.0
        base = self.base_latency(sender, recipient)
        transfer = self.latency.transfer_delay(payload_bytes)
        jitter_span = base * self.latency.jitter_fraction
        jitter = self._rng.uniform(-jitter_span, jitter_span) if jitter_span > 0 else 0.0
        delay = base + transfer + jitter
        if delay < 0:
            raise NetworkError(f"negative link delay computed: {delay}")
        return delay

    # ------------------------------------------------------------- factories
    @classmethod
    def single_datacenter(
        cls, node_ids: Iterable[str], latency: Optional[LatencyConfig] = None, seed: int = 7
    ) -> "Topology":
        """All nodes in the near data center (the paper's default setup)."""
        topology = cls(latency=latency, seed=seed)
        topology.place_all(node_ids, NEAR_DC)
        return topology

    @classmethod
    def two_datacenters(
        cls,
        near_nodes: Iterable[str],
        far_nodes: Iterable[str],
        latency: Optional[LatencyConfig] = None,
        seed: int = 7,
    ) -> "Topology":
        """Figure-7 style topology with one group moved to the far DC."""
        topology = cls(latency=latency, seed=seed)
        topology.place_all(near_nodes, NEAR_DC)
        topology.place_all(far_nodes, FAR_DC)
        return topology
