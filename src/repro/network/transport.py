"""The simulated transport: registration, unicast, multicast and inboxes."""

from __future__ import annotations

from functools import partial
from typing import Dict, Iterable, List, Optional

from repro.common.config import LatencyConfig
from repro.common.errors import NetworkError
from repro.network.faults import FaultPlan
from repro.network.message import Envelope, Message
from repro.network.topology import Topology
from repro.simulation import Environment, Event, Store


class NetworkInterface:
    """A node's handle on the network: its inbox plus send helpers."""

    def __init__(self, network: "Network", node_id: str) -> None:
        self._network = network
        self.node_id = node_id
        self.inbox: Store = Store(network.env)

    def send(self, recipient: str, message: Message, payload_bytes: Optional[int] = None) -> None:
        """Send ``message`` to ``recipient`` (fire-and-forget)."""
        self._network.send(self.node_id, recipient, message, payload_bytes)

    def multicast(
        self, recipients: Iterable[str], message: Message, payload_bytes: Optional[int] = None
    ) -> None:
        """Send ``message`` to every node in ``recipients``."""
        self._network.multicast(self.node_id, recipients, message, payload_bytes)

    def receive(self) -> Event:
        """Event that fires with the next :class:`Envelope` in the inbox."""
        return self.inbox.get()

    def pending(self) -> int:
        """Number of envelopes waiting in the inbox."""
        return len(self.inbox)


class Network:
    """Point-to-point message delivery over a :class:`Topology`.

    Messages are delivered to each recipient's inbox after the topology's
    computed delay; the optional :class:`FaultPlan` can drop or further delay
    them.  Delivery per link is FIFO: the transport never reorders two
    messages sent over the same directed link (it enforces this by tracking
    the last scheduled delivery time per link).
    """

    def __init__(
        self,
        env: Environment,
        topology: Optional[Topology] = None,
        faults: Optional[FaultPlan] = None,
        latency: Optional[LatencyConfig] = None,
    ) -> None:
        self.env = env
        self.topology = topology or Topology(latency=latency)
        self.faults = faults or FaultPlan()
        self.latency = self.topology.latency
        self._interfaces: Dict[str, NetworkInterface] = {}
        self._last_delivery: Dict[tuple, float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0

    # ----------------------------------------------------------- registration
    def register(self, node_id: str, datacenter: Optional[str] = None) -> NetworkInterface:
        """Attach ``node_id`` to the network and return its interface."""
        if node_id in self._interfaces:
            raise NetworkError(f"node {node_id!r} is already registered")
        if datacenter is not None:
            self.topology.place(node_id, datacenter)
        interface = NetworkInterface(self, node_id)
        self._interfaces[node_id] = interface
        return interface

    def interface(self, node_id: str) -> NetworkInterface:
        """Return the interface of a registered node."""
        try:
            return self._interfaces[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> List[str]:
        """All registered node ids."""
        return list(self._interfaces)

    # ------------------------------------------------------------------ sends
    def send(
        self,
        sender: str,
        recipient: str,
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        """Deliver ``message`` from ``sender`` to ``recipient`` asynchronously."""
        if sender not in self._interfaces:
            raise NetworkError(f"unknown sender {sender!r}")
        if recipient not in self._interfaces:
            raise NetworkError(f"unknown recipient {recipient!r}")
        size = payload_bytes if payload_bytes is not None else self.latency.per_message_bytes
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.faults.any_active():
            # Fault-free fast path: no drop/duplicate draws, no per-link fault
            # lookups — the overwhelmingly common case in performance runs.
            self._schedule_delivery(sender, recipient, message, size, faulty=False)
            return
        if self.faults.should_drop(sender, recipient):
            return
        self._schedule_delivery(sender, recipient, message, size, faulty=True)
        # At-least-once faults: the same message may be delivered a second
        # time with an independently drawn delay (the duplicate is injected by
        # the network, so it does not count as another send).
        if self.faults.should_duplicate(sender, recipient):
            self.messages_duplicated += 1
            self._schedule_delivery(sender, recipient, message, size, faulty=True)

    def _schedule_delivery(
        self, sender: str, recipient: str, message: Message, size: int, faulty: bool = True
    ) -> None:
        now = self.env.now
        delay = self.topology.message_delay(sender, recipient, size)
        reorder = None
        if faulty:
            delay += self.faults.extra_delay(sender, recipient)
            reorder = self.faults.reorder_delay(sender, recipient)
        deliver_at = now + delay
        link = (sender, recipient)
        if reorder is None:
            # FIFO per directed link: never deliver earlier than the previously
            # scheduled delivery on the same link.
            previous = self._last_delivery.get(link, 0.0)
            deliver_at = max(deliver_at, previous)
            self._last_delivery[link] = deliver_at
        else:
            # A reordering fault lifts the FIFO guarantee: this message takes
            # its drawn penalty and may be overtaken (or overtake others).
            deliver_at += reorder
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            message=message,
            sent_at=now,
            delivered_at=deliver_at,
            size_bytes=size,
        )
        # Deliveries are lean scheduled callbacks, not processes: one heap
        # entry and one call per message instead of a bootstrap event, a
        # generator resume and a timeout event.
        self.env.schedule_callback(deliver_at - now, partial(self._deliver_now, envelope))

    def multicast(
        self,
        sender: str,
        recipients: Iterable[str],
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        """Send ``message`` from ``sender`` to every node in ``recipients``."""
        for recipient in recipients:
            if recipient == sender:
                continue
            self.send(sender, recipient, message, payload_bytes)

    def broadcast(self, sender: str, message: Message, payload_bytes: Optional[int] = None) -> None:
        """Send ``message`` to every registered node except the sender."""
        self.multicast(sender, self.node_ids(), message, payload_bytes)

    # -------------------------------------------------------------- internals
    #: Phase label picked up by the profiler for delivery callbacks.
    profile_phase = "transport"

    def _deliver_now(self, envelope: Envelope) -> None:
        """Complete a scheduled delivery (runs at the envelope's delivery time)."""
        # Recipient may have crashed while the message was in flight.
        if self.faults.is_crashed(envelope.recipient):
            return
        self.messages_delivered += 1
        self._interfaces[envelope.recipient].inbox.put(envelope)
