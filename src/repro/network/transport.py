"""The simulated transport: registration, unicast, multicast and inboxes."""

from __future__ import annotations

from functools import partial
from typing import Iterable, Optional

from repro.common.config import LatencyConfig
from repro.common.errors import NetworkError
from repro.network.backend import BaseTransport, NetworkInterface
from repro.network.faults import FaultPlan
from repro.network.message import Envelope, Message
from repro.network.topology import Topology
from repro.simulation import Environment

__all__ = ["Network", "NetworkInterface"]


class Network(BaseTransport):
    """Point-to-point message delivery over a :class:`Topology`.

    Messages are delivered to each recipient's inbox after the topology's
    computed delay; the optional :class:`FaultPlan` can drop or further delay
    them.  Delivery per link is FIFO: the transport never reorders two
    messages sent over the same directed link (it enforces this by tracking
    the last scheduled delivery time per link).

    This is the deterministic simulated implementation of
    :class:`~repro.network.backend.BaseTransport`; ``repro.realnet`` provides
    the wall-clock asyncio implementations of the same contract.
    """

    def __init__(
        self,
        env: Environment,
        topology: Optional[Topology] = None,
        faults: Optional[FaultPlan] = None,
        latency: Optional[LatencyConfig] = None,
    ) -> None:
        super().__init__(env)
        self.topology = topology or Topology(latency=latency)
        self.faults = faults or FaultPlan()
        self.latency = self.topology.latency
        self._last_delivery: dict[tuple, float] = {}

    def _place(self, node_id: str, datacenter: Optional[str]) -> None:
        if datacenter is not None:
            self.topology.place(node_id, datacenter)

    # ------------------------------------------------------------------ sends
    def send(
        self,
        sender: str,
        recipient: str,
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        """Deliver ``message`` from ``sender`` to ``recipient`` asynchronously."""
        if sender not in self._interfaces:
            raise NetworkError(f"unknown sender {sender!r}")
        if recipient not in self._interfaces:
            raise NetworkError(f"unknown recipient {recipient!r}")
        size = payload_bytes if payload_bytes is not None else self.latency.per_message_bytes
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.faults.any_active():
            # Fault-free fast path: no drop/duplicate draws, no per-link fault
            # lookups — the overwhelmingly common case in performance runs.
            self._schedule_delivery(sender, recipient, message, size, faulty=False)
            return
        if self.faults.should_drop(sender, recipient):
            # The send was attempted (it counts as sent and paid its bytes);
            # the fault plan ate it.  Without this counter the conservation
            # identity could never reconcile under lossy links.
            self.messages_dropped += 1
            return
        self._schedule_delivery(sender, recipient, message, size, faulty=True)
        # At-least-once faults: the same message may be delivered a second
        # time with an independently drawn delay (the duplicate is injected by
        # the network, so it does not count as another send).
        if self.faults.should_duplicate(sender, recipient):
            self.messages_duplicated += 1
            self._schedule_delivery(sender, recipient, message, size, faulty=True)

    def _schedule_delivery(
        self, sender: str, recipient: str, message: Message, size: int, faulty: bool = True
    ) -> None:
        now = self.env.now
        delay = self.topology.message_delay(sender, recipient, size)
        reorder = None
        if faulty:
            delay += self.faults.extra_delay(sender, recipient)
            reorder = self.faults.reorder_delay(sender, recipient)
        deliver_at = now + delay
        link = (sender, recipient)
        if reorder is None:
            # FIFO per directed link: never deliver earlier than the previously
            # scheduled delivery on the same link.
            previous = self._last_delivery.get(link, 0.0)
            deliver_at = max(deliver_at, previous)
            self._last_delivery[link] = deliver_at
        else:
            # A reordering fault lifts the FIFO guarantee: this message takes
            # its drawn penalty and may be overtaken (or overtake others).
            deliver_at += reorder
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            message=message,
            sent_at=now,
            delivered_at=deliver_at,
            size_bytes=size,
        )
        self.messages_in_flight += 1
        # Deliveries are lean scheduled callbacks, not processes: one heap
        # entry and one call per message instead of a bootstrap event, a
        # generator resume and a timeout event.
        self.env.schedule_callback(deliver_at - now, partial(self._deliver_now, envelope))

    # -------------------------------------------------------------- internals
    def _deliver_now(self, envelope: Envelope) -> None:
        """Complete a scheduled delivery (runs at the envelope's delivery time)."""
        self.messages_in_flight -= 1
        # Recipient may have crashed while the message was in flight.
        if self.faults.is_crashed(envelope.recipient):
            self.messages_discarded_crash += 1
            return
        self.messages_delivered += 1
        self._interfaces[envelope.recipient].inbox.put(envelope)
