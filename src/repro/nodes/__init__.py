"""Node implementations for every role in the three paradigms.

* :class:`~repro.nodes.client.ClientGateway` — submits client requests
  (directly to the orderers for OX/OXII, via the endorsement round trip for
  XOV).
* :class:`~repro.nodes.orderer.OrdererNode` — orders requests with a pluggable
  consensus protocol, cuts blocks, generates dependency graphs (OXII) and
  multicasts NEWBLOCK messages.
* :class:`~repro.nodes.executor.ExecutorNode` — an OXII executor/agent running
  Algorithms 1–3; with no contracts installed it doubles as a passive
  non-executor peer.
* :class:`~repro.nodes.ox_peer.OXPeerNode` — an order-execute peer executing
  every transaction sequentially.
* :class:`~repro.nodes.xov.XOVPeerNode` / :class:`~repro.nodes.xov.EndorserNode`
  — Fabric-style committing peers and endorsers.
"""

from repro.nodes.base import BaseNode
from repro.nodes.client import ClientGateway
from repro.nodes.orderer import OrdererNode
from repro.nodes.executor import ExecutorNode
from repro.nodes.ox_peer import OXPeerNode
from repro.nodes.xov import EndorserNode, XOVPeerNode

__all__ = [
    "BaseNode",
    "ClientGateway",
    "EndorserNode",
    "ExecutorNode",
    "OXPeerNode",
    "OrdererNode",
    "XOVPeerNode",
]
