"""Shared behaviour of every simulated node."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.common.config import CostModel, LatencyConfig
from repro.crypto.signatures import KeyRegistry, SignedMessage
from repro.network.message import Envelope, Message, build_signed, build_trusted
from repro.network.transport import Network, NetworkInterface
from repro.nodes import messages
from repro.simulation import CpuPool, Environment


class BaseNode:
    """A simulated node: identity, network interface, CPU pool and main loop.

    Subclasses implement :meth:`handle_envelope` (a process generator) and may
    start extra background processes in :meth:`start`.  The main loop pulls
    envelopes from the node's inbox and handles them one at a time, which
    models the single dispatcher thread real nodes use for protocol handling;
    CPU-heavy work should be pushed onto :attr:`cpu` or into spawned processes
    so it does not head-of-line block message handling.
    """

    #: Set by sharded deployments on each shard's reference peer: an object
    #: with ``on_record(node, transaction, result)`` that turns committed
    #: cross-shard 2PC records into votes/acks to the coordinator.
    xshard_voter = None

    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        cost_model: Optional[CostModel] = None,
        cores: int = 8,
        datacenter: Optional[str] = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.network = network
        self.registry = registry
        self.cost_model = cost_model or CostModel()
        self.interface: NetworkInterface = network.register(node_id, datacenter=datacenter)
        self.cpu = CpuPool(env, cores)
        registry.register(node_id)
        #: Bound signing closure for :func:`build_signed` (avoids re-binding
        #: the registry method on every signed send).
        self._sign_hash = lambda digest: registry.sign_hash(digest, node_id)
        self._started = False
        self.crash_count = 0
        self.restart_count = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the node's main loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._main_loop(), name=f"{self.node_id}-main")

    def crash(self) -> None:
        """Crash-stop the node: it neither sends nor receives from now on.

        The crash is enforced at the transport (the network's fault plan), so
        in-flight messages to this node are lost and everything it tries to
        send is dropped.  Internal state survives — :meth:`restart` models a
        crash-recovery node resuming from stable storage.
        """
        self.network.faults.crash(self.node_id)
        self.crash_count += 1

    def restart(self) -> None:
        """Bring a crashed node back; it resumes with its pre-crash state."""
        self.network.faults.recover(self.node_id)
        self.restart_count += 1

    @property
    def is_crashed(self) -> bool:
        """True while the node is crash-stopped."""
        return self.network.faults.is_crashed(self.node_id)

    # -------------------------------------------------------------- catch-up
    def request_missing_blocks(self, orderer: str, first: int, last: int, window: int) -> None:
        """Ask ``orderer`` to re-send sealed blocks ``first..last`` (capped).

        The recovery-mode catch-up path: peers call this when a NEWBLOCK or
        TIP_ANNOUNCE reveals a gap before the next block they expect.
        """
        if last < first:
            return
        sequences = list(range(first, min(last, first + window - 1) + 1))
        self.send_signed(orderer, messages.BLOCK_FETCH, {"sequences": sequences})

    def notify_xshard_commit(self, transaction, result) -> None:
        """Tell the shard voter (if any) that a 2PC record just committed here."""
        voter = self.xshard_voter
        if voter is not None:
            voter.on_record(self, transaction, result)

    def _main_loop(self):
        while True:
            envelope = yield self.interface.receive()
            if (
                envelope.message.kind == messages.XSHARD_FETCH
                and self.xshard_voter is not None
            ):
                yield self.cost_model.signature
                if self.verify_envelope(envelope):
                    self.xshard_voter.handle_fetch(self, envelope)
                continue
            yield from self.handle_envelope(envelope)

    def handle_envelope(self, envelope: Envelope):
        """Handle one received envelope (override in subclasses)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type symmetry

    # ------------------------------------------------------------ networking
    @property
    def latency(self) -> LatencyConfig:
        """The network's latency configuration (for payload sizing)."""
        return self.network.latency

    def send_signed(
        self, recipient: str, kind: str, body: Dict[str, Any], payload_bytes: Optional[int] = None
    ) -> None:
        """Sign a message with this node's key and send it to ``recipient``."""
        message = self._signed_message(kind, body)
        self.interface.send(recipient, message, payload_bytes)

    def multicast_signed(
        self, recipients: Iterable[str], kind: str, body: Dict[str, Any], payload_bytes: Optional[int] = None
    ) -> None:
        """Sign a message and send it to every node in ``recipients``."""
        message = self._signed_message(kind, body)
        self.interface.multicast(recipients, message, payload_bytes)

    def _signed_message(self, kind: str, body: Dict[str, Any]) -> Message:
        if self.registry.trusted:
            return build_trusted(kind, body)
        return build_signed(kind, body, self._sign_hash)

    def verify_envelope(self, envelope: Envelope) -> bool:
        """Verify the signature of a received envelope against its transport sender.

        Uses the message's memoised unsigned hash, so a multicast body is
        canonicalised once per message rather than once per recipient.  Over
        trusted channels (fault-free deployments) the check short-circuits:
        every message was built by honest code and would verify anyway.
        """
        message = envelope.message
        if not message.signature:
            return False
        if self.registry.trusted:
            return True
        return self.registry.verify_hash(
            message.unsigned_hash(), envelope.sender, message.signature
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.node_id}>"


class BlockBatchMixin:
    """Opt-out switch + safety gate for block-batched commit loops.

    Hosts must expose ``collector`` and ``xshard_voter``.  A batched loop
    sleeps once per block and back-computes per-transaction commit times
    (bit-identical to the per-transaction arithmetic); it is only safe when
    nothing can observe the peer between two transactions of a block.
    """

    #: Class-level default; determinism tests flip this to compare the
    #: batched and per-transaction paths.
    batch_block_execution = True

    def _can_batch(self) -> bool:
        """True when nothing can observe this peer mid-block: no cross-shard
        voter (which multicasts votes per commit) and no completion
        subscribers (which react at the completion instant)."""
        collector = self.collector
        return (
            self.batch_block_execution
            and self.xshard_voter is None
            and (collector is None or not collector.has_subscribers)
        )


class BlockCatchupMixin:
    """Gap detection + BLOCK_FETCH for peers that consume NEWBLOCKs in order.

    Shared by the OXII executor and the OX/XOV committing peers, which all
    keep ``_next_sequence`` (next block to process) and ``_valid_blocks``
    (validated blocks waiting on a predecessor) plus a ``config`` with a
    :class:`~repro.common.config.RecoveryConfig`; the host class must also be
    a :class:`BaseNode` (for the network/cost-model surface).
    """

    def _handle_tip_announce(self, envelope: Envelope):
        """Fetch the gap between the next expected block and the orderer's tip."""
        yield self.cost_model.signature
        recovery = self.config.recovery
        if not recovery.enabled or not self.verify_envelope(envelope):
            return
        tip = int(envelope.message.body.get("sequence", 0))
        first = self._next_sequence
        while first in self._valid_blocks:
            first += 1
        if tip >= first:
            self.request_missing_blocks(envelope.sender, first, tip, recovery.fetch_window)

    def _fetch_gap_before(self, orderer: str, sequence: int) -> None:
        """A validated block from the future reveals a gap (blocks missed
        while crashed/partitioned): fetch the missing range right away."""
        recovery = self.config.recovery
        if recovery.enabled and sequence > self._next_sequence:
            self.request_missing_blocks(
                orderer, self._next_sequence, sequence - 1, recovery.fetch_window
            )
