"""The client gateway: open-loop submission of the workload's transactions.

A single gateway node stands in for the paper's population of clients (which
run on one VM in the testbed as well): it submits each transaction at its
scheduled arrival time.  Under OX and OXII the request goes straight to the
primary orderer; under XOV the gateway first runs the endorsement round trip —
send the proposal to the application's endorsers, wait for the required number
of endorsements, assemble the endorsed transaction — and only then submits it
to the ordering service.  That extra client participation is why moving the
clients to a far data center hurts XOV the most (Figure 7(a)).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.contracts.base import ContractRegistry
from repro.core.transaction import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.metrics.collector import MetricsCollector
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode
from repro.simulation import Environment
from repro.workload.arrivals import ArrivalSchedule


class ClientGateway(BaseNode):
    """Submits the workload's transactions according to an arrival schedule."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        config: SystemConfig,
        orderer_entry: str,
        collector: Optional[MetricsCollector] = None,
        mode: str = "direct",
        contracts: Optional[ContractRegistry] = None,
        endorsement_policy: int = 1,
        datacenter: Optional[str] = None,
    ) -> None:
        if mode not in ("direct", "endorse"):
            raise ValueError(f"unknown client mode {mode!r}")
        if mode == "endorse" and contracts is None:
            raise ValueError("endorse mode requires the contract registry (to find endorsers)")
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.orderer_entry = orderer_entry
        self.collector = collector
        self.mode = mode
        self.contracts = contracts
        self.endorsement_policy = endorsement_policy
        #: tx_id -> list of endorsement response bodies received so far.
        self._pending_endorsements: Dict[str, List[Mapping[str, object]]] = {}
        self._awaiting: Dict[str, Transaction] = {}
        self.submitted = 0
        self.endorsed = 0

    # -------------------------------------------------------------- lifecycle
    def submit_schedule(self, transactions: Sequence[Transaction], schedule: ArrivalSchedule) -> None:
        """Start the open-loop submission of ``transactions`` at ``schedule`` times."""
        if len(transactions) != len(schedule):
            raise ValueError("schedule length must match the number of transactions")
        self.start()
        pairs = sorted(zip(schedule, transactions), key=lambda item: item[0])
        self.env.process(self._submission_loop(pairs), name=f"{self.node_id}-submit")

    def submit_now(self, tx: Transaction) -> None:
        """Submit one transaction immediately (closed-loop population drivers).

        The open-loop path replays a pre-computed schedule; agent-based
        drivers instead decide each submission on the simulated clock and
        push it through here — including duplicate submissions of an already
        sent tx_id (at-least-once delivery the orderers deduplicate).
        """
        self.start()
        self._submit_one(tx)

    def _submission_loop(self, pairs: Sequence[Tuple[float, Transaction]]):
        for submit_at, tx in pairs:
            delay = submit_at - self.env.now
            if delay > 0:
                yield delay
            self._submit_one(tx)

    def _submit_one(self, tx: Transaction) -> None:
        self.submitted += 1
        if self.collector is not None:
            self.collector.record_submission(tx.tx_id, self.env.now)
        if self.mode == "direct":
            self._send_to_orderer(tx)
        else:
            self._start_endorsement(tx)

    # ---------------------------------------------------------- direct (OX/OXII)
    def _send_to_orderer(self, tx: Transaction) -> None:
        stamped = tx.with_submitted_at(self.env.now)
        self.send_signed(
            self.orderer_entry,
            messages.REQUEST,
            # The transaction itself carries application/client; repeating
            # them in the body would only grow every REQUEST's hashed bytes.
            {"transaction": stamped},
            payload_bytes=self.latency.per_tx_bytes,
        )

    # ------------------------------------------------------------- XOV endorsement
    def _start_endorsement(self, tx: Transaction) -> None:
        assert self.contracts is not None
        endorsers = self.contracts.agents_of(tx.application)[: self.endorsement_policy]
        self._pending_endorsements[tx.tx_id] = []
        self._awaiting[tx.tx_id] = tx
        self.multicast_signed(
            endorsers,
            messages.ENDORSE_REQUEST,
            {"transaction": tx},
            payload_bytes=self.latency.per_tx_bytes,
        )

    def handle_envelope(self, envelope: Envelope):
        if envelope.message.kind != messages.ENDORSE_RESPONSE:
            return
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        body = envelope.message.body
        tx_id = str(body.get("tx_id"))
        if tx_id not in self._awaiting:
            return
        responses = self._pending_endorsements.setdefault(tx_id, [])
        endorser = str(body.get("endorser", ""))
        if any(str(r.get("endorser", "")) == endorser for r in responses):
            return  # duplicated delivery: one endorsement per endorser counts
        responses.append(body)
        if len(responses) < self.endorsement_policy:
            return
        tx = self._awaiting.pop(tx_id)
        self._pending_endorsements.pop(tx_id, None)
        yield self.cost_model.client_assembly
        endorsed = self._assemble_endorsed_transaction(tx, responses)
        self.endorsed += 1
        self._send_to_orderer(endorsed)

    @staticmethod
    def _assemble_endorsed_transaction(
        tx: Transaction, responses: Sequence[Mapping[str, object]]
    ) -> Transaction:
        """Fold the endorsement results into the transaction's payload."""
        primary = responses[0]
        result = primary.get("result")
        # The endorsement dict folded into the payload is built from the same
        # values the exploded body used to carry, so the ordered transaction's
        # canonical bytes (and every ledger digest downstream) are unchanged.
        endorsement = {
            "status": result.status if result is not None else "ok",
            "updates": dict(result.updates) if result is not None else {},
            "read_versions": dict(primary.get("read_versions", {})),
            "endorsers": tuple(str(r.get("endorser", "")) for r in responses),
            "abort_reason": str(result.abort_reason) if result is not None else "",
        }
        payload = dict(tx.payload)
        payload["endorsement"] = endorsement
        return Transaction(
            tx_id=tx.tx_id,
            application=tx.application,
            rw_set=tx.rw_set,
            timestamp=tx.timestamp,
            payload=payload,
            client=tx.client,
            client_timestamp=tx.client_timestamp,
            submitted_at=tx.submitted_at,
        )
