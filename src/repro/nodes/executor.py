"""The OXII executor node: Algorithms 1-3 over the simulated network.

An executor is an agent for the applications whose smart contracts are
installed on it.  For every valid block it runs the three concurrent
procedures of Section IV-C: execute the transactions it is an agent for
following the dependency graph (occupying CPU cores, so independent
transactions genuinely overlap), multicast COMMIT messages when a
cross-application cut edge requires it (or when its part of the block is
done), and update the blockchain state as τ(A) matching results arrive from
the agents of each application.

A node with no contracts installed is a *passive* (non-executor) peer: it only
runs the state-update procedure, which is why moving such nodes to a far data
center does not affect OXII's measured performance (Figure 7(d)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.contracts.base import ContractRegistry
from repro.core.block import Block
from repro.core.execution import CommitBatcher, CommitMessage, GraphScheduler, StateUpdater
from repro.core.transaction import Transaction, TransactionResult
from repro.crypto.signatures import KeyRegistry
from repro.ledger.ledger import Ledger
from repro.ledger.state import WorldState
from repro.metrics.collector import MetricsCollector
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode, BlockCatchupMixin
from repro.simulation import Environment, Store


class _SpeculativeView:
    """Read view layering locally executed (not yet committed) results over the state.

    Algorithm 1 lets a transaction execute as soon as its predecessors are in
    ``C_e ∪ X_e`` — i.e. possibly before their results reach the committed
    blockchain state.  The executing agent must therefore see its own executed
    results; this view overlays them on the committed world state.
    """

    def __init__(self, state: WorldState) -> None:
        self._state = state
        self._overlay: Dict[str, object] = {}

    def get(self, key: str, default: object = None) -> object:
        if key in self._overlay:
            return self._overlay[key]
        return self._state.get(key, default)

    def apply(self, updates) -> None:
        """Record the updates of a locally executed transaction."""
        self._overlay.update(updates)


class ExecutorNode(BaseNode, BlockCatchupMixin):
    """An OXII executor (agent) peer; passive non-executor when no contracts."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        contracts: ContractRegistry,
        config: SystemConfig,
        executor_peers: Sequence[str],
        collector: Optional[MetricsCollector] = None,
        initial_state: Optional[Dict[str, object]] = None,
        newblock_quorum: int = 1,
        is_reference: bool = False,
        datacenter: Optional[str] = None,
    ) -> None:
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.contracts = contracts
        self.executor_peers = [p for p in executor_peers if p != node_id]
        self.collector = collector
        self.newblock_quorum = newblock_quorum
        self.is_reference = is_reference
        self.state = WorldState(initial_state or {})
        self.ledger = Ledger()
        self._next_sequence = 1
        #: Sequence -> {orderer -> digest} votes for pending NEWBLOCK messages.
        self._block_votes: Dict[int, Dict[str, str]] = {}
        self._valid_blocks: Dict[int, Block] = {}
        #: COMMIT messages that arrived before their block started processing.
        self._early_commits: Dict[int, List[CommitMessage]] = {}
        #: The event queue of the block currently being processed.
        self._active_queue: Optional[Store] = None
        self._active_sequence: Optional[int] = None
        #: Own execution results per recent block, re-multicast by the
        #: recovery retransmit loop so lagging peers can finish state updates.
        self._own_results: Dict[int, List[TransactionResult]] = {}
        self.transactions_executed = 0
        self.transactions_committed = 0
        self.blocks_committed = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher plus (in recovery runs) the retransmit loop."""
        if self._started:
            return
        super().start()
        if self.config.recovery.enabled:
            self.env.process(self._retransmit_loop(), name=f"{self.node_id}-retransmit")

    def _retransmit_loop(self):
        """Periodically re-multicast own results for recent blocks.

        COMMIT messages multicast while this executor was crashed (or while a
        peer was unreachable) are lost; because each application may have a
        single agent, a peer missing them can never finish Algorithm 3 for
        that block.  Re-multicasting this node's own votes is legitimate (it
        *is* the agent) and idempotent (receivers tally one vote per sender).
        """
        interval = self.config.recovery.retransmit_interval
        while True:
            yield interval
            for sequence, results in sorted(self._own_results.items()):
                if results:
                    self._multicast_commit(
                        CommitMessage(
                            executor=self.node_id,
                            block_sequence=sequence,
                            results=tuple(results),
                        )
                    )

    def _record_own_result(self, sequence: int, result: TransactionResult) -> None:
        if not self.config.recovery.enabled:
            return
        self._own_results.setdefault(sequence, []).append(result)
        retention = self.config.recovery.result_retention_blocks
        while len(self._own_results) > retention:
            self._own_results.pop(min(self._own_results))

    # ------------------------------------------------------------------ roles
    def applications(self) -> List[str]:
        """Applications this executor is an agent for."""
        return self.contracts.applications_of(self.node_id)

    def is_agent_for(self, application: str) -> bool:
        """True if this node hosts ``application``'s smart contract."""
        return self.contracts.is_agent(self.node_id, application)

    # ----------------------------------------------------------- message path
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.NEW_BLOCK:
            yield from self._handle_new_block(envelope)
        elif kind == messages.COMMIT:
            yield from self._handle_commit(envelope)
        elif kind == messages.TIP_ANNOUNCE:
            yield from self._handle_tip_announce(envelope)

    def _handle_new_block(self, envelope: Envelope):
        """Collect NEWBLOCK votes; start processing once the quorum is reached."""
        yield self.cost_model.signature + self.cost_model.block_hash
        if not self.verify_envelope(envelope):
            return
        block = envelope.message.body.get("block")
        if not isinstance(block, Block):
            return
        sequence = block.sequence
        if sequence < self._next_sequence and sequence not in self._valid_blocks:
            return  # stale duplicate of an already-processed block
        votes = self._block_votes.setdefault(sequence, {})
        votes[envelope.sender] = block.digest()
        matching = sum(1 for digest in votes.values() if digest == block.digest())
        if matching < self.newblock_quorum or sequence in self._valid_blocks:
            return
        self._valid_blocks[sequence] = block
        self._fetch_gap_before(envelope.sender, sequence)
        self._try_start_next_block()

    def _handle_commit(self, envelope: Envelope):
        """Route a COMMIT message to the right block's processing queue."""
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        commit = envelope.message.body.get("commit")
        if not isinstance(commit, CommitMessage):
            return
        if commit.block_sequence == self._active_sequence and self._active_queue is not None:
            self._active_queue.put(("commit", commit))
        elif commit.block_sequence >= self._next_sequence:
            self._early_commits.setdefault(commit.block_sequence, []).append(commit)
        # Commits for already-finished blocks are duplicates and are dropped.

    # --------------------------------------------------------- block pipeline
    def _try_start_next_block(self) -> None:
        if self._active_sequence is not None:
            return
        block = self._valid_blocks.get(self._next_sequence)
        if block is None:
            return
        self._active_sequence = block.sequence
        self._active_queue = Store(self.env)
        self.env.process(self._process_block(block), name=f"{self.node_id}-block-{block.sequence}")

    def _process_block(self, block: Block):
        """Run Algorithms 1-3 for one block, then append it to the ledger."""
        graph = block.dependency_graph
        if graph is None:
            raise ValueError("OXII executors require blocks to carry a dependency graph")
        assigned = [tx.tx_id for tx in block if self.is_agent_for(tx.application)]
        speculative = _SpeculativeView(self.state)
        scheduler = GraphScheduler(graph, assigned=assigned)
        batcher = CommitBatcher(graph, executor=self.node_id, block_sequence=block.sequence)
        updater = StateUpdater(
            block_transactions=block.transactions,
            tau=self.config.tau_for,
            is_agent=self.contracts.is_agent,
            # Batched path: all winners of one COMMIT message hit the world
            # state in a single pass instead of one apply_updates call each.
            apply_batch=self.state.apply_results,
        )
        queue = self._active_queue
        assert queue is not None
        for commit in self._early_commits.pop(block.sequence, []):
            queue.put(("commit", commit))
        self._dispatch_ready(scheduler, queue, speculative)

        while not updater.is_complete():
            kind, item = yield queue.get()
            if kind == "executed":
                result: TransactionResult = item
                scheduler.mark_executed(result.tx_id)
                if not result.is_abort:
                    speculative.apply(result.updates)
                self.transactions_executed += 1
                self._record_own_result(block.sequence, result)
                outgoing = []
                flushed = batcher.add_result(result)
                if flushed is not None:
                    outgoing.append(flushed)
                if scheduler.is_done():
                    remainder = batcher.flush()
                    if remainder is not None:
                        outgoing.append(remainder)
                for commit in outgoing:
                    self._multicast_commit(commit)
                    self._absorb_commit(commit, updater, scheduler, block, speculative)
            else:  # "commit"
                self._absorb_commit(item, updater, scheduler, block, speculative)
            self._dispatch_ready(scheduler, queue, speculative)

        self._finish_block(block)

    def _dispatch_ready(
        self, scheduler: GraphScheduler, queue: Store, view: _SpeculativeView
    ) -> None:
        """Start an execution process for every newly ready transaction."""
        for tx in scheduler.ready_transactions():
            self.env.process(self._execute_transaction(tx, queue, view), name=f"{self.node_id}-exec")

    def _execute_transaction(self, tx: Transaction, queue: Store, view: _SpeculativeView):
        """Occupy one core for the execution cost, then run the smart contract."""
        yield from self.cpu.execute(self.cost_model.tx_execution, result=None)
        outcome = self.contracts.execute(tx, view, executed_by=self.node_id)
        queue.put(("executed", outcome))

    def _multicast_commit(self, commit: CommitMessage) -> None:
        payload_bytes = self.latency.per_message_bytes + self.latency.per_tx_bytes * len(commit.results)
        self.multicast_signed(
            self.executor_peers,
            messages.COMMIT,
            {"commit": commit},
            payload_bytes=payload_bytes,
        )

    def _absorb_commit(
        self,
        commit: CommitMessage,
        updater: StateUpdater,
        scheduler: GraphScheduler,
        block: Block,
        speculative: _SpeculativeView,
    ) -> None:
        """Apply a COMMIT message locally (Algorithm 3) and release dependants."""
        newly_committed = updater.receive(commit)
        for tx_id in newly_committed:
            scheduler.mark_committed(tx_id)
            self.transactions_committed += 1
            result = updater.committed_result(tx_id)
            aborted = bool(result is not None and result.is_abort)
            if result is not None and not aborted:
                # Keep the speculative view causally up to date: committed
                # writes from other agents must be visible to later local
                # executions of the same block.  Only the updates that
                # survived the updater's block-order gate are applied — a
                # reordered COMMIT must not regress the overlay either.
                speculative.apply(updater.effective_updates(tx_id))
            if self.collector is not None:
                reason = ""
                if aborted:
                    reason = (result.abort_reason or "contract_abort") if result else "contract_abort"
                self.collector.record_commit(
                    self.node_id, tx_id, self.env.now, aborted=aborted, reason=reason
                )
            if self.xshard_voter is not None:
                tx = block.transaction(tx_id)
                if tx is not None:
                    self.notify_xshard_commit(tx, result)

    def _finish_block(self, block: Block) -> None:
        self.ledger.append(block)
        self.blocks_committed += 1
        if self.is_reference and self.collector is not None:
            self.collector.record_block_commit()
        self._block_votes.pop(block.sequence, None)
        self._valid_blocks.pop(block.sequence, None)
        self._active_sequence = None
        self._active_queue = None
        self._next_sequence = block.sequence + 1
        self._try_start_next_block()
