"""Application-level message kinds exchanged between nodes.

Consensus-internal message kinds live next to their protocols in
:mod:`repro.consensus`; the kinds below are the ones the paper names in its
protocol descriptions.
"""

#: Client request carrying one transaction (to the primary orderer).
REQUEST = "REQUEST"
#: Orderer announcement of a sealed block (with dependency graph under OXII).
NEW_BLOCK = "NEWBLOCK"
#: Executor multicast of execution results (OXII Algorithm 2).
COMMIT = "COMMIT"
#: XOV client proposal asking an endorser to speculatively execute.
ENDORSE_REQUEST = "ENDORSE_REQUEST"
#: XOV endorser reply with the speculative results and read versions.
ENDORSE_RESPONSE = "ENDORSE_RESPONSE"
#: Orderer heartbeat announcing its highest sealed block sequence (only sent
#: when :class:`~repro.common.config.RecoveryConfig` is enabled).
TIP_ANNOUNCE = "TIP_ANNOUNCE"
#: Peer request asking an orderer to re-send sealed blocks it missed.
BLOCK_FETCH = "BLOCK_FETCH"
#: Gateway hand-off of a cross-shard transaction to the 2PC coordinator.
XSHARD_SUBMIT = "XSHARD_SUBMIT"
#: Shard reference peer's PREPARE vote (commit/abort + stashed reads) to the
#: coordinator, sent once the shard's PREPARE record commits.
XSHARD_VOTE = "XSHARD_VOTE"
#: Shard reference peer's acknowledgement that a decision record committed.
XSHARD_ACK = "XSHARD_ACK"
#: Coordinator request asking a shard's reference peer to re-send a cached
#: vote or ack (RecoveryConfig-gated retransmission).
XSHARD_FETCH = "XSHARD_FETCH"
