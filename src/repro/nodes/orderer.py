"""The orderer node: access control, ordering, block cutting, graph generation.

Orderers are shared by all three paradigms; the differences are configuration:

* **OXII** — ``generate_graphs=True``: the sealed block carries its dependency
  graph, and generating it is charged to the orderer's (serialised) sealing
  pipeline, which is exactly the overhead that bends Figure 5.
* **OX / XOV** — ``generate_graphs=False``: blocks carry no graph.

The orderer designated ``entry`` (the leader / primary / partition lead)
receives client requests, batches them with the three block-cut conditions and
drives the consensus protocol one block at a time; with PBFT every orderer
multicasts the sealed block (executors wait for ``f+1`` matching NEWBLOCK
messages), with the crash-fault-tolerant protocols only the leader does.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.common.config import SystemConfig
from repro.consensus.base import ConsensusDecision, OrderingService, make_ordering_service
from repro.core.block import Block
from repro.core.block_builder import BlockBuilder, PendingBlock
from repro.core.dependency_graph import GraphConstruction, GraphMode
from repro.core.transaction import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode
from repro.simulation import Environment, Store


class OrdererNode(BaseNode):
    """One orderer of the ordering service."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        orderer_peers: Sequence[str],
        block_targets: Sequence[str],
        config: SystemConfig,
        generate_graphs: bool = True,
        graph_mode: GraphMode = GraphMode.SINGLE_VERSION,
        allowed_clients: Optional[Set[str]] = None,
        datacenter: Optional[str] = None,
    ) -> None:
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.orderer_peers = list(orderer_peers)
        self.block_targets = list(block_targets)
        self.generate_graphs = generate_graphs
        self.allowed_clients = allowed_clients
        self.builder = BlockBuilder(
            policy=config.block_cut,
            tx_size_bytes=config.latency.per_tx_bytes,
            generate_graphs=generate_graphs,
            graph_mode=graph_mode,
            graph_construction=GraphConstruction(config.graph_construction),
        )
        self.consensus: OrderingService = make_ordering_service(
            config.consensus_protocol,
            env=env,
            node_id=node_id,
            peers=self.orderer_peers,
            interface=self.interface,
            registry=registry,
            cost_model=config.cost_model,
            on_decide=self._on_decide,
            max_faulty=config.max_faulty_orderers,
            retry_interval=(
                config.recovery.consensus_retry_interval if config.recovery.enabled else None
            ),
        )
        self._proposal_queue: Store = Store(env)
        self._seal_queue: Store = Store(env)
        #: Transaction ids already admitted to a block: duplicate-suppression
        #: under at-least-once delivery (a duplicated REQUEST must not order
        #: the same transaction twice).
        self._seen_tx_ids: Set[str] = set()
        #: Sealed blocks kept for BLOCK_FETCH catch-up (recovery runs only).
        self._sealed: Dict[int, Block] = {}
        self.requests_received = 0
        self.requests_rejected = 0
        self.requests_deduplicated = 0
        self.blocks_ordered = 0

    # ----------------------------------------------------------------- roles
    @property
    def is_entry(self) -> bool:
        """True if this orderer receives client requests and drives consensus."""
        return self.consensus.is_leader

    @property
    def multicasts_blocks(self) -> bool:
        """Whether this orderer multicasts sealed blocks to the peers.

        Under PBFT every orderer does (executors wait for ``f+1`` matching
        NEWBLOCK messages); under the crash-fault-tolerant protocols only the
        leader does.
        """
        if self.config.consensus_protocol == "pbft":
            return True
        return self.consensus.is_leader

    @property
    def newblock_quorum(self) -> int:
        """Matching NEWBLOCK messages an executor needs before trusting a block."""
        if self.config.consensus_protocol == "pbft":
            return self.config.max_faulty_orderers + 1
        return 1

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the main loop plus the proposer / sealer / block-cut ticker."""
        if self._started:
            return
        super().start()
        self.env.process(self._sealer_loop(), name=f"{self.node_id}-sealer")
        if self.is_entry:
            self.env.process(self._proposer_loop(), name=f"{self.node_id}-proposer")
            self.env.process(self._cut_ticker(), name=f"{self.node_id}-ticker")
        if self.config.recovery.enabled:
            self.env.process(self._tip_announcer(), name=f"{self.node_id}-tip")

    # ----------------------------------------------------------- message path
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.REQUEST:
            yield from self._handle_request(envelope)
        elif kind == messages.BLOCK_FETCH:
            yield from self._handle_block_fetch(envelope)
        elif kind in self.consensus.message_kinds:
            # Consensus steps are handled concurrently; their (small) CPU cost
            # is charged inside the protocol handler itself.
            self.env.process(self.consensus.handle_message(envelope), name=f"{self.node_id}-cons")
        # Unknown kinds are dropped silently (e.g. NEWBLOCK gossip echoes).

    def _handle_request(self, envelope: Envelope):
        """Validate a client request and feed it to the block builder."""
        self.requests_received += 1
        # Signature check of the client request (charged to the dispatcher).
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            self.requests_rejected += 1
            return
        transaction = envelope.message.body.get("transaction")
        if not isinstance(transaction, Transaction):
            self.requests_rejected += 1
            return
        if not self._client_allowed(transaction):
            self.requests_rejected += 1
            return
        if transaction.tx_id in self._seen_tx_ids:
            # At-least-once delivery (duplication faults, client retries) must
            # not order the same transaction twice — the no-double-apply
            # safety invariant the fault oracles check.
            self.requests_deduplicated += 1
            return
        if not self.is_entry:
            # Non-primary orderers forward client requests to the primary.
            self.send_signed(
                self.consensus.leader,
                messages.REQUEST,
                dict(envelope.message.body),
                payload_bytes=self.latency.per_tx_bytes,
            )
            return
        self._seen_tx_ids.add(transaction.tx_id)
        pending = self.builder.add(transaction, now=self.env.now)
        if pending is not None:
            self._proposal_queue.put(pending)

    def _handle_block_fetch(self, envelope: Envelope):
        """Re-send sealed blocks a lagging peer asks for (recovery catch-up)."""
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        sequences = envelope.message.body.get("sequences", ())
        window = self.config.recovery.fetch_window
        for sequence in tuple(sequences)[:window]:
            block = self._sealed.get(sequence)
            if block is not None:
                yield self.cost_model.signature
                self._send_new_block(envelope.sender, block)

    def _client_allowed(self, transaction: Transaction) -> bool:
        """Access control: discard requests from unauthorised clients."""
        if self.allowed_clients is None:
            return True
        return transaction.client in self.allowed_clients

    # -------------------------------------------------------------- pipelines
    def _cut_ticker(self):
        """Cut the open block when the maximal production time elapses."""
        interval = max(self.config.block_cut.max_delay / 4.0, 1e-3)
        while True:
            yield interval
            if self.builder.timeout_due(self.env.now):
                pending = self.builder.cut_on_timeout(self.env.now)
                if pending is not None:
                    self._proposal_queue.put(pending)

    def _proposer_loop(self):
        """Order cut blocks one at a time through the consensus protocol."""
        while True:
            pending = yield self._proposal_queue.get()
            decision = yield self.env.process(
                self.consensus.propose(pending), name=f"{self.node_id}-propose"
            )
            self.blocks_ordered += 1
            if self.multicasts_blocks:
                yield from self._seal_and_multicast(decision.payload)

    def _on_decide(self, decision: ConsensusDecision) -> None:
        """Non-leader orderers seal and multicast decided blocks when required."""
        if self.consensus.is_leader:
            return  # the proposer loop already handles the leader's copy
        self.blocks_ordered += 1
        if self.multicasts_blocks:
            self._seal_queue.put(decision.payload)

    def _sealer_loop(self):
        """Serially seal blocks pushed by :meth:`_on_decide` (followers)."""
        while True:
            pending = yield self._seal_queue.get()
            yield from self._seal_and_multicast(pending)

    def _tip_announcer(self):
        """Periodically announce the highest sealed sequence (recovery runs).

        Peers compare the announced tip with the next block they expect and
        fetch any gap with BLOCK_FETCH, which is what lets a crashed or
        partitioned peer catch up once the fault heals.
        """
        interval = self.config.recovery.tip_announce_interval
        while True:
            yield interval
            if not self._sealed:
                continue
            tip = max(self._sealed)
            self.multicast_signed(
                self.block_targets,
                messages.TIP_ANNOUNCE,
                {"sequence": tip},
                payload_bytes=self.latency.per_message_bytes,
            )

    def _seal_and_multicast(self, pending: PendingBlock):
        """Charge the sealing costs, build the block and multicast NEWBLOCK.

        Sealing is strictly serialised per orderer (this generator runs inside
        a single process), so its cost — dominated by the quadratic dependency
        graph generation under OXII — bounds the block production rate.
        """
        size = len(pending.transactions)
        cost = (
            self.cost_model.block_assembly
            + self.cost_model.block_assembly_per_tx * size
            + self.cost_model.block_hash
            + self.cost_model.signature
        )
        if self.generate_graphs:
            cost += self.cost_model.dependency_graph_cost(size)
        yield cost
        block = self.builder.seal(pending, now=self.env.now)
        if self.config.recovery.enabled:
            self._sealed[block.sequence] = block
            while len(self._sealed) > self.config.recovery.sealed_retention_blocks:
                self._sealed.pop(min(self._sealed))
        payload_bytes = self.latency.per_message_bytes + self.latency.per_tx_bytes * size
        self.multicast_signed(
            self.block_targets,
            messages.NEW_BLOCK,
            self._new_block_body(block),
            payload_bytes=payload_bytes,
        )

    def _new_block_body(self, block: Block) -> dict:
        return {
            "sequence": block.sequence,
            "block": block,
            "applications": tuple(sorted(block.applications())),
            "previous_hash": block.previous_hash,
        }

    def _send_new_block(self, recipient: str, block: Block) -> None:
        payload_bytes = self.latency.per_message_bytes + self.latency.per_tx_bytes * len(block)
        self.send_signed(
            recipient, messages.NEW_BLOCK, self._new_block_body(block), payload_bytes=payload_bytes
        )
