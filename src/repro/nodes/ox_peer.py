"""The order-execute (OX) peer: execute every transaction sequentially.

In the OX paradigm every peer receives the totally ordered blocks from the
ordering service and executes every transaction, one after the other, against
its local copy of the state.  Sequential execution makes the paradigm immune
to contention (there is nothing to conflict with) but caps throughput at the
single-threaded execution rate — the flat line of Figure 6.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SystemConfig
from repro.contracts.base import ContractRegistry
from repro.core.block import Block
from repro.crypto.signatures import KeyRegistry
from repro.ledger.ledger import Ledger
from repro.ledger.state import WorldState
from repro.metrics.collector import MetricsCollector
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode, BlockBatchMixin, BlockCatchupMixin
from repro.simulation import Environment, Store


class OXPeerNode(BaseNode, BlockBatchMixin, BlockCatchupMixin):
    """A peer that executes every transaction of every block sequentially."""


    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        contracts: ContractRegistry,
        config: SystemConfig,
        collector: Optional[MetricsCollector] = None,
        initial_state: Optional[Dict[str, object]] = None,
        newblock_quorum: int = 1,
        is_reference: bool = False,
        datacenter: Optional[str] = None,
    ) -> None:
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.contracts = contracts
        self.collector = collector
        self.newblock_quorum = newblock_quorum
        self.is_reference = is_reference
        self.state = WorldState(initial_state or {})
        self.ledger = Ledger()
        self._block_votes: Dict[int, Dict[str, str]] = {}
        self._valid_blocks: Dict[int, Block] = {}
        self._execution_queue: Store = Store(env)
        self._next_sequence = 1
        self.transactions_committed = 0
        self.transactions_aborted = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher plus the single sequential execution worker."""
        if self._started:
            return
        super().start()
        self.env.process(self._execution_loop(), name=f"{self.node_id}-exec")

    # ----------------------------------------------------------- message path
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.NEW_BLOCK:
            yield from self._handle_new_block(envelope)
        elif kind == messages.TIP_ANNOUNCE:
            yield from self._handle_tip_announce(envelope)

    def _handle_new_block(self, envelope: Envelope):
        yield self.cost_model.signature + self.cost_model.block_hash
        if not self.verify_envelope(envelope):
            return
        block = envelope.message.body.get("block")
        if not isinstance(block, Block):
            return
        votes = self._block_votes.setdefault(block.sequence, {})
        votes[envelope.sender] = block.digest()
        matching = sum(1 for digest in votes.values() if digest == block.digest())
        if matching < self.newblock_quorum or block.sequence in self._valid_blocks:
            return
        if block.sequence < self._next_sequence:
            return
        self._valid_blocks[block.sequence] = block
        self._fetch_gap_before(envelope.sender, block.sequence)
        self._release_ready_blocks()

    def _release_ready_blocks(self) -> None:
        while self._next_sequence in self._valid_blocks:
            block = self._valid_blocks.pop(self._next_sequence)
            self._next_sequence += 1
            self._execution_queue.put(block)

    # --------------------------------------------------------------- execution
    def _execution_loop(self):
        """Execute blocks in order, each transaction strictly after the previous."""
        while True:
            block: Block = yield self._execution_queue.get()
            transactions = block.transactions
            if transactions and self._can_batch():
                # One sleep covering the whole block; commit times are
                # pre-derived with the same one-addition-per-transaction float
                # arithmetic the per-transaction path produces, and the wake
                # lands on the exact final commit time (timeout_at), so
                # recorded metrics, state and ledger are bit-identical.
                cost = self.cost_model.tx_execution
                commit_at = self.env.now
                times = []
                for _ in transactions:
                    commit_at += cost
                    times.append(commit_at)
                yield self.env.timeout_at(commit_at)
                for tx, at in zip(transactions, times):
                    self._execute_one(tx, at)
            else:
                for tx in transactions:
                    yield self.cost_model.tx_execution
                    self._execute_one(tx, self.env.now)
            self.ledger.append(block)
            self._block_votes.pop(block.sequence, None)
            if self.is_reference and self.collector is not None:
                self.collector.record_block_commit()

    def _execute_one(self, tx, commit_at: float) -> None:
        """Execute ``tx`` against local state, recording its commit at ``commit_at``."""
        result = self.contracts.execute(tx, self.state, executed_by=self.node_id)
        aborted = result.is_abort
        if not aborted:
            self.state.apply_updates(result.updates)
            self.transactions_committed += 1
        else:
            self.transactions_aborted += 1
        if self.collector is not None:
            self.collector.record_commit(
                self.node_id,
                tx.tx_id,
                commit_at,
                aborted=aborted,
                reason=(result.abort_reason or "contract_abort") if aborted else "",
            )
        self.notify_xshard_commit(tx, result)
