"""XOV (execute-order-validate) peers: endorsers and committing peers.

The XOV paradigm follows Hyperledger Fabric: clients send transaction
proposals to the endorsers of the application (the peers holding its smart
contract), each endorser simulates the transaction against its current state
and returns the write set plus the versions of the records it observed.  The
client assembles the endorsements into a transaction and submits it to the
ordering service.  Every peer then validates each transaction of each ordered
block: a transaction whose observed versions are stale by commit time — i.e.
a conflicting transaction ordered earlier already updated one of its records —
is aborted, which is exactly why the paradigm's throughput collapses under
contention (Figure 6).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.common.config import SystemConfig
from repro.contracts.base import (
    CROSS_SHARD_APP,
    CROSS_SHARD_LOCK_ABORT,
    ContractRegistry,
    cross_shard_lock_holder,
    cross_shard_lock_key,
)
from repro.core.block import Block
from repro.core.transaction import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.ledger.ledger import Ledger
from repro.ledger.state import WorldState
from repro.metrics.collector import MetricsCollector
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode, BlockBatchMixin, BlockCatchupMixin
from repro.simulation import Environment, Store


class XOVPeerNode(BaseNode, BlockBatchMixin, BlockCatchupMixin):
    """A committing peer: validates ordered blocks and applies surviving writes."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        network: Network,
        registry: KeyRegistry,
        contracts: ContractRegistry,
        config: SystemConfig,
        collector: Optional[MetricsCollector] = None,
        initial_state: Optional[Dict[str, object]] = None,
        newblock_quorum: int = 1,
        is_reference: bool = False,
        datacenter: Optional[str] = None,
    ) -> None:
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.contracts = contracts
        self.collector = collector
        self.newblock_quorum = newblock_quorum
        self.is_reference = is_reference
        self.state = WorldState(initial_state or {})
        self.ledger = Ledger()
        self._block_votes: Dict[int, Dict[str, str]] = {}
        self._valid_blocks: Dict[int, Block] = {}
        self._validation_queue: Store = Store(env)
        self._next_sequence = 1
        self.transactions_committed = 0
        self.transactions_aborted = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher plus the sequential validation/commit worker."""
        if self._started:
            return
        super().start()
        self.env.process(self._validation_loop(), name=f"{self.node_id}-validate")

    # ----------------------------------------------------------- message path
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.NEW_BLOCK:
            yield from self._handle_new_block(envelope)
        elif kind == messages.TIP_ANNOUNCE:
            yield from self._handle_tip_announce(envelope)

    def _handle_new_block(self, envelope: Envelope):
        yield self.cost_model.signature + self.cost_model.block_hash
        if not self.verify_envelope(envelope):
            return
        block = envelope.message.body.get("block")
        if not isinstance(block, Block):
            return
        votes = self._block_votes.setdefault(block.sequence, {})
        votes[envelope.sender] = block.digest()
        matching = sum(1 for digest in votes.values() if digest == block.digest())
        if matching < self.newblock_quorum or block.sequence in self._valid_blocks:
            return
        if block.sequence < self._next_sequence:
            return
        self._valid_blocks[block.sequence] = block
        self._fetch_gap_before(envelope.sender, block.sequence)
        while self._next_sequence in self._valid_blocks:
            ready = self._valid_blocks.pop(self._next_sequence)
            self._next_sequence += 1
            self._validation_queue.put(ready)

    # -------------------------------------------------------------- validation
    def _validation_loop(self):
        """Validate blocks in order; commit survivors, abort stale transactions."""
        while True:
            block: Block = yield self._validation_queue.get()
            transactions = block.transactions
            if transactions and self._can_batch():
                # One sleep per block (see OXPeerNode._execution_loop): commit
                # times are pre-derived with the per-transaction float
                # arithmetic and the wake lands on the exact final time, so
                # recorded metrics, state and ledger are bit-identical.
                cost = self.cost_model.tx_validation
                commit_at = self.env.now
                times = []
                for _ in transactions:
                    commit_at += cost
                    times.append(commit_at)
                yield self.env.timeout_at(commit_at)
                for tx, at in zip(transactions, times):
                    self._validate_one(tx, at)
            else:
                for tx in transactions:
                    yield self.cost_model.tx_validation
                    self._validate_one(tx, self.env.now)
            self.ledger.append(block)
            self._block_votes.pop(block.sequence, None)
            if self.is_reference and self.collector is not None:
                self.collector.record_block_commit()

    def _validate_one(self, tx: Transaction, commit_at: float) -> None:
        """Validate/commit ``tx``, recording the outcome at ``commit_at``."""
        reason = self._validate_and_commit(tx)
        if self.collector is not None:
            self.collector.record_commit(
                self.node_id,
                tx.tx_id,
                commit_at,
                aborted=reason is not None,
                reason=reason or "",
            )

    def _validate_and_commit(self, tx: Transaction) -> Optional[str]:
        """MVCC-style validation: commit iff every observed version is still current.

        Returns ``None`` on commit, otherwise a stable abort-reason string:
        ``endorsement_missing`` (no endorsement in the payload), the endorsed
        contract's own reason (endorsement carried status "abort"), or
        ``mvcc_conflict`` (a stale read version — the paper's Figure 6 abort).
        """
        if tx.application == CROSS_SHARD_APP:
            # Cross-shard 2PC records skip endorsement and MVCC: they execute
            # deterministically at validation time against the committed state
            # (the same code path the serializability oracle replays).
            result = self.contracts.execute(tx, self.state, executed_by=self.node_id)
            if result.is_abort:
                self.transactions_aborted += 1
                self.notify_xshard_commit(tx, result)
                return result.abort_reason or "xshard_abort"
            self.state.apply_updates(result.updates)
            self.transactions_committed += 1
            self.notify_xshard_commit(tx, result)
            return None
        endorsement = tx.payload.get("endorsement")
        if not isinstance(endorsement, Mapping):
            self.transactions_aborted += 1
            return "endorsement_missing"
        if endorsement.get("status") == "abort":
            self.transactions_aborted += 1
            return str(endorsement.get("abort_reason") or "endorsed_abort")
        read_versions: Mapping[str, int] = endorsement.get("read_versions", {})
        for key, version in read_versions.items():
            if self.state.version(key) != version:
                self.transactions_aborted += 1
                return "mvcc_conflict"
        if self.contracts.cross_shard_locks_enabled:
            # Commit-time lock check: an endorsement computed before a PREPARE
            # locked one of its write keys must not overwrite the 2PC's
            # snapshot between PREPARE and COMMIT.
            for key in tx.rw_set.writes:
                holder = cross_shard_lock_holder(
                    self.state.get(cross_shard_lock_key(key))
                )
                if holder and holder != tx.tx_id:
                    self.transactions_aborted += 1
                    return CROSS_SHARD_LOCK_ABORT
        updates: Mapping[str, object] = endorsement.get("updates", {})
        self.state.apply_updates(updates)
        self.transactions_committed += 1
        return None


class EndorserNode(XOVPeerNode):
    """A committing peer that additionally endorses (speculatively executes) proposals."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._endorse_queue: Store = Store(self.env)
        self.endorsements_served = 0

    def _can_batch(self) -> bool:
        """Never batch an endorser's validation loop.

        Endorsement snapshots read this peer's state *between* two commits of
        a block, so collapsing the block into one end-of-block application
        would change what concurrently arriving endorsement requests observe.
        """
        return False

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher, validator and the (single-threaded) endorser."""
        if self._started:
            return
        super().start()
        self.env.process(self._endorsement_loop(), name=f"{self.node_id}-endorse")

    # ----------------------------------------------------------- message path
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.ENDORSE_REQUEST:
            yield self.cost_model.signature
            if self.verify_envelope(envelope):
                self._endorse_queue.put(envelope)
        else:
            yield from super().handle_envelope(envelope)

    # ------------------------------------------------------------ endorsement
    def _endorsement_loop(self):
        """Serve proposals one at a time, as the paper's single-chaincode endorsers do."""
        while True:
            envelope: Envelope = yield self._endorse_queue.get()
            tx = envelope.message.body.get("transaction")
            if not isinstance(tx, Transaction):
                continue
            if not self.contracts.is_agent(self.node_id, tx.application):
                continue
            yield (
                self.cost_model.tx_execution + self.cost_model.endorsement_overhead
            )
            # O(1) copy-on-write snapshot: the endorsement hot loop no longer
            # copies the whole world state per proposal.
            snapshot = self.state.snapshot()
            result = self.contracts.execute(tx, snapshot, executed_by=self.node_id)
            read_versions = snapshot.read_versions(tx.rw_set.sorted_keys())
            self.endorsements_served += 1
            self.send_signed(
                envelope.sender,
                messages.ENDORSE_RESPONSE,
                {
                    # The result rides as the object itself: its canonical
                    # encoding (and therefore this body's hash) is memoised,
                    # instead of re-canonicalising an exploded updates dict
                    # per endorser per proposal.  ``abort_reason`` is listed
                    # separately because the result's canonical tuple
                    # deliberately excludes it.
                    "tx_id": tx.tx_id,
                    "endorser": self.node_id,
                    "result": result,
                    "read_versions": read_versions,
                    "abort_reason": result.abort_reason,
                },
                payload_bytes=self.latency.per_tx_bytes,
            )
