"""Paradigm deployments: wire nodes, consensus, network and workload together.

Each deployment builds a fresh simulated cluster for one experiment run:

* :class:`~repro.paradigms.ox.OXDeployment` — order-execute: an ordering
  service plus peers that execute every transaction sequentially.
* :class:`~repro.paradigms.xov.XOVDeployment` — execute-order-validate:
  endorsers, an ordering service and committing peers with MVCC validation.
* :class:`~repro.paradigms.oxii.OXIIDeployment` — ParBlockchain: an ordering
  service that generates dependency graphs and executors that run Algorithms
  1–3.

:func:`~repro.paradigms.run.run_paradigm` is the one-call entry point used by
the examples and the benchmark harness.
"""

from repro.paradigms.base import Deployment, DeploymentHandles
from repro.paradigms.ox import OXDeployment
from repro.paradigms.xov import XOVDeployment
from repro.paradigms.oxii import OXIIDeployment
from repro.paradigms.run import PARADIGMS, execute_run, run_paradigm

__all__ = [
    "Deployment",
    "DeploymentHandles",
    "OXDeployment",
    "OXIIDeployment",
    "PARADIGMS",
    "XOVDeployment",
    "execute_run",
    "run_paradigm",
]
