"""Common machinery shared by the three paradigm deployments."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.identifiers import executor_id, orderer_id
from repro.common.registry import contract_registry
from repro.common.rng import child_seed
from repro.contracts.accounting import AccountingContract  # noqa: F401 - registers "accounting"
from repro.contracts.base import ContractRegistry
from repro.core.transaction import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.faults import FaultPlan
from repro.network.topology import FAR_DC, NEAR_DC, Topology
from repro.network.transport import Network
from repro.nodes.base import BaseNode
from repro.nodes.client import ClientGateway
from repro.nodes.orderer import OrdererNode
from repro.simulation import Environment
from repro.workload.arrivals import ArrivalSchedule

CLIENT_GATEWAY = "client-gateway"


class ScheduleDriver:
    """The open-loop workload driver: replay a fixed list at scheduled times.

    A *driver* is anything that feeds a built deployment with transactions
    and knows when the run is finished: ``start(handles, deployment)`` begins
    submission, ``duration``/``offered_rate`` shape the measurement window,
    ``is_complete(handles)`` ends the run early and ``extra_metrics(handles)``
    merges driver-specific aggregates into :class:`RunMetrics.extra`.  This
    class wraps the classic (transactions, schedule) replay;
    :class:`repro.agents.PopulationEngine` is the closed-loop counterpart.
    """

    def __init__(self, transactions: Sequence[Transaction], schedule: ArrivalSchedule) -> None:
        if len(transactions) != len(schedule):
            raise ValueError("schedule length must match the number of transactions")
        self.transactions = list(transactions)
        self.schedule = schedule

    @property
    def duration(self) -> float:
        """Length of the submission phase (last scheduled arrival)."""
        return self.schedule.duration

    @property
    def offered_rate(self) -> float:
        """Average offered load (tx/s) the driver generates."""
        return self.schedule.offered_rate

    def start(self, handles: "DeploymentHandles", deployment: "Deployment") -> None:
        """Begin open-loop submission through the client gateway."""
        handles.gateway.submit_schedule(self.transactions, self.schedule)

    def is_complete(self, handles: "DeploymentHandles") -> bool:
        """True once every submitted transaction completed everywhere."""
        return handles.collector.all_complete(len(self.transactions))

    def submitted_transactions(self) -> Sequence[Transaction]:
        """The transactions this driver submits (known up front here)."""
        return tuple(self.transactions)

    def extra_metrics(self, handles: "DeploymentHandles") -> Dict[str, object]:
        """Driver-specific aggregates merged into the run summary (none here)."""
        return {}


@dataclass
class DeploymentHandles:
    """Everything a built deployment exposes for inspection and for the run loop."""

    env: Environment
    network: Network
    registry: KeyRegistry
    contracts: ContractRegistry
    collector: MetricsCollector
    gateway: ClientGateway
    orderers: List[OrdererNode] = field(default_factory=list)
    peers: List[BaseNode] = field(default_factory=list)
    measurement_peers: List[str] = field(default_factory=list)
    #: Auxiliary protocol nodes that are neither orderers nor peers (today:
    #: the cross-shard 2PC coordinator).  Started alongside the cluster.
    extra_nodes: List[BaseNode] = field(default_factory=list)


@dataclass
class SharedInfra:
    """Simulation infrastructure shared by the shards of one sharded cluster.

    A :class:`~repro.sharding.ShardedDeployment` creates these once and hands
    them to each per-shard sub-deployment so every shard's nodes live on the
    same clock, network and key registry, and all contracts land in one global
    registry (applications are disjoint across shards).
    """

    env: Environment
    network: Network
    registry: KeyRegistry
    contracts: ContractRegistry


class Deployment(abc.ABC):
    """Template for building and running one paradigm's cluster."""

    #: Human-readable paradigm name used in reports ("OX", "XOV", "OXII").
    name: str = "abstract"

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self.handles: Optional[DeploymentHandles] = None
        #: Prefix applied to every node name — ``"s2-"`` for shard 2 of a
        #: sharded cluster, ``""`` (no-op) for a standalone deployment.
        self.node_prefix: str = ""
        #: Global application names hosted by this deployment; ``None`` means
        #: all of ``config.application_names()`` (the standalone case).
        self.applications: Optional[Sequence[str]] = None
        #: Shared simulation infrastructure (sharded clusters only).
        self.shared: Optional[SharedInfra] = None
        #: Whether build() creates a client gateway.  Sharded clusters use a
        #: single routing gateway instead of per-shard ones.
        self.include_gateway: bool = True

    # --------------------------------------------------------------- topology
    def datacenter_for(self, group: str) -> str:
        """Which data center a node group lives in (Figure 7 moves one group)."""
        return FAR_DC if group in self.config.far_groups else NEAR_DC

    def application_names(self) -> List[str]:
        """Application ids hosted by this deployment (a shard hosts a subset)."""
        if self.applications is not None:
            return list(self.applications)
        return self.config.application_names()

    def orderer_names(self) -> List[str]:
        """Names of the ordering-service nodes."""
        return [self.node_prefix + orderer_id(i) for i in range(self.config.num_orderers)]

    def executor_names(self) -> List[str]:
        """Names of the executor/endorser nodes (one group per application)."""
        return [self.node_prefix + executor_id(i) for i in range(self.config.num_executors)]

    def non_executor_names(self) -> List[str]:
        """Names of the passive (non-executor) peers."""
        return [
            f"{self.node_prefix}nonexec-{i}" for i in range(self.config.num_non_executors)
        ]

    def agents_of_application(self, index: int) -> List[str]:
        """Executor names hosting application ``index``'s contract."""
        per_app = self.config.executors_per_application
        names = self.executor_names()
        return names[index * per_app : (index + 1) * per_app]

    def build_contracts(self) -> ContractRegistry:
        """Install the configured contract per application on its agents.

        ``config.contract`` names a class in the global contract registry
        (:data:`repro.common.registry.contract_registry`); third-party
        contracts registered with ``@register_contract`` plug in here.
        """
        contract_cls = contract_registry.get(self.config.contract)
        contracts = self.shared.contracts if self.shared is not None else ContractRegistry()
        for index, application in enumerate(self.application_names()):
            contracts.install(
                contract_cls(application), agents=self.agents_of_application(index)
            )
        return contracts

    @property
    def newblock_quorum(self) -> int:
        """Matching NEWBLOCK messages a peer requires before trusting a block."""
        if self.config.consensus_protocol == "pbft":
            return self.config.max_faulty_orderers + 1
        return 1

    # ------------------------------------------------------------------ build
    @abc.abstractmethod
    def build(self, initial_state: Optional[Dict[str, object]] = None) -> DeploymentHandles:
        """Construct a fresh simulated cluster and return its handles."""

    def _build_common(
        self, measurement_peers: Sequence[str]
    ) -> DeploymentHandles:
        """Create the environment, network, registry and metrics collector.

        With :attr:`shared` set (per-shard sub-deployments), the environment,
        network and key registry come from the enclosing sharded cluster and
        only the per-shard metrics collector is created fresh.
        """
        if self.shared is not None:
            env = self.shared.env
            network = self.shared.network
            registry = self.shared.registry
        elif self.config.backend != "sim":
            from repro.realnet import build_realnet

            env, network = build_realnet(
                self.config.backend,
                speed=self.config.realtime_speed,
                topology=Topology(latency=self.config.latency, seed=self.config.seed),
            )
            registry = KeyRegistry(seed=str(self.config.seed))
        else:
            env = Environment()
            topology = Topology(latency=self.config.latency, seed=self.config.seed)
            # The fault plan's verdict stream (probabilistic drops/duplicates)
            # derives from the scenario seed so fault timings are reproducible
            # from (spec, seed) and decorrelated from the jitter stream.
            faults = FaultPlan(seed=child_seed(self.config.seed, "fault-verdicts"))
            network = Network(env, topology=topology, faults=faults)
            registry = KeyRegistry(seed=str(self.config.seed))
        collector = MetricsCollector(measurement_peers=measurement_peers)
        contracts = self.build_contracts()
        handles = DeploymentHandles(
            env=env,
            network=network,
            registry=registry,
            contracts=contracts,
            collector=collector,
            gateway=None,  # type: ignore[arg-type]  # set by the concrete build()
            measurement_peers=list(measurement_peers),
        )
        return handles

    def _build_orderers(
        self,
        handles: DeploymentHandles,
        block_targets: Sequence[str],
        generate_graphs: bool,
    ) -> List[OrdererNode]:
        """Create the ordering service nodes."""
        orderer_names = self.orderer_names()
        datacenter = self.datacenter_for("orderers")
        orderers = [
            OrdererNode(
                env=handles.env,
                node_id=name,
                network=handles.network,
                registry=handles.registry,
                orderer_peers=orderer_names,
                block_targets=list(block_targets),
                config=self.config,
                generate_graphs=generate_graphs,
                datacenter=datacenter,
            )
            for name in orderer_names
        ]
        handles.orderers = orderers
        return orderers

    def _build_gateway(self, handles: DeploymentHandles, mode: str) -> ClientGateway:
        """Create the client gateway in the right data center."""
        gateway = ClientGateway(
            env=handles.env,
            node_id=CLIENT_GATEWAY,
            network=handles.network,
            registry=handles.registry,
            config=self.config,
            orderer_entry=self.orderer_names()[0],
            collector=handles.collector,
            mode=mode,
            contracts=handles.contracts if mode == "endorse" else None,
            datacenter=self.datacenter_for("clients"),
        )
        handles.gateway = gateway
        return gateway

    # -------------------------------------------------------------------- run
    def run(
        self,
        transactions: Optional[Sequence[Transaction]] = None,
        schedule: Optional[ArrivalSchedule] = None,
        initial_state: Optional[Dict[str, object]] = None,
        offered_load: Optional[float] = None,
        warmup_fraction: float = 0.2,
        drain: float = 10.0,
        poll_interval: float = 0.05,
        fault_schedule: Optional[object] = None,
        poll_hook: Optional[Callable[[DeploymentHandles], None]] = None,
        driver: Optional[object] = None,
        profile: bool = False,
    ) -> RunMetrics:
        """Build a fresh cluster, drive the workload and summarise the run.

        The workload comes either from ``(transactions, schedule)`` — wrapped
        in an open-loop :class:`ScheduleDriver` — or from an explicit
        ``driver`` implementing the driver protocol (e.g. the closed-loop
        :class:`repro.agents.PopulationEngine`).  The simulation ends as soon
        as ``driver.is_complete`` reports done, or after ``driver.duration +
        drain`` simulated seconds, whichever comes first.  Throughput and
        latency are computed over the steady-state window
        ``[warmup_fraction * duration, duration]`` — completions during the
        drain tail are excluded, matching the paper's "average measured
        during the steady state" methodology.

        ``fault_schedule`` is any object exposing ``install(handles,
        deployment)`` — the hook the fault harness uses to register seeded
        crash/partition/link events against the simulated clock
        (:class:`repro.testing.FaultInjector`).  ``poll_hook`` is invoked with
        the live handles on every monitor poll — the in-flight oracle hook
        point, letting invariant probes observe the deployment mid-run.

        With ``profile=True`` a :class:`repro.profiling.PhaseProfiler` is
        installed on the environment and the per-phase wall-clock breakdown
        lands in ``RunMetrics.extra["phase_times"]``.  Profiling never changes
        simulated behaviour — only wall-clock instrumentation is added.
        """
        if driver is None:
            if transactions is None or schedule is None:
                raise ValueError("run() needs either a driver or (transactions, schedule)")
            driver = ScheduleDriver(transactions, schedule)
        if fault_schedule is not None and self.config.backend != "sim":
            raise ConfigurationError(
                "fault schedules require the deterministic 'sim' backend — "
                "real backends cannot reproduce injected fault timings"
            )
        profiler = None
        if profile:
            from repro.profiling import PhaseProfiler

            profiler = PhaseProfiler()
            with profiler.timed("build"):
                handles = self.build(initial_state=initial_state)
            handles.env._profiler = profiler
            # Metrics recording happens inside node processes; wrapping the
            # hot recording entry point re-attributes that time to "metrics".
            handles.collector.record_commit = profiler.wrap(
                "metrics", handles.collector.record_commit
            )
        else:
            handles = self.build(initial_state=initial_state)
        env = handles.env
        if fault_schedule is None:
            # No fault schedule means every message on the wire is built by
            # honest protocol code, so signature verification would succeed by
            # construction: skip the per-message canonicalise+hash+HMAC wall
            # cost.  Simulated signature latencies are still charged, and the
            # signature bytes are observable nowhere, so ledgers, metrics and
            # fingerprints are bit-identical with crypto on.
            handles.registry.trust_channels()
        for orderer in handles.orderers:
            orderer.start()
        for peer in handles.peers:
            peer.start()
        for node in handles.extra_nodes:
            node.start()
        if fault_schedule is not None:
            fault_schedule.install(handles, self)
        driver.start(handles, self)

        duration = driver.duration
        horizon = duration + drain

        def monitor():
            while env.now < horizon:
                if poll_hook is not None:
                    poll_hook(handles)
                if driver.is_complete(handles):
                    return "complete"
                yield poll_interval
            return "horizon"

        wall_start = time.perf_counter()
        env.run(until=env.process(monitor(), name="run-monitor"))
        wall_clock = time.perf_counter() - wall_start
        warmup = duration * warmup_fraction
        measurement_end = duration
        if self.config.backend != "sim":
            # Real backends leak event-loop wall time into simulated time
            # (amplified by realtime_speed), pushing completions past the
            # nominal duration — the paper's steady-state window does not
            # transfer.  Count the whole run instead; the headline number
            # for real backends is wall_clock_throughput anyway.
            measurement_end = max(duration, float(env.now))
        load = offered_load if offered_load is not None else driver.offered_rate
        deduplicated = float(sum(o.requests_deduplicated for o in handles.orderers))
        extra = {
            "blocks_ordered": float(sum(o.blocks_ordered for o in handles.orderers)),
            "requests_rejected": float(sum(o.requests_rejected for o in handles.orderers)),
            "requests_deduplicated": deduplicated,
            "simulated_time": float(env.now),
        }
        if self.config.backend != "sim":
            # Real backends: the wall clock is the measurement.  These keys
            # (like the fault-run transport counters below) are added only
            # off the default path so fault-free simulated rows stay
            # bit-identical across this feature.
            extra["backend"] = self.config.backend
            extra["realtime_speed"] = float(self.config.realtime_speed)
            extra["wall_clock_seconds"] = wall_clock
            extra["wall_clock_throughput"] = (
                handles.collector.committed_count / wall_clock if wall_clock > 0 else 0.0
            )
        if fault_schedule is not None:
            # Conservation-law counters: under faults, sent != delivered and
            # the difference must be fully explained (see BaseTransport.reconcile).
            extra["transport"] = {
                key: int(value) for key, value in handles.network.reconcile().items()
            }
        extra.update(driver.extra_metrics(handles))

        def summarise() -> RunMetrics:
            return handles.collector.summarise(
                paradigm=self.name,
                offered_load=load,
                warmup=warmup,
                horizon=measurement_end,
                messages_sent=handles.network.messages_sent,
                extra=extra,
                extra_abort_reasons={"dedup_drop": int(deduplicated)} if deduplicated else None,
            )

        if profiler is None:
            return summarise()
        with profiler.timed("metrics"):
            metrics = summarise()
        # summarise() copied ``extra`` into a plain dict, so the snapshot —
        # which includes the summarise span itself — is added afterwards.
        metrics.extra["phase_times"] = profiler.snapshot()  # type: ignore[index]
        return metrics
