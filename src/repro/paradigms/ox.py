"""The classic order-execute (OX) deployment."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.registry import contract_registry, register_paradigm
from repro.contracts.base import ContractRegistry
from repro.nodes.ox_peer import OXPeerNode
from repro.paradigms.base import Deployment, DeploymentHandles
from repro.ledger.state import WorldState


@register_paradigm("OX")
class OXDeployment(Deployment):
    """Order-execute: order with the ordering service, execute sequentially everywhere.

    There is no executor/non-executor distinction in OX — every peer executes
    every transaction — so the peer count equals the OXII deployment's
    executor plus non-executor count (keeping the comparison fair) and every
    peer is a measurement peer.
    """

    name = "OX"

    def peer_names(self) -> List[str]:
        """Names of the OX peers (as many as OXII has executors + passives)."""
        total = self.config.num_executors + self.config.num_non_executors
        return [f"{self.node_prefix}peer-{i}" for i in range(total)]

    def build_contracts(self) -> ContractRegistry:
        """Every OX peer runs every smart contract (no confidentiality boundary)."""
        contract_cls = contract_registry.get(self.config.contract)
        contracts = self.shared.contracts if self.shared is not None else ContractRegistry()
        peer_names = self.peer_names()
        for application in self.application_names():
            contracts.install(contract_cls(application), agents=peer_names)
        return contracts

    def build(self, initial_state: Optional[Dict[str, object]] = None) -> DeploymentHandles:
        peer_names = self.peer_names()
        handles = self._build_common(measurement_peers=peer_names)
        # Seed one WorldState and hand every peer a copy-on-write clone of it
        # (WorldState(WorldState) shares entries): the initial state is
        # wrapped into VersionedValues once per run, not once per peer.
        initial_state = WorldState(initial_state or {})
        self._build_orderers(handles, block_targets=peer_names, generate_graphs=False)
        peer_dc = self.datacenter_for("executors")
        peers = [
            OXPeerNode(
                env=handles.env,
                node_id=name,
                network=handles.network,
                registry=handles.registry,
                contracts=handles.contracts,
                config=self.config,
                collector=handles.collector,
                initial_state=initial_state,
                newblock_quorum=self.newblock_quorum,
                is_reference=(index == 0),
                datacenter=peer_dc,
            )
            for index, name in enumerate(peer_names)
        ]
        handles.peers = peers
        if self.include_gateway:
            self._build_gateway(handles, mode="direct")
        self.handles = handles
        return handles
