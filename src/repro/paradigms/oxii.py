"""The OXII / ParBlockchain deployment."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.registry import register_paradigm
from repro.nodes.executor import ExecutorNode
from repro.paradigms.base import Deployment, DeploymentHandles
from repro.ledger.state import WorldState


@register_paradigm("OXII")
class OXIIDeployment(Deployment):
    """ParBlockchain: order, generate dependency graphs, execute in parallel.

    The cluster consists of the ordering service (graph generation enabled),
    one executor group per application and optionally some passive
    non-executor peers.  Only the executors are measurement peers — passive
    peers are merely informed of the blockchain state, which is why moving
    them across data centers does not change the measured performance
    (Figure 7(d)).
    """

    name = "OXII"

    def build(self, initial_state: Optional[Dict[str, object]] = None) -> DeploymentHandles:
        executor_names = self.executor_names()
        non_executor_names = self.non_executor_names()
        all_peer_names = executor_names + non_executor_names
        handles = self._build_common(measurement_peers=executor_names)
        # Seed one WorldState and hand every peer a copy-on-write clone of it
        # (WorldState(WorldState) shares entries): the initial state is
        # wrapped into VersionedValues once per run, not once per peer.
        initial_state = WorldState(initial_state or {})

        self._build_orderers(handles, block_targets=all_peer_names, generate_graphs=True)
        executor_dc = self.datacenter_for("executors")
        non_executor_dc = self.datacenter_for("non_executors")

        peers = []
        for index, name in enumerate(executor_names):
            peers.append(
                ExecutorNode(
                    env=handles.env,
                    node_id=name,
                    network=handles.network,
                    registry=handles.registry,
                    contracts=handles.contracts,
                    config=self.config,
                    executor_peers=all_peer_names,
                    collector=handles.collector,
                    initial_state=initial_state,
                    newblock_quorum=self.newblock_quorum,
                    is_reference=(index == 0),
                    datacenter=executor_dc,
                )
            )
        for name in non_executor_names:
            peers.append(
                ExecutorNode(
                    env=handles.env,
                    node_id=name,
                    network=handles.network,
                    registry=handles.registry,
                    contracts=handles.contracts,
                    config=self.config,
                    executor_peers=all_peer_names,
                    collector=handles.collector,
                    initial_state=initial_state,
                    newblock_quorum=self.newblock_quorum,
                    is_reference=False,
                    datacenter=non_executor_dc,
                )
            )
        handles.peers = peers
        if self.include_gateway:
            self._build_gateway(handles, mode="direct")
        self.handles = handles
        return handles
