"""One-call experiment runner used by examples, benchmarks and the CLI."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.metrics.collector import RunMetrics
from repro.paradigms.base import Deployment
from repro.paradigms.ox import OXDeployment
from repro.paradigms.oxii import OXIIDeployment
from repro.paradigms.xov import XOVDeployment
from repro.workload.arrivals import poisson_rate
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

#: Registry of paradigm names to deployment classes.
PARADIGMS: Dict[str, Type[Deployment]] = {
    "OX": OXDeployment,
    "XOV": XOVDeployment,
    "OXII": OXIIDeployment,
}


def run_paradigm(
    paradigm: str,
    system_config: Optional[SystemConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
    offered_load: float = 1000.0,
    duration: float = 2.0,
    warmup_fraction: float = 0.2,
    drain: float = 20.0,
    seed: Optional[int] = None,
) -> RunMetrics:
    """Run one paradigm against one workload at one offered load.

    ``offered_load`` is the open-loop client request rate (transactions per
    second) and ``duration`` the length of the submission phase in simulated
    seconds; the run keeps going (up to ``drain`` extra seconds) until every
    submitted transaction has completed at every measurement peer.
    """
    try:
        deployment_cls = PARADIGMS[paradigm.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown paradigm {paradigm!r}; expected one of {sorted(PARADIGMS)}"
        ) from None
    if offered_load <= 0:
        raise ConfigurationError("offered_load must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")

    system_config = system_config or SystemConfig()
    workload_config = workload_config or WorkloadConfig(
        num_applications=system_config.num_applications
    )
    if seed is not None:
        workload_config = WorkloadConfig(
            num_applications=workload_config.num_applications,
            num_clients=workload_config.num_clients,
            contention=workload_config.contention,
            conflict_scope=workload_config.conflict_scope,
            transfer_amount=workload_config.transfer_amount,
            initial_balance=workload_config.initial_balance,
            seed=seed,
            hot_accounts=workload_config.hot_accounts,
        )

    generator = WorkloadGenerator(workload_config)
    count = max(1, int(round(offered_load * duration)))
    transactions = generator.generate(count)
    schedule = poisson_rate(count, offered_load, seed=workload_config.seed)
    initial_state = generator.initial_state(transactions)

    deployment = deployment_cls(system_config)
    return deployment.run(
        transactions=transactions,
        schedule=schedule,
        initial_state=initial_state,
        offered_load=offered_load,
        warmup_fraction=warmup_fraction,
        drain=drain,
    )
