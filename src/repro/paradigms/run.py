"""One-call experiment runner used by examples, benchmarks and the CLI.

:func:`execute_run` is the primitive every layer shares: resolve the paradigm
and workload generator from the global registries, generate the workload, and
run one deployment at one offered load.  :func:`run_paradigm` is the legacy
public entry point, kept as a deprecated shim over :func:`execute_run`; new
code should describe experiments declaratively with
:mod:`repro.experiments` and let the sweep engine call :func:`execute_run`.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.registry import paradigm_registry, workload_registry
from repro.common.rng import child_seed
from repro.metrics.collector import RunMetrics
from repro.workload.arrivals import poisson_rate
from repro.workload.generator import WorkloadConfig

#: Legacy name→deployment mapping, now a live read-only view over
#: :data:`repro.common.registry.paradigm_registry` so paradigms registered
#: with ``@register_paradigm`` appear here automatically.
PARADIGMS = paradigm_registry.as_mapping()


def prepare_workload(
    generator: str,
    system_config: SystemConfig,
    workload_config: "WorkloadConfig",
    offered_load: float,
    duration: float,
):
    """Resolve one run's workload: transactions, arrivals and initial state.

    The single place where a run's inputs are derived — shared by
    :func:`execute_run` and the fault harness
    (:func:`repro.testing.run_scenario`), so adversarial scenarios replay
    exactly the workload a production run would submit.  Returns
    ``(system_config, transactions, schedule, initial_state)``; the returned
    system config has the generator's declared contract installed.

    The arrival stream derives a labelled child seed: seeding it with the
    workload seed itself would draw from the identical Mersenne stream the
    generator consumes (correlated randomness — found by the determinism
    audit).
    """
    generator_factory = workload_registry.get(generator)
    # A workload generator may declare the registered contract its
    # transactions are written for (WorkloadBase.contract); align the
    # deployment so e.g. generator="kvstore" installs the KV contract without
    # every spec having to repeat system.contract.
    required_contract = getattr(generator_factory, "contract", None)
    if required_contract and system_config.contract != required_contract:
        system_config = system_config.with_overrides(contract=required_contract)
    workload = generator_factory(workload_config)
    count = max(1, int(round(offered_load * duration)))
    transactions = workload.generate(count)
    schedule = poisson_rate(
        count, offered_load, seed=child_seed(workload_config.seed, "arrivals")
    )
    initial_state = workload.initial_state(transactions)
    return system_config, transactions, schedule, initial_state


def prepare_driver(
    generator: str,
    system_config: SystemConfig,
    workload_config: "WorkloadConfig",
    offered_load: float,
    duration: float,
):
    """Resolve one run's workload *driver*: open- or closed-loop.

    Returns ``(system_config, driver, initial_state)``.  Generators that
    declare ``population_driven = True`` (the agent-based workloads) build a
    closed-loop :class:`repro.agents.PopulationEngine`; everything else goes
    through :func:`prepare_workload` and is wrapped in the open-loop
    :class:`repro.paradigms.base.ScheduleDriver`, so both kinds plug into
    the same :meth:`Deployment.run` loop.
    """
    num_shards = system_config.shards.num_shards
    if num_shards > workload_config.conflict.keyspace:
        raise ConfigurationError(
            f"conflict.keyspace ({workload_config.conflict.keyspace}) is smaller than "
            f"shards.num_shards ({num_shards}) — every shard needs at least one key; "
            f"raise conflict.keyspace or lower shards.num_shards"
        )
    generator_factory = workload_registry.get(generator)
    if getattr(generator_factory, "population_driven", False):
        required_contract = getattr(generator_factory, "contract", None)
        if required_contract and system_config.contract != required_contract:
            system_config = system_config.with_overrides(contract=required_contract)
        workload = generator_factory(workload_config)
        driver = workload.build_driver(offered_load=offered_load, duration=duration)
        initial_state = driver.population.initial_state()
        return system_config, driver, initial_state
    from repro.paradigms.base import ScheduleDriver

    system_config, transactions, schedule, initial_state = prepare_workload(
        generator, system_config, workload_config, offered_load, duration
    )
    return system_config, ScheduleDriver(transactions, schedule), initial_state


def make_deployment(paradigm: str, system_config: SystemConfig):
    """Instantiate ``paradigm``'s deployment, sharded if the config says so.

    The single construction point shared by :func:`execute_run` and the fault
    harness (:func:`repro.testing.run_scenario`): with ``shards.num_shards >
    1`` the paradigm deployment is wrapped in a
    :class:`repro.sharding.ShardedDeployment`; otherwise (including an
    explicit 1-shard config) it is built directly, so unsharded behaviour is
    untouched.
    """
    deployment_cls = paradigm_registry.get(paradigm)
    if system_config.shards.num_shards > 1:
        from repro.sharding import ShardedDeployment

        return ShardedDeployment(deployment_cls, system_config)
    return deployment_cls(system_config)


def execute_run(
    paradigm: str,
    system_config: Optional[SystemConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
    offered_load: float = 1000.0,
    duration: float = 2.0,
    warmup_fraction: float = 0.2,
    drain: float = 20.0,
    seed: Optional[int] = None,
    generator: str = "accounting",
    faults: Optional[object] = None,
    profile: Optional[bool] = None,
) -> RunMetrics:
    """Run one paradigm against one workload at one offered load.

    ``offered_load`` is the open-loop client request rate (transactions per
    second) and ``duration`` the length of the submission phase in simulated
    seconds; the run keeps going (up to ``drain`` extra seconds) until every
    submitted transaction has completed at every measurement peer.
    ``generator`` names a workload-generator factory in the global workload
    registry.

    ``faults`` makes the run adversarial: a
    :class:`repro.testing.FaultSchedule`, a :class:`repro.testing.FaultInjector`,
    or the dict form a :class:`~repro.experiments.spec.ScenarioSpec` carries in
    its ``faults`` section (either ``{"events": [...]}`` or ``{"random":
    {...}}``, resolved deterministically from the workload seed).

    ``profile=True`` enables the phase profiler (see :mod:`repro.profiling`),
    putting a per-phase wall-clock breakdown in
    ``RunMetrics.extra["phase_times"]``; ``profile=None`` (the default)
    defers to the ``REPRO_PROFILE`` environment variable.
    """
    paradigm_registry.get(paradigm)  # fail fast on unknown names
    if offered_load <= 0:
        raise ConfigurationError("offered_load must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")

    system_config = system_config or SystemConfig()
    workload_config = workload_config or WorkloadConfig(
        num_applications=system_config.num_applications
    )
    if seed is not None:
        workload_config = replace(workload_config, seed=seed)

    system_config, driver, initial_state = prepare_driver(
        generator, system_config, workload_config, offered_load, duration
    )

    fault_schedule = None
    if faults is not None:
        from repro.testing import resolve_fault_injector

        fault_schedule = resolve_fault_injector(
            faults,
            seed=workload_config.seed,
            system_config=system_config,
            default_horizon=duration,
        )

    if profile is None:
        from repro.profiling import profiling_requested

        profile = profiling_requested()

    deployment = make_deployment(paradigm, system_config)
    return deployment.run(
        driver=driver,
        initial_state=initial_state,
        offered_load=offered_load,
        warmup_fraction=warmup_fraction,
        drain=drain,
        fault_schedule=fault_schedule,
        profile=profile,
    )


def run_paradigm(
    paradigm: str,
    system_config: Optional[SystemConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
    offered_load: float = 1000.0,
    duration: float = 2.0,
    warmup_fraction: float = 0.2,
    drain: float = 20.0,
    seed: Optional[int] = None,
) -> RunMetrics:
    """Deprecated single-run entry point; use :mod:`repro.experiments` instead.

    Behaves exactly like :func:`execute_run` with the built-in accounting
    workload generator; kept (and tested) for backwards compatibility.
    """
    warnings.warn(
        "run_paradigm() is deprecated; describe the run as an ExperimentSpec and "
        "use repro.experiments.SweepEngine (or repro.paradigms.run.execute_run "
        "for a single point)",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_run(
        paradigm,
        system_config=system_config,
        workload_config=workload_config,
        offered_load=offered_load,
        duration=duration,
        warmup_fraction=warmup_fraction,
        drain=drain,
        seed=seed,
    )
