"""The execute-order-validate (XOV, Hyperledger-Fabric-style) deployment."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.registry import register_paradigm
from repro.nodes.xov import EndorserNode, XOVPeerNode
from repro.paradigms.base import Deployment, DeploymentHandles
from repro.ledger.state import WorldState


@register_paradigm("XOV")
class XOVDeployment(Deployment):
    """Execute-order-validate: endorse first, order, then validate on every peer.

    Endorsers double as committing peers; non-executor nodes are committing
    peers without chaincode.  Every peer validates every block, so all of them
    are measurement peers — which is why, unlike OXII, XOV's measured
    performance degrades when the non-executor peers move to a far data center
    (Figure 7(d)).
    """

    name = "XOV"

    def build(self, initial_state: Optional[Dict[str, object]] = None) -> DeploymentHandles:
        endorser_names = self.executor_names()
        non_executor_names = self.non_executor_names()
        all_peer_names = endorser_names + non_executor_names
        handles = self._build_common(measurement_peers=all_peer_names)
        # Seed one WorldState and hand every peer a copy-on-write clone of it
        # (WorldState(WorldState) shares entries): the initial state is
        # wrapped into VersionedValues once per run, not once per peer.
        initial_state = WorldState(initial_state or {})

        self._build_orderers(handles, block_targets=all_peer_names, generate_graphs=False)
        endorser_dc = self.datacenter_for("executors")
        non_executor_dc = self.datacenter_for("non_executors")

        peers = []
        for index, name in enumerate(endorser_names):
            peers.append(
                EndorserNode(
                    env=handles.env,
                    node_id=name,
                    network=handles.network,
                    registry=handles.registry,
                    contracts=handles.contracts,
                    config=self.config,
                    collector=handles.collector,
                    initial_state=initial_state,
                    newblock_quorum=self.newblock_quorum,
                    is_reference=(index == 0),
                    datacenter=endorser_dc,
                )
            )
        for name in non_executor_names:
            peers.append(
                XOVPeerNode(
                    env=handles.env,
                    node_id=name,
                    network=handles.network,
                    registry=handles.registry,
                    contracts=handles.contracts,
                    config=self.config,
                    collector=handles.collector,
                    initial_state=initial_state,
                    newblock_quorum=self.newblock_quorum,
                    is_reference=False,
                    datacenter=non_executor_dc,
                )
            )
        handles.peers = peers
        if self.include_gateway:
            self._build_gateway(handles, mode="endorse")
        self.handles = handles
        return handles
