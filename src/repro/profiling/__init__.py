"""Opt-in profiling for end-to-end runs.

Two complementary layers:

* :class:`PhaseProfiler` — lightweight wall-clock timers attributing every
  simulator dispatch to a run phase (ordering / consensus / execution /
  transport / client / metrics), landing in ``RunMetrics.extra["phase_times"]``.
* :mod:`repro.profiling.report` — full ``cProfile`` capture with top-N
  hotspot extraction, powering ``bench --profile`` and the CI hotspot
  artifact.

Both are strictly opt-in: with profiling off the simulator pays a single
``is None`` check per event dispatch and nothing else.
"""

from repro.profiling.profiler import (
    ENV_FLAG,
    PHASES,
    PhaseProfiler,
    classify_process_name,
    profiling_requested,
)
from repro.profiling.report import (
    capture_profile,
    format_hotspots,
    hotspot_rows,
    write_hotspot_report,
)

__all__ = [
    "ENV_FLAG",
    "PHASES",
    "PhaseProfiler",
    "classify_process_name",
    "profiling_requested",
    "capture_profile",
    "format_hotspots",
    "hotspot_rows",
    "write_hotspot_report",
]
