"""Per-phase wall-clock attribution for end-to-end runs.

The :class:`PhaseProfiler` hooks into ``Environment.step``: every event
callback (typically a ``Process._resume``) and every lean scheduled callback
is classified into a run phase and its wall-clock time credited to that
phase.  Classification is by construction cheap and deterministic:

* objects may carry an explicit ``profile_phase`` class attribute (the
  transport does — its delivery callbacks are "transport");
* processes are classified from their ``name`` via
  :func:`classify_process_name` (results are memoised per name);
* everything else is "other".

Nested attribution uses an enter/exit stack: when the metrics collector is
entered from inside an executor's process, the inner span is credited to
"metrics" and the surrounding time stays with "execution".
"""

from __future__ import annotations

import os
import time
from functools import partial
from typing import Any, Callable, Dict, List

#: Canonical phase names in reporting order.  ``snapshot`` also appends a
#: ``total`` key summing every phase.
PHASES = (
    "build",
    "client",
    "ordering",
    "consensus",
    "execution",
    "transport",
    "metrics",
    "other",
)

#: Environment variable enabling profiling for entry points that do not take
#: an explicit flag (``REPRO_PROFILE=1``).
ENV_FLAG = "REPRO_PROFILE"

_TRUTHY = {"1", "true", "yes", "on"}


def profiling_requested() -> bool:
    """True when the :data:`ENV_FLAG` environment variable asks for profiling."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


#: Process-name suffix → phase.  Order matters only for documentation; the
#: suffixes are mutually exclusive in practice.
_SUFFIX_PHASES = (
    ("-cons", "consensus"),
    ("-propose", "consensus"),
    ("-proposer", "consensus"),
    ("-sealer", "ordering"),
    ("-ticker", "ordering"),
    ("-tip", "ordering"),
    ("-retry", "ordering"),
    ("-exec", "execution"),
    ("-validate", "execution"),
    ("-endorse", "execution"),
    ("-retransmit", "execution"),
    ("-submit", "client"),
)


def classify_process_name(name: str) -> str:
    """Map a simulation process name to its run phase.

    Covers every process the deployments spawn (sharded node prefixes like
    ``s2-`` included, because the checks are substring-based); unknown names
    fall into "other".
    """
    for suffix, phase in _SUFFIX_PHASES:
        if name.endswith(suffix):
            return phase
    if "-block-" in name or name == "cpu-work":
        return "execution"
    if name.startswith("agents-"):
        return "client"
    if name.endswith("-main"):
        if "client" in name:
            return "client"
        if "orderer" in name or "coordinator" in name:
            return "ordering"
        if "executor" in name or "nonexec" in name or "peer" in name:
            return "execution"
    return "other"


class PhaseProfiler:
    """Accumulates wall-clock seconds per run phase.

    Installed on ``Environment._profiler`` by ``Deployment.run`` when
    profiling is requested; the simulator then routes every dispatch through
    :meth:`run_callback`/:meth:`run_plain`.  Phases can also be timed
    explicitly with :meth:`timed` (build, summarise) or by wrapping a hot
    method with :meth:`wrap` (metrics recording).
    """

    __slots__ = ("phase_times", "_stack", "_name_cache")

    def __init__(self) -> None:
        self.phase_times: Dict[str, float] = {}
        # Stack of [phase, span_start] frames; entering a nested phase
        # pauses the parent's span, exiting resumes it.
        self._stack: List[list] = []
        self._name_cache: Dict[str, str] = {}

    # ---------------------------------------------------------- classification
    def classify_callable(self, item: Callable[..., Any]) -> str:
        """Phase of a dispatched callable (bound method, partial or plain)."""
        func = item
        if isinstance(func, partial):
            func = func.func
        owner = getattr(func, "__self__", None)
        if owner is None:
            return "other"
        phase = getattr(owner, "profile_phase", None)
        if phase is not None:
            return phase
        name = getattr(owner, "name", None)
        if type(name) is str:
            cached = self._name_cache.get(name)
            if cached is None:
                cached = classify_process_name(name)
                self._name_cache[name] = cached
            return cached
        return "other"

    # ------------------------------------------------------------------ timing
    def enter(self, phase: str) -> None:
        """Start (or nest into) ``phase`` at the current wall-clock time."""
        now = time.perf_counter()
        stack = self._stack
        if stack:
            frame = stack[-1]
            self._credit(frame[0], now - frame[1])
        stack.append([phase, now])

    def exit(self) -> None:
        """Close the innermost phase span, resuming its parent if any."""
        frame = self._stack.pop()
        now = time.perf_counter()
        self._credit(frame[0], now - frame[1])
        if self._stack:
            self._stack[-1][1] = now

    def _credit(self, phase: str, elapsed: float) -> None:
        times = self.phase_times
        times[phase] = times.get(phase, 0.0) + elapsed

    def timed(self, phase: str) -> "_PhaseSpan":
        """Context manager timing its body as ``phase``."""
        return _PhaseSpan(self, phase)

    def wrap(self, phase: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Return ``fn`` instrumented to attribute its calls to ``phase``."""

        def instrumented(*args: Any, **kwargs: Any) -> Any:
            self.enter(phase)
            try:
                return fn(*args, **kwargs)
            finally:
                self.exit()

        return instrumented

    # ------------------------------------------------------- simulator hooks
    def run_callback(self, callback: Callable[[Any], None], event: Any) -> None:
        """Dispatch one event callback under phase timing."""
        self.enter(self.classify_callable(callback))
        try:
            callback(event)
        finally:
            self.exit()

    def run_plain(self, item: Callable[[], None]) -> None:
        """Dispatch one lean scheduled callback under phase timing."""
        self.enter(self.classify_callable(item))
        try:
            item()
        finally:
            self.exit()

    # ----------------------------------------------------------------- output
    def snapshot(self) -> Dict[str, float]:
        """Phase → seconds in canonical order, plus a ``total`` sum."""
        times = self.phase_times
        ordered: Dict[str, float] = {}
        for phase in PHASES:
            if phase in times:
                ordered[phase] = times[phase]
        for phase in sorted(times):
            if phase not in ordered:
                ordered[phase] = times[phase]
        ordered["total"] = sum(times.values())
        return ordered


class _PhaseSpan:
    """Context manager produced by :meth:`PhaseProfiler.timed`."""

    __slots__ = ("_profiler", "_phase")

    def __init__(self, profiler: PhaseProfiler, phase: str) -> None:
        self._profiler = profiler
        self._phase = phase

    def __enter__(self) -> PhaseProfiler:
        self._profiler.enter(self._phase)
        return self._profiler

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.exit()
