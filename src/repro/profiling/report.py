"""cProfile capture and top-N hotspot reports.

Used by ``bench --profile`` and the CI profile job: run a workload under
:func:`capture_profile`, extract the top-N functions by own-time with
:func:`hotspot_rows`, and persist/print them with
:func:`write_hotspot_report`/:func:`format_hotspots`.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple


def capture_profile(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, cProfile.Profile]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, profile)``; the profile is disabled and ready for
    :func:`hotspot_rows`.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    return result, profile


def hotspot_rows(profile: cProfile.Profile, top_n: int = 25) -> List[Dict[str, Any]]:
    """The ``top_n`` functions by own (tottime) seconds, as plain dicts.

    Each row carries ``function``, ``file``, ``line``, ``calls`` (non-recursive
    call count), ``tottime`` and ``cumtime`` — everything the CI artifact and
    the docs' reading guide refer to.
    """
    stats = pstats.Stats(profile)
    rows: List[Dict[str, Any]] = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "function": func,
                "file": filename,
                "line": line,
                "calls": nc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: (-r["tottime"], r["file"], r["line"], r["function"]))
    return rows[:top_n]


def format_hotspots(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width text table of hotspot rows (for terminals and CI logs)."""
    lines = [f"{'tottime':>9}  {'cumtime':>9}  {'calls':>9}  location"]
    for row in rows:
        location = f"{row['file']}:{row['line']}({row['function']})"
        lines.append(
            f"{row['tottime']:>9.4f}  {row['cumtime']:>9.4f}  {row['calls']:>9}  {location}"
        )
    return "\n".join(lines)


def write_hotspot_report(
    path: str | Path,
    rows: List[Dict[str, Any]],
    phase_times: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a JSON hotspot report (the CI artifact format) and return its path."""
    payload: Dict[str, Any] = {"hotspots": rows}
    if phase_times is not None:
        payload["phase_times"] = phase_times
    if meta:
        payload["meta"] = meta
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
