"""Real-transport backends: the same nodes over asyncio I/O and wall clock.

The discrete-event simulator (`repro.simulation`) is the deterministic
oracle; this package is the deployable counterpart.  It keeps the node code,
protocol logic and metrics untouched and swaps only the two substrates
underneath them:

* :class:`RealtimeEnvironment` — paces the simulator's event heap against
  the wall clock inside an asyncio event loop, so every node process
  (generator) runs unchanged while its sleeps become real sleeps.
* :class:`InprocTransport` / :class:`TcpTransport` — implementations of
  :class:`repro.network.backend.BaseTransport` that move pickled frames
  through asyncio queues or length-prefixed TCP streams instead of
  scheduling simulated deliveries.

``repro.realnet.parity`` holds the sim≡prod parity oracle: the same
``ScenarioSpec`` must produce equivalent committed ledgers and per-tx
outcomes on either backend, modulo timing.
"""

from repro.realnet.clock import RealtimeEnvironment
from repro.realnet.transport import InprocTransport, TcpTransport, build_realnet
from repro.realnet.parity import ParityMismatch, ParityReport, assert_parity, ledger_fingerprint
from repro.realnet import workload as _parity_workload  # noqa: F401 - registers "parity_kv"

__all__ = [
    "InprocTransport",
    "ParityMismatch",
    "ParityReport",
    "RealtimeEnvironment",
    "TcpTransport",
    "assert_parity",
    "build_realnet",
    "ledger_fingerprint",
]
