"""A wall-clock environment: the simulator's event heap paced by real time.

The discrete-event :class:`~repro.simulation.core.Environment` dispatches the
next heap entry immediately; :class:`RealtimeEnvironment` dispatches it only
once the wall clock has caught up with its timestamp.  Everything written
against the simulation API — processes, stores, CPU pools, lean callbacks —
runs unchanged; node sleeps simply take real time, and asyncio tasks (the
transport pumps) interleave with the dispatch loop through an ``inject``
hook that is the single entry point for externally produced events.

``speed`` compresses the pacing: at ``speed=s`` one simulated second takes
``1/s`` wall seconds, so smoke-scale parity suites don't pay multi-second
walls while the bench runs at ``speed=1`` for honest numbers.  ``env.now``
remains *simulated* seconds in both cases, which keeps every metrics window
(warmup fractions, horizons, drain tails) meaningful across backends.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError
from repro.simulation.core import Environment
from repro.simulation.events import Event

#: Dispatch this many ready events between cooperative yields so transport
#: pump tasks are never starved during a burst of same-time events.
_STEPS_PER_YIELD = 64

#: How often the idle loop re-checks for externally injected work (seconds,
#: wall clock) when the heap is empty but services may still produce events.
_IDLE_POLL = 0.02


class RealtimeEnvironment(Environment):
    """Drop-in :class:`Environment` that paces dispatch against wall time.

    ``run()`` keeps the synchronous signature — it spins up its own asyncio
    loop, starts the registered services (transports), paces the heap and
    tears the services down — so ``Deployment.run`` works on either backend
    without a branch.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        speed: float = 1.0,
        max_wall: Optional[float] = 120.0,
    ) -> None:
        super().__init__(initial_time)
        if speed <= 0:
            raise SimulationError(f"speed must be positive, got {speed}")
        self.speed = float(speed)
        #: Hard wall-clock ceiling for one ``run()`` call; a hung transport or
        #: a driver that never completes raises instead of hanging the caller
        #: (and CI) forever.  ``None`` disables the watchdog.
        self.max_wall = max_wall
        self._services: List[Any] = []
        self._start_monotonic: Optional[float] = None
        self._wake: Optional[asyncio.Event] = None

    # -------------------------------------------------------------- services
    def add_service(self, service: Any) -> None:
        """Register a service with async ``start(env)`` / ``stop()`` hooks.

        Services (the asyncio transports) are started inside the event loop
        before dispatch begins and stopped when ``run()`` returns, so their
        pump tasks always have a running loop.
        """
        self._services.append(service)

    # ----------------------------------------------------------------- clock
    def elapsed(self) -> float:
        """Wall-clock time since ``run()`` started, in *simulated* seconds."""
        if self._start_monotonic is None:
            return self._now
        return (time.monotonic() - self._start_monotonic) * self.speed

    def inject(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback()`` from an asyncio task and wake the loop.

        The single entry point for events produced outside the dispatch loop
        (transport pumps handing over received frames).  The callback lands at
        the current wall-clock instant — never before ``now``, so the heap
        invariant survives — and the dispatcher is woken if it is sleeping.
        """
        when = max(self._now, self.elapsed())
        heapq.heappush(self._queue, (when, next(self._counter), callback))
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float | Event] = None) -> Any:
        """Pace the heap against the wall clock until ``until`` is reached.

        Same contract as the simulated environment: ``None`` runs until the
        system is quiescent (empty heap *and* idle services), a float runs to
        that simulated time, an :class:`Event` runs until it is processed and
        returns its value.
        """
        return asyncio.run(self._arun(until))

    async def _arun(self, until: Optional[float | Event]) -> Any:
        self._wake = asyncio.Event()
        self._start_monotonic = time.monotonic() - self._now / self.speed
        for service in self._services:
            await service.start(self)
        try:
            if self.max_wall is None:
                return await self._dispatch(until)
            try:
                return await asyncio.wait_for(self._dispatch(until), timeout=self.max_wall)
            except asyncio.TimeoutError:
                raise SimulationError(
                    f"realtime run exceeded max_wall={self.max_wall}s "
                    f"(simulated time reached {self._now:.3f}s)"
                ) from None
        finally:
            for service in reversed(self._services):
                await service.stop()
            self._wake = None

    async def _dispatch(self, until: Optional[float | Event]) -> Any:
        stop_event = until if isinstance(until, Event) else None
        horizon = float(until) if isinstance(until, (int, float)) else None
        if horizon is not None and horizon < self._now:
            raise SimulationError(f"cannot run to {horizon}, already at {self._now}")
        steps = 0
        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event._value
                return stop_event.value
            if not self._queue:
                if stop_event is None and horizon is None and self._quiescent():
                    return None
                # Heap empty but a service may still hand frames over (or the
                # horizon lies ahead): wait for an injection, then re-check.
                await self._sleep_until_wake(_IDLE_POLL)
                if horizon is not None and self.elapsed() >= horizon and not self._queue:
                    self._now = horizon
                    return None
                continue
            next_when = self._queue[0][0]
            if horizon is not None and next_when > horizon:
                if self.elapsed() < horizon:
                    await self._sleep_until_wake((horizon - self.elapsed()) / self.speed)
                    continue
                self._now = horizon
                return None
            gap = next_when - self.elapsed()
            if gap > 0:
                await self._sleep_until_wake(gap / self.speed)
                continue
            self.step()
            steps += 1
            if steps >= _STEPS_PER_YIELD:
                steps = 0
                # Cooperative yield: let transport pumps drain their queues.
                await asyncio.sleep(0)

    async def _sleep_until_wake(self, seconds: float) -> None:
        """Sleep up to ``seconds`` (wall), returning early on :meth:`inject`."""
        self._wake.clear()
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=max(seconds, 0.0))
        except asyncio.TimeoutError:
            pass

    def _quiescent(self) -> bool:
        """True when every service reports no buffered or in-flight work."""
        return all(service.idle() for service in self._services)
