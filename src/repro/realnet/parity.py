"""The sim≡prod parity oracle: same scenario, two backends, one verdict.

A parity check runs the *same* smoke-scale scenario once on the deterministic
simulated backend and once on a real asyncio backend, then compares what must
not depend on timing:

* **Committed work** — the set of transaction ids that reached the ledger,
  and each transaction's commit/abort outcome (with its stable abort reason).
* **Intra-run agreement** — within each run, every peer's committed sequence
  is a prefix of (or equal to) the reference peer's, whatever the backend.
* **Sequence parity** (``strict_order=True``) — the exact committed order.
  Valid for paradigms whose entry orderer sees one FIFO submission stream
  (OX, OXII direct submission); XOV's endorsement round-trips make arrival
  order a timing artefact, so XOV compares sets and outcomes only.

Wall-clock quantities (latency, throughput, block boundaries, timestamps)
are deliberately *not* compared — they are the honest difference between the
backends, not a bug signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import RealnetError
from repro.metrics.collector import RunMetrics
from repro.paradigms.run import make_deployment, prepare_driver
from repro.workload.generator import WorkloadConfig


class ParityMismatch(RealnetError):
    """The two backends disagree on timing-independent observables."""


@dataclass(frozen=True)
class BackendRun:
    """Everything the oracle keeps from one run of one backend."""

    backend: str
    metrics: RunMetrics
    #: Committed transaction ids, in ledger order, of the reference peer.
    committed_sequence: Tuple[str, ...]
    #: Per-peer committed sequences (``node_id`` → ledger order).
    peer_sequences: Dict[str, Tuple[str, ...]]
    #: tx_id → stable outcome: ``""`` for commit, abort reason otherwise.
    outcomes: Dict[str, str]


@dataclass
class ParityReport:
    """The oracle's verdict plus enough context to debug a failure."""

    sim: BackendRun
    real: BackendRun
    strict_order: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        return (
            f"parity[{self.sim.metrics.paradigm}] sim vs {self.real.backend}: {status} — "
            f"{len(self.sim.committed_sequence)} vs {len(self.real.committed_sequence)} "
            f"committed, strict_order={self.strict_order}"
        )


def ledger_fingerprint(handles) -> Dict[str, Tuple[str, ...]]:
    """Per-peer committed transaction-id sequences, flattened across blocks.

    Block boundaries are cut on timers, so they differ across backends by
    design; the flattened sequence is the timing-independent part.
    """
    sequences: Dict[str, Tuple[str, ...]] = {}
    for peer in handles.peers:
        ledger = getattr(peer, "ledger", None)
        if ledger is None:
            continue
        sequences[peer.node_id] = tuple(
            tx.tx_id for block in ledger.blocks() for tx in block
        )
    return sequences


def _outcome_map(handles) -> Dict[str, str]:
    collector = handles.collector
    outcomes: Dict[str, str] = {}
    for tx_id in collector.completion_times():
        outcomes[tx_id] = collector.abort_reason_of(tx_id)
    return outcomes


def run_backend_point(
    paradigm: str,
    backend: str,
    *,
    generator: str = "parity_kv",
    offered_load: float = 40.0,
    duration: float = 1.0,
    drain: float = 30.0,
    seed: int = 7,
    speed: float = 25.0,
    system_config: Optional[SystemConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
) -> BackendRun:
    """Run one scenario point on one backend and capture its observables.

    ``speed`` only affects real backends (it compresses paced sleeps so a
    smoke parity suite finishes in wall-milliseconds-per-simulated-second);
    the simulated backend ignores it by construction.
    """
    system_config = system_config or SystemConfig()
    system_config = system_config.with_overrides(backend=backend, seed=seed)
    if backend != "sim":
        system_config = replace(system_config, realtime_speed=speed)
    workload_config = workload_config or WorkloadConfig(
        num_applications=system_config.num_applications, seed=seed
    )
    system_config, driver, initial_state = prepare_driver(
        generator, system_config, workload_config, offered_load, duration
    )
    deployment = make_deployment(paradigm, system_config)
    metrics = deployment.run(
        driver=driver,
        initial_state=initial_state,
        offered_load=offered_load,
        drain=drain,
    )
    handles = deployment.handles
    sequences = ledger_fingerprint(handles)
    reference = _reference_sequence(sequences)
    return BackendRun(
        backend=backend,
        metrics=metrics,
        committed_sequence=reference,
        peer_sequences=sequences,
        outcomes=_outcome_map(handles),
    )


def _reference_sequence(sequences: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    """The longest per-peer sequence (the most caught-up peer)."""
    if not sequences:
        return ()
    return max(sequences.values(), key=len)


def _check_intra_run_prefixes(run: BackendRun, mismatches: List[str]) -> None:
    reference = run.committed_sequence
    for node_id, sequence in sorted(run.peer_sequences.items()):
        if reference[: len(sequence)] != sequence:
            mismatches.append(
                f"[{run.backend}] peer {node_id} ledger diverges from the reference "
                f"sequence (first {min(len(sequence), 5)} entries: {sequence[:5]})"
            )


def compare_runs(sim: BackendRun, real: BackendRun, strict_order: bool) -> ParityReport:
    """Compare two captured runs; the report lists every mismatch found."""
    report = ParityReport(sim=sim, real=real, strict_order=strict_order)
    mismatches = report.mismatches
    _check_intra_run_prefixes(sim, mismatches)
    _check_intra_run_prefixes(real, mismatches)

    sim_set = set(sim.committed_sequence)
    real_set = set(real.committed_sequence)
    if sim_set != real_set:
        only_sim = sorted(sim_set - real_set)[:5]
        only_real = sorted(real_set - sim_set)[:5]
        mismatches.append(
            f"committed sets differ: {len(sim_set)} sim vs {len(real_set)} "
            f"{real.backend}; only-sim={only_sim} only-real={only_real}"
        )
    elif strict_order and sim.committed_sequence != real.committed_sequence:
        divergence = next(
            (
                i
                for i, (a, b) in enumerate(zip(sim.committed_sequence, real.committed_sequence))
                if a != b
            ),
            min(len(sim.committed_sequence), len(real.committed_sequence)),
        )
        mismatches.append(
            f"committed sequences diverge at position {divergence}: "
            f"sim={sim.committed_sequence[divergence:divergence + 3]} "
            f"{real.backend}={real.committed_sequence[divergence:divergence + 3]}"
        )

    shared = set(sim.outcomes) & set(real.outcomes)
    for tx_id in sorted(shared):
        if sim.outcomes[tx_id] != real.outcomes[tx_id]:
            mismatches.append(
                f"outcome of {tx_id} differs: sim={sim.outcomes[tx_id] or 'commit'!r} "
                f"{real.backend}={real.outcomes[tx_id] or 'commit'!r}"
            )
    missing = set(sim.outcomes) ^ set(real.outcomes)
    if missing:
        mismatches.append(
            f"{len(missing)} transaction(s) completed on one backend only: "
            f"{sorted(missing)[:5]}"
        )
    return report


def assert_parity(
    paradigm: str,
    backend: str = "asyncio",
    *,
    strict_order: Optional[bool] = None,
    **point_kwargs,
) -> ParityReport:
    """Run the scenario on both backends and raise on any mismatch.

    ``strict_order`` defaults per paradigm: exact committed order for the
    direct-submission paradigms (OX, OXII), set+outcome equality for XOV.
    """
    if strict_order is None:
        strict_order = paradigm.lower() != "xov"
    sim = run_backend_point(paradigm, "sim", **point_kwargs)
    real = run_backend_point(paradigm, backend, **point_kwargs)
    report = compare_runs(sim, real, strict_order)
    if not report.ok:
        details = "\n  - ".join(report.mismatches)
        raise ParityMismatch(f"{report.summary()}\n  - {details}")
    return report
