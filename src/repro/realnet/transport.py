"""Asyncio transport backends: inproc queues and framed TCP streams.

Both implement the :class:`~repro.network.backend.BaseTransport` contract and
run as *services* of a :class:`~repro.realnet.clock.RealtimeEnvironment`:
``send()`` is called synchronously from inside the dispatch loop (node code
never changes), the bytes move through asyncio machinery, and the receive
side hands completed envelopes back to the dispatcher via ``env.inject`` —
the only door external events enter the heap through.

* :class:`InprocTransport` — one ``asyncio.Queue`` per node with a pump
  task; messages pass by reference.  The minimal real backend: real
  concurrency and wall-clock ordering, zero serialisation cost.
* :class:`TcpTransport` — one localhost TCP server per node and one lazy
  outbound connection per directed link, carrying length-prefixed pickled
  frames.  What an actual multi-process deployment would speak, exercised
  in-process so tests need no orchestration.

Neither backend simulates faults: fault injection belongs to the
deterministic backend, where it is reproducible.  They still keep a
(permanently inactive) :class:`FaultPlan` so node-side checks like
``network.faults.is_crashed`` work unchanged.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.common.errors import NetworkError
from repro.network.backend import BaseTransport
from repro.network.faults import FaultPlan
from repro.network.message import Envelope, Message
from repro.network.topology import Topology
from repro.realnet.clock import RealtimeEnvironment

#: Frame header: one unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")
#: Refuse frames above this size — a corrupt header must not allocate 4 GiB.
_MAX_FRAME = 64 * 1024 * 1024


class _RealnetTransport(BaseTransport):
    """Shared machinery of the asyncio backends (registration, delivery)."""

    def __init__(self, env: RealtimeEnvironment, topology: Optional[Topology] = None) -> None:
        super().__init__(env)
        self.env: RealtimeEnvironment = env
        #: Placement is kept for reporting parity with the simulated backend;
        #: real backends do not add modelled latency on top of the real I/O.
        self.topology = topology or Topology()
        #: Payload-sizing defaults (nodes read ``network.latency.per_tx_bytes``
        #: etc.); the delay fields are unused — real I/O takes real time.
        self.latency = self.topology.latency
        #: Permanently inactive: real backends never inject faults, but node
        #: code may still consult ``network.faults``.
        self.faults = FaultPlan()
        env.add_service(self)

    def _place(self, node_id: str, datacenter: Optional[str]) -> None:
        if datacenter is not None:
            self.topology.place(node_id, datacenter)

    # ------------------------------------------------------------- delivery
    def _deliver(self, sender: str, recipient: str, message: Message, sent_at: float,
                 size: int) -> None:
        """Runs inside the dispatch loop (via ``env.inject``)."""
        self.messages_in_flight -= 1
        interface = self._interfaces.get(recipient)
        if interface is None:
            # Receiver deregistered/unknown at delivery time — account it the
            # same way the simulated backend accounts a crashed recipient.
            self.messages_discarded_crash += 1
            return
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            message=message,
            sent_at=sent_at,
            delivered_at=self.env.now,
            size_bytes=size,
        )
        self.messages_delivered += 1
        interface.inbox.put(envelope)

    def _check_endpoints(self, sender: str, recipient: str) -> None:
        if sender not in self._interfaces:
            raise NetworkError(f"unknown sender {sender!r}")
        if recipient not in self._interfaces:
            raise NetworkError(f"unknown recipient {recipient!r}")

    # ------------------------------------------------------------- lifecycle
    async def start(self, env: RealtimeEnvironment) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    async def stop(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def idle(self) -> bool:
        """True when no message is buffered anywhere in the backend."""
        return self.messages_in_flight == 0


class InprocTransport(_RealnetTransport):
    """Wall-clock transport over per-node ``asyncio.Queue`` inboxes.

    ``send`` enqueues ``(sender, message, sent_at, size)`` on the recipient's
    queue; the recipient's pump task dequeues and injects the delivery into
    the dispatch loop.  Messages pass by reference — the serialisation-free
    lower bound for the real backends.
    """

    def __init__(self, env: RealtimeEnvironment, topology: Optional[Topology] = None) -> None:
        super().__init__(env, topology)
        self._queues: Dict[str, asyncio.Queue] = {}
        self._pumps: List[asyncio.Task] = []

    def send(
        self,
        sender: str,
        recipient: str,
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        self._check_endpoints(sender, recipient)
        size = payload_bytes if payload_bytes is not None else (
            self.topology.latency.per_message_bytes
        )
        self.messages_sent += 1
        self.bytes_sent += size
        self.messages_in_flight += 1
        queue = self._queues.setdefault(recipient, asyncio.Queue())
        queue.put_nowait((sender, message, self.env.now, size))

    async def start(self, env: RealtimeEnvironment) -> None:
        for node_id in self.node_ids():
            self._queues.setdefault(node_id, asyncio.Queue())
        for node_id, queue in self._queues.items():
            self._pumps.append(asyncio.create_task(self._pump(node_id, queue)))

    async def _pump(self, node_id: str, queue: asyncio.Queue) -> None:
        while True:
            sender, message, sent_at, size = await queue.get()
            self.env.inject(partial(self._deliver, sender, node_id, message, sent_at, size))

    async def stop(self) -> None:
        for task in self._pumps:
            task.cancel()
        for task in self._pumps:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._pumps.clear()

    def idle(self) -> bool:
        return self.messages_in_flight == 0 and all(q.empty() for q in self._queues.values())


class TcpTransport(_RealnetTransport):
    """Wall-clock transport over localhost TCP with length-prefixed frames.

    Every node runs an ``asyncio`` server on ``127.0.0.1`` (ephemeral port);
    each directed link lazily opens one client connection on first send and
    keeps it for the run.  A frame is a 4-byte big-endian length followed by
    the pickled ``(sender, recipient, message, sent_at, size)`` tuple — the
    same framing a genuinely multi-process deployment would use, so message
    payloads are proven serialisable end-to-end.
    """

    def __init__(self, env: RealtimeEnvironment, topology: Optional[Topology] = None) -> None:
        super().__init__(env, topology)
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._ports: Dict[str, int] = {}
        self._outboxes: Dict[Tuple[str, str], asyncio.Queue] = {}
        self._writers: Dict[Tuple[str, str], asyncio.Task] = {}
        self._readers: List[asyncio.Task] = []
        self._started = False

    # ----------------------------------------------------------------- sends
    def send(
        self,
        sender: str,
        recipient: str,
        message: Message,
        payload_bytes: Optional[int] = None,
    ) -> None:
        self._check_endpoints(sender, recipient)
        frame = pickle.dumps(
            (sender, recipient, message, self.env.now,
             payload_bytes if payload_bytes is not None
             else self.topology.latency.per_message_bytes),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        # Real wire accounting: bytes_sent counts the actual frame (payload
        # plus header), not the simulated cost-model size.
        self.messages_sent += 1
        self.bytes_sent += len(frame) + _HEADER.size
        self.messages_in_flight += 1
        link = (sender, recipient)
        outbox = self._outboxes.get(link)
        if outbox is None:
            outbox = self._outboxes[link] = asyncio.Queue()
            if self._started:
                self._writers[link] = asyncio.create_task(self._write_link(link, outbox))
        outbox.put_nowait(frame)

    # ------------------------------------------------------------- lifecycle
    async def start(self, env: RealtimeEnvironment) -> None:
        for node_id in self.node_ids():
            server = await asyncio.start_server(self._handle_connection, "127.0.0.1", 0)
            self._servers[node_id] = server
            self._ports[node_id] = server.sockets[0].getsockname()[1]
        self._started = True
        # Links whose first send predates start() get their writers now.
        for link, outbox in self._outboxes.items():
            if link not in self._writers:
                self._writers[link] = asyncio.create_task(self._write_link(link, outbox))

    async def _write_link(self, link: Tuple[str, str], outbox: asyncio.Queue) -> None:
        _, recipient = link
        reader_writer = await asyncio.open_connection("127.0.0.1", self._ports[recipient])
        writer = reader_writer[1]
        try:
            while True:
                frame = await outbox.get()
                writer.write(_HEADER.pack(len(frame)))
                writer.write(frame)
                await writer.drain()
        finally:
            writer.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._readers.append(task)
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > _MAX_FRAME:
                    raise NetworkError(f"frame of {length} bytes exceeds limit {_MAX_FRAME}")
                frame = await reader.readexactly(length)
                sender, recipient, message, sent_at, size = pickle.loads(frame)
                self.env.inject(
                    partial(self._deliver, sender, recipient, message, sent_at, size)
                )
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed the link — normal shutdown path
        finally:
            writer.close()

    async def stop(self) -> None:
        # Cancel writers first: their ``finally`` closes the outbound
        # connections, so every server-side reader sees a clean EOF and
        # returns by itself instead of being cancelled mid-read (which would
        # make asyncio's stream machinery log spurious CancelledErrors).
        writers = [t for t in self._writers.values() if t is not None]
        for task in writers:
            task.cancel()
        if writers:
            await asyncio.gather(*writers, return_exceptions=True)
        readers = [t for t in self._readers if t is not None]
        if readers:
            _, pending = await asyncio.wait(readers, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._writers.clear()
        self._readers.clear()
        self._servers.clear()
        self._started = False

    def idle(self) -> bool:
        return self.messages_in_flight == 0 and all(
            q.empty() for q in self._outboxes.values()
        )


#: backend name → transport class, the registry `build_realnet` resolves.
REALNET_BACKENDS = {
    "asyncio": InprocTransport,
    "asyncio-tcp": TcpTransport,
}


def build_realnet(
    backend: str,
    *,
    speed: float = 1.0,
    max_wall: Optional[float] = 120.0,
    topology: Optional[Topology] = None,
) -> Tuple[RealtimeEnvironment, _RealnetTransport]:
    """Create a paced environment plus the requested asyncio transport.

    The factory `Deployment._build_common` calls when ``SystemConfig.backend``
    names a real backend; returns ``(env, network)`` shaped exactly like the
    simulated pair.
    """
    try:
        transport_cls = REALNET_BACKENDS[backend]
    except KeyError:
        raise NetworkError(
            f"unknown realnet backend {backend!r}; choose from {sorted(REALNET_BACKENDS)}"
        ) from None
    env = RealtimeEnvironment(speed=speed, max_wall=max_wall)
    network = transport_cls(env, topology=topology)
    return env, network
