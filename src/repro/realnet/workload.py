"""A conflict-free workload for cross-backend parity runs.

The parity oracle compares per-transaction commit/abort outcomes between the
deterministic simulator and the wall-clock asyncio backends.  Outcomes must
therefore be *order-independent*: on the real backend, endorsement and
ordering latencies are genuine wall-clock measurements, so the sequence in
which transactions reach the orderer (and get packed into blocks) is not
reproducible.  Any key shared between two transactions would make an MVCC
verdict depend on that sequence.

``parity_kv`` sidesteps this by construction: transaction ``i`` reads and
writes exactly one private key (``kv-<app>-i``), so no pair of transactions
ever conflicts, every transaction commits under any ordering, and the
committed *sets* (plus all outcomes) must agree between backends — leaving
the parity suite to detect real transport/clock bugs rather than timing
noise.  OX and OXII additionally get strict sequence parity from the FIFO
gateway→orderer link, which this workload exercises too.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.common.registry import register_workload
from repro.contracts.kvstore import KeyValueContract
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase


@register_workload("parity_kv")
class ParityKeyValueWorkload(WorkloadBase):
    """One private read+write key per transaction — zero conflicts, ever."""

    contract = "kvstore"
    config_hint = "no knobs: each transaction touches only its own private key"

    def key_name(self, application: str, index: int) -> str:
        """The private record of the ``index``-th transaction."""
        return f"kv-{application}-{index}"

    def _build_transaction(self, index: int) -> Transaction:
        application = self.application_for(index)
        key = self.key_name(application, index)
        return KeyValueContract.make_transaction(
            tx_id=f"parity-{index}",
            application=application,
            reads=[key],
            writes={key: index},
            client=self.client_for(index),
        )

    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, object]:
        """Seed every private key so the read side always finds a value."""
        state: Dict[str, object] = {}
        for tx in transactions:
            for key in tx.rw_set.keys:
                state.setdefault(key, 0)
        return state

    def expected_conflict_fraction(self) -> float:
        return 0.0
