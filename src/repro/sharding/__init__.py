"""Sharded deployments: per-shard ordering services + cross-shard 2PC.

The sharding layer splits one logical blockchain into ``shards.num_shards``
independent instances of a paradigm deployment (each with its own ordering
service and peers, selectable consensus per shard), a deterministic
key/application → shard router, and a coordinator-driven two-phase commit for
transactions whose read/write sets span shards.  See ``docs/architecture.md``.
"""

from repro.sharding.coordinator import COORDINATOR_ID, CoordinatorNode, ShardVoter
from repro.sharding.deployment import ShardedDeployment, ShardingInfo
from repro.sharding.gateway import ShardRouterGateway
from repro.sharding.metrics import ShardedMetricsCollector
from repro.sharding.protocol import (
    CrossShardContract,
    base_tx_id,
    is_decision_id,
    is_prepare_id,
    is_record_id,
    make_decision_record,
    make_prepare_record,
    record_info,
    stashed_reads,
)
from repro.sharding.router import ShardRouter, stable_key_hash

__all__ = [
    "COORDINATOR_ID",
    "CoordinatorNode",
    "CrossShardContract",
    "ShardRouter",
    "ShardRouterGateway",
    "ShardVoter",
    "ShardedDeployment",
    "ShardedMetricsCollector",
    "ShardingInfo",
    "base_tx_id",
    "is_decision_id",
    "is_prepare_id",
    "is_record_id",
    "make_decision_record",
    "make_prepare_record",
    "record_info",
    "stable_key_hash",
    "stashed_reads",
]
