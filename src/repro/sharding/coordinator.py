"""The cross-shard 2PC coordinator and the per-shard voter hook.

The coordinator is an ordinary simulated node: it receives cross-shard
transactions from the routing gateway (XSHARD_SUBMIT), orders one PREPARE
record into every participant shard, collects one vote per shard from that
shard's reference peer, decides, and orders a decision record everywhere.
With :class:`~repro.common.config.RecoveryConfig` enabled it retransmits
records and vote requests until every shard acknowledged the decision, so a
coordinator or participant crash between PREPARE and COMMIT neither loses nor
double-applies a transaction:

* records are idempotent at the ordering service (orderers deduplicate by
  ``tx_id``), so retransmitting a PREPARE/COMMIT that was already ordered is
  harmless — the "duplicate COMMIT to one shard" case;
* the coordinator's state survives a crash (crash-stop is enforced at the
  transport), so after a restart the retry loop resumes every in-flight
  transaction from its pending table;
* locks are acquired atomically per shard and conflicts abort immediately
  (wound-free, no distributed deadlock) — a blocked transaction is aborted
  globally and its locks released by the abort decision.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.contracts.base import ContractRegistry
from repro.core.transaction import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.network.message import Envelope
from repro.network.transport import Network
from repro.nodes import messages
from repro.nodes.base import BaseNode
from repro.sharding.protocol import (
    make_decision_record,
    make_prepare_record,
    record_info,
    stashed_reads,
)
from repro.sharding.router import ShardRouter
from repro.simulation import Environment

COORDINATOR_ID = "x-coordinator"


class CoordinatorNode(BaseNode):
    """Drives PREPARE/COMMIT for every cross-shard transaction."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        registry: KeyRegistry,
        config: SystemConfig,
        router: ShardRouter,
        contracts: ContractRegistry,
        shard_entries: Mapping[int, str],
        voters: Mapping[int, str],
        node_id: str = COORDINATOR_ID,
        datacenter: Optional[str] = None,
    ) -> None:
        super().__init__(
            env,
            node_id,
            network,
            registry,
            cost_model=config.cost_model,
            cores=config.cores_per_node,
            datacenter=datacenter,
        )
        self.config = config
        self.router = router
        self.contracts = contracts
        self.shard_entries = dict(shard_entries)
        self.voters = dict(voters)
        #: base tx_id -> in-flight protocol state.
        self.pending: Dict[str, Dict[str, Any]] = {}
        #: base tx_id -> (aborted, reason); the authoritative global outcome,
        #: consulted by the sharded metrics collector.
        self.decisions: Dict[str, Tuple[bool, str]] = {}
        self.cross_shard_started = 0
        self.commits = 0
        self.aborts = 0
        self.retries_sent = 0

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        super().start()
        if self.config.recovery.enabled:
            self.env.process(self._retry_loop(), name=f"{self.node_id}-retry")

    # --------------------------------------------------------------- messages
    def handle_envelope(self, envelope: Envelope):
        kind = envelope.message.kind
        if kind == messages.XSHARD_SUBMIT:
            yield from self._handle_submit(envelope)
        elif kind == messages.XSHARD_VOTE:
            yield from self._handle_vote(envelope)
        elif kind == messages.XSHARD_ACK:
            yield from self._handle_ack(envelope)

    def _handle_submit(self, envelope: Envelope):
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        body = envelope.message.body
        tx = body.get("transaction")
        if not isinstance(tx, Transaction):
            return
        base = tx.tx_id
        if base in self.pending or base in self.decisions:
            return  # duplicate submission of an in-flight / decided tx
        shards = tuple(int(s) for s in body.get("shards", ()))
        if not shards:
            shards = self.router.shards_of(tx)
        local_keys = {
            shard: sorted(k for k in tx.rw_set.keys if self.router.shard_of_key(k) == shard)
            for shard in shards
        }
        yield self.cost_model.client_assembly * len(shards)
        prepares = {
            shard: make_prepare_record(
                tx, shard, shards, local_keys[shard], self.node_id, self.env.now
            )
            for shard in shards
        }
        self.pending[base] = {
            "tx": tx,
            "shards": shards,
            "local_keys": local_keys,
            "prepares": prepares,
            "votes": {},
            "decision_records": None,
            "acks": set(),
        }
        self.cross_shard_started += 1
        for shard in shards:
            self._submit_record(shard, prepares[shard])

    def _handle_vote(self, envelope: Envelope):
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        body = envelope.message.body
        base = str(body.get("base", ""))
        entry = self.pending.get(base)
        if entry is None or entry["decision_records"] is not None:
            return  # late, duplicate, or already decided
        shard = int(body.get("shard", -1))
        if shard not in entry["shards"] or shard in entry["votes"]:
            return
        entry["votes"][shard] = dict(body)
        if len(entry["votes"]) == len(entry["shards"]):
            yield from self._decide(base, entry)

    def _decide(self, base: str, entry: Dict[str, Any]):
        tx: Transaction = entry["tx"]
        shards = entry["shards"]
        votes = entry["votes"]
        refusals = [shard for shard in shards if votes[shard].get("vote") != "commit"]
        updates_by_shard: Dict[int, Dict[str, Any]] = {shard: {} for shard in shards}
        if refusals:
            aborted = True
            reason = str(votes[min(refusals)].get("reason", "")) or "cross_shard_lock_conflict"
        else:
            merged: Dict[str, Any] = {}
            for shard in shards:
                merged.update(votes[shard].get("reads", {}))
            yield self.cost_model.tx_execution
            result = self.contracts.execute(tx, merged, executed_by=self.node_id)
            aborted = result.is_abort
            reason = result.abort_reason
            if not aborted:
                for key, value in result.updates.items():
                    shard = self.router.shard_of_key(key)
                    if shard in updates_by_shard:
                        updates_by_shard[shard][key] = value
        self.decisions[base] = (aborted, reason)
        if aborted:
            self.aborts += 1
        else:
            self.commits += 1
        decision = "abort" if aborted else "commit"
        yield self.cost_model.client_assembly * len(shards)
        records = {
            shard: make_decision_record(
                tx,
                shard,
                shards,
                entry["local_keys"][shard],
                decision,
                reason,
                updates_by_shard[shard],
                self.node_id,
                self.env.now,
            )
            for shard in shards
        }
        entry["decision_records"] = records
        for shard in shards:
            self._submit_record(shard, records[shard])

    def _handle_ack(self, envelope: Envelope):
        yield self.cost_model.signature
        if not self.verify_envelope(envelope):
            return
        body = envelope.message.body
        base = str(body.get("base", ""))
        entry = self.pending.get(base)
        if entry is None or entry["decision_records"] is None:
            return
        entry["acks"].add(int(body.get("shard", -1)))
        if entry["acks"] >= set(entry["shards"]):
            del self.pending[base]

    # ------------------------------------------------------------------ retry
    def _submit_record(self, shard: int, record: Transaction) -> None:
        self.send_signed(
            self.shard_entries[shard],
            messages.REQUEST,
            {"transaction": record},
            payload_bytes=self.latency.per_tx_bytes,
        )

    def _retry_loop(self):
        interval = self.config.recovery.retransmit_interval
        while True:
            yield interval
            for base, entry in list(self.pending.items()):
                if entry["decision_records"] is None:
                    waiting = [s for s in entry["shards"] if s not in entry["votes"]]
                    records, phase = entry["prepares"], "prepare"
                else:
                    waiting = [s for s in entry["shards"] if s not in entry["acks"]]
                    records, phase = entry["decision_records"], "decision"
                for shard in waiting:
                    # Re-order the record (idempotent: orderers dedup by
                    # tx_id) and ask the shard's voter for its cached reply
                    # in case the record was already ordered and only the
                    # vote/ack was lost.
                    self._submit_record(shard, records[shard])
                    self.send_signed(
                        self.voters[shard],
                        messages.XSHARD_FETCH,
                        {"base": base, "phase": phase},
                    )
                    self.retries_sent += 1


class ShardVoter:
    """Turns a shard's committed 2PC records into votes/acks to the coordinator.

    Installed on each shard's reference peer (``is_reference``), which calls
    :meth:`on_record` from its commit path.  The vote is a pure function of
    the record's deterministic execution result — commit/abort plus the read
    values the PREPARE stashed into its lock entries — so every replica of
    the shard would cast the identical vote.  Cast votes and acks are cached
    and re-sent on XSHARD_FETCH so a lost message never wedges the protocol.
    """

    def __init__(self, shard: int, coordinator: str = COORDINATOR_ID) -> None:
        self.shard = shard
        self.coordinator = coordinator
        self._votes: Dict[str, Dict[str, Any]] = {}
        self._acks: Dict[str, Dict[str, Any]] = {}

    def on_record(self, node: BaseNode, transaction: Transaction, result) -> None:
        info = record_info(transaction)
        base = str(info.get("base", ""))
        if not base or int(info.get("shard", -1)) != self.shard:
            return
        if info.get("phase") == "prepare":
            if base in self._votes:
                return
            aborted = result is None or result.is_abort
            body = {
                "base": base,
                "shard": self.shard,
                "vote": "abort" if aborted else "commit",
                "reason": "" if result is None else str(result.abort_reason or ""),
                "reads": {} if aborted else stashed_reads(transaction, result),
            }
            self._votes[base] = body
            node.send_signed(self.coordinator, messages.XSHARD_VOTE, body)
        elif info.get("phase") == "decision":
            if base in self._acks:
                return
            body = {"base": base, "shard": self.shard}
            self._acks[base] = body
            node.send_signed(self.coordinator, messages.XSHARD_ACK, body)

    def handle_fetch(self, node: BaseNode, envelope: Envelope) -> None:
        """Re-send a cached vote or ack the coordinator says it is missing."""
        body = envelope.message.body
        base = str(body.get("base", ""))
        if body.get("phase") == "prepare":
            cached = self._votes.get(base)
            if cached is not None:
                node.send_signed(self.coordinator, messages.XSHARD_VOTE, cached)
        else:
            cached = self._acks.get(base)
            if cached is not None:
                node.send_signed(self.coordinator, messages.XSHARD_ACK, cached)
