"""Sharded cluster assembly: N per-shard ordering services + one coordinator.

:class:`ShardedDeployment` wraps any registered paradigm deployment class and
instantiates it once per shard on shared simulation infrastructure (one clock,
one network, one key registry, one contract registry).  Each shard is a
complete, independent instance of the wrapped paradigm — its own ordering
service (kafka/raft/pbft, selectable per shard), its own peers, its own
blockchain — hosting a disjoint subset of the applications.  On top of the
shards sit exactly three cluster-wide singletons:

* a routing :class:`~repro.sharding.gateway.ShardRouterGateway` that sends
  single-shard transactions to their shard's entry orderer and hands
  cross-shard ones to the coordinator,
* the 2PC :class:`~repro.sharding.coordinator.CoordinatorNode`,
* a :class:`~repro.sharding.metrics.ShardedMetricsCollector` aggregating the
  per-shard collectors into cluster-level metrics.

With ``shards.num_shards == 1`` the wrapper builds the inner deployment
completely unchanged — same node names, same seeds, same gateway, no
coordinator, no lock probes — so a 1-shard sharded run is bit-identical to an
unsharded run of the same spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.common.config import SystemConfig
from repro.common.rng import child_seed
from repro.contracts.base import ContractRegistry
from repro.crypto.signatures import KeyRegistry
from repro.network.faults import FaultPlan
from repro.network.topology import Topology
from repro.network.transport import Network
from repro.paradigms.base import (
    CLIENT_GATEWAY,
    Deployment,
    DeploymentHandles,
    SharedInfra,
)
from repro.sharding.coordinator import CoordinatorNode, ShardVoter
from repro.sharding.gateway import ShardRouterGateway
from repro.sharding.metrics import ShardedMetricsCollector
from repro.sharding.protocol import CrossShardContract
from repro.sharding.router import ShardRouter
from repro.simulation import Environment


@dataclass
class ShardingInfo:
    """What the fault harness and oracles need to reason about a sharded run."""

    num_shards: int
    router: ShardRouter
    coordinator: CoordinatorNode
    #: shard -> every node id of the shard (orderers then peers).
    shard_members: Dict[int, List[str]] = field(default_factory=dict)
    #: peer node id -> its shard (orderers and peers).
    node_shard: Dict[str, int] = field(default_factory=dict)
    #: shard -> entry orderer node id (where records are submitted).
    shard_entries: Dict[int, str] = field(default_factory=dict)
    #: shard -> the measurement peer node ids of that shard.
    shard_measurement_peers: Dict[int, List[str]] = field(default_factory=dict)
    #: shard -> the initial world-state slice the shard started from.
    shard_initial_state: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: shard -> live orderer nodes (for blocks_ordered accounting).
    shard_orderers: Dict[int, list] = field(default_factory=dict)

    def shard_of_peer(self, node_id: str) -> int:
        return self.node_shard[node_id]


class ShardedDeployment(Deployment):
    """N instances of one paradigm, stitched together by routing + 2PC."""

    def __init__(self, inner_cls: Type[Deployment], config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self.inner_cls = inner_cls
        self.name = inner_cls.name
        self.num_shards = self.config.shards.num_shards
        self.router = ShardRouter(self.num_shards, self.config.application_names())
        self.shard_deployments: List[Deployment] = []
        self.shard_members: Dict[int, List[str]] = {}
        self.coordinator: Optional[CoordinatorNode] = None
        self._info: Optional[ShardingInfo] = None

    # ------------------------------------------------------------------ pieces
    def _make_inner(self, shard: int) -> Deployment:
        """One shard's sub-deployment: the wrapped paradigm on a sub-config."""
        config = self.config
        apps = self.router.shard_applications(shard, config.application_names())
        sub_config = config.with_overrides(
            num_applications=len(apps),
            consensus_protocol=config.shards.consensus_for(shard, config.consensus_protocol),
            # The sub-deployment is itself unsharded (also keeps the
            # num_shards <= num_applications validation on the full config).
            shards={"num_shards": 1, "consensus": ""},
        )
        inner = self.inner_cls(sub_config)
        if self.num_shards > 1:
            inner.node_prefix = f"s{shard}-"
            inner.applications = apps
            inner.include_gateway = False
        return inner

    def sharding_info(self) -> Optional[ShardingInfo]:
        """Structured description of the built sharded cluster (None if N=1)."""
        return self._info

    # ------------------------------------------------------------------- build
    def build(self, initial_state: Optional[Dict[str, object]] = None) -> DeploymentHandles:
        if self.num_shards == 1:
            # Degenerate case: build the wrapped paradigm untouched so the
            # run is bit-identical to an unsharded deployment.
            inner = self._make_inner(0)
            self.shard_deployments = [inner]
            handles = inner.build(initial_state=initial_state)
            self.handles = handles
            return handles

        config = self.config
        env = Environment()
        topology = Topology(latency=config.latency, seed=config.seed)
        faults = FaultPlan(seed=child_seed(config.seed, "fault-verdicts"))
        network = Network(env, topology=topology, faults=faults)
        registry = KeyRegistry(seed=str(config.seed))
        contracts = ContractRegistry()
        shared = SharedInfra(env=env, network=network, registry=registry, contracts=contracts)

        aggregator = ShardedMetricsCollector()
        state_slices = self.router.partition_state(initial_state)

        self.shard_deployments = []
        shard_entries: Dict[int, str] = {}
        voters: Dict[int, str] = {}
        reference_peers: Dict[int, object] = {}
        self.shard_members = {}
        node_shard: Dict[str, int] = {}
        shard_measurement: Dict[int, List[str]] = {}
        shard_orderers: Dict[int, list] = {}
        orderers: List[object] = []
        peers: List[object] = []
        measurement_peers: List[str] = []
        for shard in range(self.num_shards):
            inner = self._make_inner(shard)
            inner.shared = shared
            shard_handles = inner.build(initial_state=state_slices[shard])
            self.shard_deployments.append(inner)
            aggregator.add_shard(shard, shard_handles.collector)
            shard_entries[shard] = inner.orderer_names()[0]
            reference = next(
                p for p in shard_handles.peers if getattr(p, "is_reference", False)
            )
            reference_peers[shard] = reference
            voters[shard] = reference.node_id
            members = [o.node_id for o in shard_handles.orderers] + [
                p.node_id for p in shard_handles.peers
            ]
            self.shard_members[shard] = members
            for node_id in members:
                node_shard[node_id] = shard
            shard_measurement[shard] = list(shard_handles.measurement_peers)
            shard_orderers[shard] = list(shard_handles.orderers)
            orderers.extend(shard_handles.orderers)
            peers.extend(shard_handles.peers)
            measurement_peers.extend(shard_handles.measurement_peers)

        # The 2PC record contract runs on every peer of every shard (and on
        # the coordinator/oracles, which execute through the same registry).
        contracts.install(CrossShardContract(), agents=[p.node_id for p in peers])
        contracts.enable_cross_shard_locks()

        coordinator = CoordinatorNode(
            env=env,
            network=network,
            registry=registry,
            config=config,
            router=self.router,
            contracts=contracts,
            shard_entries=shard_entries,
            voters=voters,
            datacenter=self.datacenter_for("orderers"),
        )
        self.coordinator = coordinator
        aggregator.set_decision_source(coordinator)
        for shard, reference in reference_peers.items():
            reference.xshard_voter = ShardVoter(shard, coordinator=coordinator.node_id)

        gateway = ShardRouterGateway(
            env,
            CLIENT_GATEWAY,
            network,
            registry,
            config,
            shard_entries[0],
            aggregator,
            "endorse" if self.inner_cls.name == "XOV" else "direct",
            contracts if self.inner_cls.name == "XOV" else None,
            datacenter=self.datacenter_for("clients"),
            router=self.router,
            shard_entries=shard_entries,
            coordinator=coordinator.node_id,
        )

        handles = DeploymentHandles(
            env=env,
            network=network,
            registry=registry,
            contracts=contracts,
            collector=aggregator,
            gateway=gateway,
            orderers=orderers,
            peers=peers,
            measurement_peers=measurement_peers,
            extra_nodes=[coordinator],
        )
        self._info = ShardingInfo(
            num_shards=self.num_shards,
            router=self.router,
            coordinator=coordinator,
            shard_members=dict(self.shard_members),
            node_shard=node_shard,
            shard_entries=shard_entries,
            shard_measurement_peers=shard_measurement,
            shard_initial_state={
                shard: dict(state_slices[shard]) for shard in range(self.num_shards)
            },
            shard_orderers=shard_orderers,
        )
        self.handles = handles
        return handles
