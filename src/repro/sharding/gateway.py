"""The sharded client gateway: route each transaction to its shard(s).

One gateway fronts the whole sharded cluster (as in the unsharded case).
Single-shard transactions go straight to their shard's entry orderer (after
the usual endorsement round under XOV — the contract registry is global, so
endorser discovery works unchanged); cross-shard transactions are handed to
the 2PC coordinator and never enter the ordinary submission path.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.transaction import Transaction
from repro.nodes import messages
from repro.nodes.client import ClientGateway
from repro.sharding.coordinator import COORDINATOR_ID
from repro.sharding.router import ShardRouter


class ShardRouterGateway(ClientGateway):
    """A client gateway that routes submissions by shard."""

    def __init__(
        self,
        *args,
        router: ShardRouter,
        shard_entries: Mapping[int, str],
        coordinator: str = COORDINATOR_ID,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.router = router
        self.shard_entries = dict(shard_entries)
        self.coordinator = coordinator
        self.cross_shard_submitted = 0

    def _submit_one(self, tx: Transaction) -> None:
        plan = self.router.shards_of(tx)
        if self.router.is_cross_shard(tx):
            register_plan = getattr(self.collector, "register_plan", None)
            if register_plan is not None:
                register_plan(tx.tx_id, plan)
            self.submitted += 1
            self.cross_shard_submitted += 1
            if self.collector is not None:
                self.collector.record_submission(tx.tx_id, self.env.now)
            stamped = tx.with_submitted_at(self.env.now)
            self.send_signed(
                self.coordinator,
                messages.XSHARD_SUBMIT,
                {"transaction": stamped, "shards": list(plan)},
                payload_bytes=self.latency.per_tx_bytes,
            )
            return
        super()._submit_one(tx)

    def _send_to_orderer(self, tx: Transaction) -> None:
        # Route to the transaction's home shard instead of the fixed entry
        # orderer.  Endorsed XOV transactions land here too — the rw_set is
        # unchanged by endorsement, so the routing decision is stable.
        self.orderer_entry = self.shard_entries[self.router.home_shard(tx)]
        super()._send_to_orderer(tx)
