"""Cluster-wide metrics aggregation across per-shard collectors.

Each shard has its own :class:`~repro.metrics.collector.MetricsCollector`
(its measurement peers are the shard's peers).  The aggregator subscribes to
every shard's completion events and derives cluster-level completion:

* an ordinary (single-shard) transaction completes when its shard completes
  it, with the shard's commit/abort outcome;
* a cross-shard transaction completes when its decision record (``b#c``)
  completed on *every* participant shard; its outcome is the coordinator's
  decision (the decision record itself always commits — for an aborted
  transaction it commits the lock releases);
* PREPARE records (``b#p``) never surface as client transactions — they are
  counted as protocol overhead.

The aggregator implements the collector surface the run loop, drivers and
harness consume (``record_submission``, ``subscribe``, ``all_complete``,
``summarise``...), and adds per-shard and cross-shard throughput/latency/abort
rows to :attr:`RunMetrics.extra`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.metrics.collector import CompletionEvent, MetricsCollector, RunMetrics
from repro.metrics.latency import LatencyStats
from repro.sharding.protocol import base_tx_id, is_decision_id, is_prepare_id


class ShardedMetricsCollector:
    """Aggregates per-shard collectors into cluster-wide run metrics."""

    def __init__(self) -> None:
        self._shards: Dict[int, MetricsCollector] = {}
        self._submissions: Dict[str, float] = {}
        #: tx_id -> participant shards (len 1 for single-shard transactions).
        self._plans: Dict[str, Tuple[int, ...]] = {}
        self._decided: Dict[str, Set[int]] = {}
        self._completion_time: Dict[str, float] = {}
        self._completed_aborted: Set[str] = set()
        self._abort_reason_of: Dict[str, str] = {}
        self._subscribers: List[Callable[[CompletionEvent], None]] = []
        #: (shard, completed_at, aborted, cross_shard, latency) per completion.
        self._events: List[Tuple[int, float, bool, bool, Optional[float]]] = []
        self._prepares: Dict[int, int] = {}
        self._decision_outcome: Callable[[str], Tuple[bool, str]] = lambda base: (False, "")

    # ------------------------------------------------------------------ wiring
    def add_shard(self, shard: int, collector: MetricsCollector) -> None:
        """Attach one shard's collector and subscribe to its completions."""
        self._shards[shard] = collector
        collector.subscribe(lambda event, shard=shard: self._on_shard_event(shard, event))

    def set_decision_source(self, coordinator) -> None:
        """Resolve cross-shard outcomes from the coordinator's decision table."""
        self._decision_outcome = lambda base: coordinator.decisions.get(base, (False, ""))

    def shard_collector(self, shard: int) -> MetricsCollector:
        return self._shards[shard]

    # --------------------------------------------------------------- recording
    def record_submission(self, tx_id: str, time: float) -> None:
        self._submissions.setdefault(tx_id, time)

    def register_plan(self, tx_id: str, shards: Sequence[int]) -> None:
        """Remember which shards ``tx_id`` involves (called by the gateway)."""
        self._plans.setdefault(tx_id, tuple(shards))

    def subscribe(self, callback: Callable[[CompletionEvent], None]) -> None:
        self._subscribers.append(callback)

    def _on_shard_event(self, shard: int, event: CompletionEvent) -> None:
        tx_id = event.tx_id
        if is_prepare_id(tx_id):
            self._prepares[shard] = self._prepares.get(shard, 0) + 1
            return
        if is_decision_id(tx_id):
            base = base_tx_id(tx_id)
            done = self._decided.setdefault(base, set())
            done.add(shard)
            plan = self._plans.get(base)
            if plan is None or not done.issuperset(plan):
                return
            aborted, reason = self._decision_outcome(base)
            self._complete(base, event.completed_at, aborted, reason, cross=True)
            return
        self._complete(tx_id, event.completed_at, event.aborted, event.reason, cross=False, shard=shard)

    def _complete(
        self,
        tx_id: str,
        completed_at: float,
        aborted: bool,
        reason: str,
        cross: bool,
        shard: int = -1,
    ) -> None:
        if tx_id in self._completion_time:
            return
        self._completion_time[tx_id] = completed_at
        if aborted:
            self._completed_aborted.add(tx_id)
            self._abort_reason_of[tx_id] = reason or "abort"
        submitted_at = self._submissions.get(tx_id)
        latency = None
        if not aborted and submitted_at is not None:
            latency = completed_at - submitted_at
        self._events.append((shard, completed_at, aborted, cross, latency))
        if self._subscribers:
            event = CompletionEvent(
                tx_id=tx_id,
                completed_at=completed_at,
                aborted=aborted,
                reason=reason if aborted else "",
                submitted_at=submitted_at,
            )
            for subscriber in self._subscribers:
                subscriber(event)

    # ----------------------------------------------------------------- queries
    @property
    def blocks_committed(self) -> int:
        return sum(c.blocks_committed for c in self._shards.values())

    @property
    def submitted_count(self) -> int:
        return len(self._submissions)

    @property
    def completed_count(self) -> int:
        return len(self._completion_time)

    @property
    def aborted_count(self) -> int:
        return len(self._completed_aborted)

    @property
    def committed_count(self) -> int:
        return len(self._completion_time) - len(self._completed_aborted)

    def all_complete(self, expected: int) -> bool:
        return self.completed_count >= expected

    def completion_times(self) -> Dict[str, float]:
        return dict(self._completion_time)

    def abort_reason_of(self, tx_id: str) -> str:
        return self._abort_reason_of.get(tx_id, "")

    # ------------------------------------------------------------- summarising
    def summarise(
        self,
        paradigm: str,
        offered_load: float,
        warmup: float,
        horizon: float,
        messages_sent: int = 0,
        extra=None,
        extra_abort_reasons=None,
    ) -> RunMetrics:
        """Cluster-wide steady-state summary plus per-shard/cross-shard rows."""
        window = max(horizon - warmup, 1e-9)
        committed = aborted = 0
        abort_reasons: Dict[str, int] = {}
        latencies: List[float] = []
        per_shard: Dict[int, Dict[str, float]] = {
            shard: {"committed": 0, "aborted": 0, "latency_sum": 0.0, "latency_n": 0}
            for shard in self._shards
        }
        cross = {"committed": 0, "aborted": 0, "latency_sum": 0.0, "latency_n": 0}
        for tx_id, completed_at in self._completion_time.items():
            if completed_at < warmup or completed_at > horizon:
                continue
            if tx_id in self._completed_aborted:
                aborted += 1
                reason = self._abort_reason_of.get(tx_id, "abort")
                abort_reasons[reason] = abort_reasons.get(reason, 0) + 1
            else:
                committed += 1
                submitted_at = self._submissions.get(tx_id)
                if submitted_at is not None:
                    latencies.append(completed_at - submitted_at)
        for shard, completed_at, was_aborted, was_cross, latency in self._events:
            if completed_at < warmup or completed_at > horizon:
                continue
            bucket = cross if was_cross else per_shard.get(shard)
            if bucket is None:
                continue
            bucket["aborted" if was_aborted else "committed"] += 1
            if latency is not None:
                bucket["latency_sum"] += latency
                bucket["latency_n"] += 1

        def _row(bucket: Dict[str, float]) -> Dict[str, float]:
            n = bucket["latency_n"]
            return {
                "committed": int(bucket["committed"]),
                "aborted": int(bucket["aborted"]),
                "throughput": bucket["committed"] / window,
                "latency_avg": (bucket["latency_sum"] / n) if n else 0.0,
            }

        merged_extra = dict(extra or {})
        merged_extra.update(
            {
                "num_shards": len(self._shards),
                "per_shard": {str(shard): _row(per_shard[shard]) for shard in sorted(per_shard)},
                "cross_shard": {
                    **_row(cross),
                    "submitted": len(self._plans),
                    "prepares": int(sum(self._prepares.values())),
                },
            }
        )
        return RunMetrics(
            paradigm=paradigm,
            offered_load=offered_load,
            submitted=self.submitted_count,
            committed=committed,
            aborted=aborted,
            duration=horizon,
            measurement_window=window,
            throughput=committed / window,
            latency=LatencyStats.from_samples(latencies),
            blocks_committed=self.blocks_committed,
            messages_sent=messages_sent,
            extra=merged_extra,
            abort_reasons=dict(
                sorted({**abort_reasons, **dict(extra_abort_reasons or {})}.items())
            ),
        )
