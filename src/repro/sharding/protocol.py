"""Cross-shard two-phase-commit records and the contract that executes them.

A cross-shard transaction ``T`` (base id ``b``) is never ordered directly.
Instead the coordinator orders one PREPARE record ``b#p`` and one decision
record ``b#c`` into *each* participant shard's chain:

* ``b#p`` (phase "prepare") acquires a write-blocking lock ``_xlock:{k}`` for
  every local key ``k`` of ``T`` and stashes the key's current value inside
  the lock entry — ``(b, value)``.  If any key is already locked by another
  in-flight transaction the record aborts with ``cross_shard_lock_conflict``
  and acquires nothing (all-or-nothing per shard).
* ``b#c`` (phase "decision") releases the locks owned by ``b`` and, on a
  commit decision, applies the coordinator-computed writes for this shard.
  Decision records always execute successfully — an "abort" decision is a
  commit of the lock releases.

Both records execute through the ordinary contract path on every peer, so the
serializability oracle replays them with the same code and ordinary
transactions conflict with them through their declared read/write sets: a
PREPARE reads the data keys and writes the lock keys, a decision writes the
lock keys and the data keys.  Because the stashed read values are part of the
PREPARE's execution result, the shard's vote is a deterministic function of
the chain prefix — never of message-arrival timing.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.contracts.base import (
    CROSS_SHARD_APP,
    CROSS_SHARD_LOCK_ABORT,
    SmartContract,
    cross_shard_lock_holder,
    cross_shard_lock_key,
)
from repro.core.transaction import ReadWriteSet, Transaction, TransactionResult

PREPARE_SUFFIX = "#p"
DECISION_SUFFIX = "#c"


def is_prepare_id(tx_id: str) -> bool:
    return tx_id.endswith(PREPARE_SUFFIX)


def is_decision_id(tx_id: str) -> bool:
    return tx_id.endswith(DECISION_SUFFIX)


def is_record_id(tx_id: str) -> bool:
    return is_prepare_id(tx_id) or is_decision_id(tx_id)


def base_tx_id(tx_id: str) -> str:
    """The cross-shard transaction id a record belongs to."""
    if is_record_id(tx_id):
        return tx_id[: -len(PREPARE_SUFFIX)]
    return tx_id


def record_info(transaction: Transaction) -> Mapping[str, Any]:
    """The ``xshard`` payload of a 2PC record (empty for ordinary txs)."""
    info = transaction.payload.get("xshard")
    return info if isinstance(info, Mapping) else {}


def make_prepare_record(
    transaction: Transaction,
    shard: int,
    participants: Sequence[int],
    local_keys: Sequence[str],
    coordinator: str,
    now: float,
) -> Transaction:
    """Build shard ``shard``'s PREPARE record for ``transaction``."""
    keys = tuple(sorted(local_keys))
    # Stash every local key, not just the declared reads: contracts may read
    # the current value of a key they only declare as a write (e.g. the
    # accounting contract reads the destination balance it increments).
    reads = keys
    return Transaction(
        tx_id=transaction.tx_id + PREPARE_SUFFIX,
        application=CROSS_SHARD_APP,
        rw_set=ReadWriteSet.build(
            reads=keys, writes=(cross_shard_lock_key(k) for k in keys)
        ),
        payload={
            "xshard": {
                "phase": "prepare",
                "base": transaction.tx_id,
                "shard": shard,
                "participants": tuple(participants),
                "keys": keys,
                "reads": reads,
            }
        },
        client=coordinator,
        client_timestamp=now,
        submitted_at=now,
    )


def make_decision_record(
    transaction: Transaction,
    shard: int,
    participants: Sequence[int],
    local_keys: Sequence[str],
    decision: str,
    reason: str,
    updates: Mapping[str, Any],
    coordinator: str,
    now: float,
) -> Transaction:
    """Build shard ``shard``'s decision (COMMIT/ABORT) record."""
    keys = tuple(sorted(local_keys))
    writes = set(cross_shard_lock_key(k) for k in keys)
    writes.update(updates)
    # Declare the base keys as reads even when the decision is an abort (no
    # payload updates): the lock release must conflict with any later
    # transaction on those keys, or OXII's dependency graph would happily
    # execute that transaction in parallel — against the still-locked state —
    # while a serial chain replay sees the lock already released.
    return Transaction(
        tx_id=transaction.tx_id + DECISION_SUFFIX,
        application=CROSS_SHARD_APP,
        rw_set=ReadWriteSet.build(reads=keys, writes=writes),
        payload={
            "xshard": {
                "phase": "decision",
                "base": transaction.tx_id,
                "shard": shard,
                "participants": tuple(participants),
                "keys": keys,
                "decision": decision,
                "reason": reason,
                "updates": dict(updates),
            }
        },
        client=coordinator,
        client_timestamp=now,
        submitted_at=now,
    )


def stashed_reads(record: Transaction, result: TransactionResult) -> Dict[str, Any]:
    """Extract the read values a committed PREPARE stashed into its locks."""
    info = record_info(record)
    reads: Dict[str, Any] = {}
    for key in info.get("reads", ()):
        entry = result.updates.get(cross_shard_lock_key(key))
        reads[key] = entry[1] if isinstance(entry, (tuple, list)) and len(entry) > 1 else None
    return reads


class CrossShardContract(SmartContract):
    """Executes PREPARE and decision records deterministically on every peer."""

    application = CROSS_SHARD_APP

    def execute(
        self, transaction: Transaction, state_view: Mapping[str, object]
    ) -> TransactionResult:
        info = record_info(transaction)
        base = str(info.get("base", ""))
        keys: Tuple[str, ...] = tuple(info.get("keys", ()))
        phase = info.get("phase")
        if not base or phase not in ("prepare", "decision"):
            return TransactionResult.abort(
                transaction, reason="malformed_xshard_record"
            )
        if phase == "prepare":
            for key in keys:
                holder = cross_shard_lock_holder(state_view.get(cross_shard_lock_key(key)))
                if holder and holder != base:
                    return TransactionResult.abort(
                        transaction, reason=CROSS_SHARD_LOCK_ABORT
                    )
            # Lock entry = (holder, stashed value): the stash freezes the read
            # snapshot the shard votes with, as part of the record's result.
            updates = {
                cross_shard_lock_key(key): (base, state_view.get(key)) for key in keys
            }
            return TransactionResult(
                tx_id=transaction.tx_id,
                application=CROSS_SHARD_APP,
                updates=updates,
            )
        updates = {}
        for key in keys:
            lock = cross_shard_lock_key(key)
            if cross_shard_lock_holder(state_view.get(lock)) == base:
                updates[lock] = ""
        if info.get("decision") == "commit":
            updates.update(info.get("updates", {}))
        return TransactionResult(
            tx_id=transaction.tx_id,
            application=CROSS_SHARD_APP,
            updates=updates,
        )
