"""Deterministic key/application → shard routing.

The router is pure arithmetic over stable hashes — no RNG, no per-run state —
so the same key maps to the same shard in every process, on every platform
and for every seed.  Two rules:

* Applications are assigned round-robin: ``app-i`` lives on shard
  ``i % num_shards``.  Keys that embed an application tag (``app-3`` inside
  ``sb-app-3-17`` or ``acct:hot-app-3-0``) follow their application's shard,
  so an application's working set is co-located with its executors and the
  workload generators' ``conflict.spill`` knob directly controls the
  cross-shard fraction.
* Untagged keys (``src-0``, ``hot-global-1``) hash to a shard with blake2b —
  Python's builtin ``hash()`` is salted per process and is never used.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.transaction import Transaction

_APP_TAG = re.compile(r"app-(\d+)")


def stable_key_hash(key: str) -> int:
    """Platform- and process-stable 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps applications, keys and transactions to shards."""

    def __init__(self, num_shards: int, applications: Sequence[str]) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self._app_shard: Dict[str, int] = {
            app: index % num_shards for index, app in enumerate(applications)
        }

    # ---------------------------------------------------------------- routing
    def shard_of_application(self, application: str) -> int:
        """The shard hosting ``application`` (hash fallback for unknown ids)."""
        shard = self._app_shard.get(application)
        if shard is None:
            return stable_key_hash(application) % self.num_shards
        return shard

    def shard_of_key(self, key: str) -> int:
        """The shard owning ``key`` — exactly one, for every key."""
        match = _APP_TAG.search(key)
        if match is not None:
            shard = self._app_shard.get(f"app-{match.group(1)}")
            if shard is not None:
                return shard
        return stable_key_hash(key) % self.num_shards

    def shards_of(self, transaction: Transaction) -> Tuple[int, ...]:
        """Sorted shards a transaction touches (its participant set)."""
        keys = transaction.rw_set.keys
        if not keys:
            return (self.shard_of_application(transaction.application),)
        return tuple(sorted({self.shard_of_key(key) for key in keys}))

    def home_shard(self, transaction: Transaction) -> int:
        """The shard hosting the transaction's application (its executors)."""
        return self.shard_of_application(transaction.application)

    def is_cross_shard(self, transaction: Transaction) -> bool:
        """True unless every key lives on the transaction's home shard.

        A transaction can only take the single-shard fast path on the shard
        that hosts its application's executors/endorsers; keys hashed onto a
        *different* shard make it cross-shard even if they all share one —
        someone has to move the values between the key shard and the home
        shard, and that someone is the 2PC coordinator.
        """
        return self.shards_of(transaction) != (self.home_shard(transaction),)

    # ------------------------------------------------------------- partitions
    def shard_applications(self, shard: int, applications: Sequence[str]) -> List[str]:
        """The applications (in global order) hosted by ``shard``."""
        return [app for app in applications if self.shard_of_application(app) == shard]

    def partition_state(
        self, initial_state: Optional[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Split an initial world state into per-shard disjoint slices."""
        slices: List[Dict[str, object]] = [{} for _ in range(self.num_shards)]
        if initial_state:
            for key, value in initial_state.items():
                slices[self.shard_of_key(key)][key] = value
        return slices
