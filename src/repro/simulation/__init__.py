"""Deterministic discrete-event simulation engine.

The paper measures wall-clock throughput and latency on an AWS testbed.  A
Python reproduction cannot reproduce those wall-clock numbers directly (the
GIL serialises CPU-bound threads), so every performance experiment in this
repository runs on the simulator in this package instead: nodes are
generator-based processes, CPU parallelism is modelled with
:class:`~repro.simulation.resources.CpuPool` resources, and network delays are
timeouts.  The engine is deterministic — same seed, same schedule — which also
makes the experiments exactly reproducible.

The API is intentionally close to SimPy's:

>>> from repro.simulation import Environment
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(3.0)
...     return "done"
>>> p = env.process(proc(env))
>>> env.run()
>>> env.now, p.value
(3.0, 'done')
"""

from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process
from repro.simulation.core import Environment
from repro.simulation.resources import CpuPool, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuPool",
    "Environment",
    "Event",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
