"""The simulation environment: event heap, clock and scheduler."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process


class Environment:
    """A deterministic discrete-event simulation environment.

    Events scheduled at the same simulated time are processed in FIFO order of
    scheduling, which keeps runs fully deterministic.

    Besides :class:`Event` objects, the heap accepts *lean callbacks*
    (plain callables scheduled via :meth:`schedule_callback`): the hot
    delivery path of the transport uses these to pay one heap entry and one
    call per message instead of a full process bootstrap/resume cycle.
    """

    __slots__ = ("_now", "_queue", "_counter", "_active_process", "_profiler")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: Optional :class:`repro.profiling.PhaseProfiler`; ``None`` keeps the
        #: dispatch loop zero-cost (a single ``is None`` check per step).
        self._profiler = None

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------ event API
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None, *, allow_past: bool = False) -> Event:
        """Event that fires at the *absolute* simulated time ``when``.

        Unlike ``timeout(when - now)`` this pushes the exact target time onto
        the heap, avoiding the one-ulp drift ``now + (when - now)`` can
        introduce — the block-batched execution loops rely on waking at
        bit-identical times to their per-transaction equivalents.

        ``when`` in the past raises :class:`SimulationError` unless
        ``allow_past=True``, which clamps it to the current time (the event
        fires on the next dispatch round, after already-queued same-time
        entries — FIFO determinism is preserved).  This is the same contract
        as :meth:`call_at`.
        """
        if when < self._now:
            if not allow_past:
                raise SimulationError(
                    f"cannot schedule an event in the past (t={when}, now={self._now})"
                )
            when = self._now
        event = Event(self)
        event._value = value
        heapq.heappush(self._queue, (when, next(self._counter), event))
        return event

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Sequence[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Sequence[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def call_at(
        self, when: float, callback: Callable[[], None], *, allow_past: bool = False
    ) -> Event:
        """Invoke ``callback()`` at absolute simulated time ``when``.

        The schedule-driven clock hook used by the fault injector: external
        controllers register actions against the simulated clock without
        writing a process generator.

        ``when`` in the past raises :class:`SimulationError` unless
        ``allow_past=True``, which runs the callback at the current time
        (after already-queued same-time entries, preserving event-queue FIFO
        determinism).  The fault injector opts into ``allow_past`` because a
        schedule may legitimately name an instant the clock has already
        passed — e.g. an action at t=0 registered after warm-up; silently
        clamping for every caller hid real scheduler bugs, which is why the
        default now matches :meth:`timeout_at` and raises.
        """
        if when < self._now and not allow_past:
            raise SimulationError(
                f"cannot schedule a callback in the past (t={when}, now={self._now})"
            )
        delay = max(0.0, when - self._now)
        event = self.timeout(delay)
        event.add_callback(lambda _event: callback())
        return event

    # -------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Insert ``event`` into the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule a bare ``callback()`` to run ``delay`` seconds from now.

        The lean fast path for fire-and-forget work (message delivery): the
        callable goes on the heap directly — no :class:`Event` allocation, no
        waiter list — and is invoked once when its time arrives.  The callable
        must not be an :class:`Event` (it is distinguished from events by the
        absence of a ``callbacks`` attribute) and cannot be awaited.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule a callback in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next queue entry (an event or a lean callback)."""
        if not self._queue:
            raise SimulationError("cannot step an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past — scheduler bug")
        self._now = when
        profiler = self._profiler
        callbacks = getattr(event, "callbacks", None)
        if callbacks is None:
            # Lean callback scheduled via schedule_callback().
            if profiler is None:
                event()
            else:
                profiler.run_plain(event)
            return
        event.callbacks = None
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                profiler.run_callback(callback, event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising its exception if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if not stop_event.ok:
                raise stop_event._value
            return stop_event.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run to {horizon}, already at {self._now}")
        while self._queue and self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
