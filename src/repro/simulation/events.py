"""Event primitives for the discrete-event simulator.

An :class:`Event` is a one-shot future living on a specific
:class:`~repro.simulation.core.Environment`.  Processes yield events to
suspend until the event is triggered; the environment then resumes them with
the event's value (or raises the event's exception inside the generator).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.simulation.core import Environment

PENDING = object()


class Event:
    """A one-shot occurrence that callbacks (usually processes) wait on.

    Events are the highest-volume objects a run allocates (every timeout,
    message delivery and process suspension creates one), so the whole
    hierarchy is slotted.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event has not been triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately at the current simulation time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class ConditionEvent(Event):
    """Base for events that fire when a condition over child events holds."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot combine events from different environments")
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event.processed:
                self._child_done(event)
            else:
                self._pending += 1
                event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        self._remaining = len(events)
        super().__init__(env, events)

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining <= 0:
            self.succeed([e.value for e in self.events])


class AnyOf(ConditionEvent):
    """Fires as soon as one child fires; value is that child's value."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(event.value)
