"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields :class:`Event`
objects; each yield suspends the process until the event fires, at which point
the environment resumes the generator with the event's value.  When the
generator returns, the process event itself fires with the returned value, so
processes can be awaited like any other event (``yield env.process(...)``).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Generator, TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.core import Environment


class Interrupt(Exception):
    """Raised inside a process generator when the process is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _SleepWake:
    """Stand-in for the event a lean sleep resumes with (always ok, no value)."""

    __slots__ = ()
    ok = True
    value = None


_SLEEP_WAKE = _SleepWake()


class Process(Event):
    """An executing generator; also an event that fires when it terminates.

    Besides :class:`Event` objects, a process generator may yield a plain
    ``float``/``int`` delay — the lean equivalent of ``yield env.timeout(d)``.
    The simulator resumes the generator after exactly that much simulated
    time without allocating a :class:`~repro.simulation.events.Timeout`
    event, which is what makes per-transaction pacing loops cheap.  The
    sleep fires at the same heap position the timeout event would have
    occupied, so switching a call site between the two forms does not change
    the simulation's event order.
    """

    __slots__ = ("_generator", "name", "_target", "_sleep_epoch")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any], name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator (did you call the function?)")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Monotonic token invalidating in-flight lean sleeps on interrupt.
        self._sleep_epoch = 0
        # Kick the process off at the current simulation time.
        bootstrap = Event(env)
        bootstrap.succeed(None)
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        # Detach from the event we were waiting on, if any, and invalidate
        # any pending lean sleep so its wake-up becomes a no-op.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._sleep_epoch += 1
        self.env.schedule(wakeup)
        wakeup.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self.env._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        cls = target.__class__
        if cls is float or cls is int:
            # Lean sleep: resume after the delay without a Timeout event.
            self._target = None
            epoch = self._sleep_epoch + 1
            self._sleep_epoch = epoch
            try:
                self.env.schedule_callback(target, partial(self._wake, epoch))
            except SimulationError as exc:
                self._generator.close()
                self.fail(exc)
            return
        if not isinstance(target, Event):
            failure = SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
            self._generator.close()
            self.fail(failure)
            return
        if target.env is not self.env:
            failure = SimulationError("process yielded an event from another environment")
            self._generator.close()
            self.fail(failure)
            return
        self._target = target
        target.add_callback(self._resume)

    def _wake(self, epoch: int) -> None:
        """Fire a lean sleep; stale wake-ups (post-interrupt) are dropped."""
        if epoch != self._sleep_epoch or self.triggered:
            return
        self._resume(_SLEEP_WAKE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
