"""Capacity-limited resources and message stores for the simulator.

Three primitives cover everything the blockchain models need:

* :class:`Resource` — a counting semaphore (e.g. "this node has 8 cores").
* :class:`CpuPool` — a resource wrapper that charges CPU-bound work to
  simulated time while occupying one core, which is how parallel transaction
  execution on an executor node is modelled.
* :class:`Store` — an unbounded FIFO queue with blocking ``get``; node inboxes
  are stores fed by the simulated network.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.common.errors import SimulationError
from repro.simulation.core import Environment
from repro.simulation.events import Event


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`.

    Supports use as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released automatically
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def release(self) -> None:
        """Release the unit held by this request."""
        self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A counting semaphore with FIFO queuing of requests."""

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    # ------------------------------------------------------------------ state
    @property
    def in_use(self) -> int:
        """Number of units currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    # ------------------------------------------------------------------- API
    def request(self) -> Request:
        """Ask for one unit; the returned event fires when it is granted."""
        return Request(self)

    # -------------------------------------------------------------- internals
    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            request = self._waiting.popleft()
            self._users.append(request)
            request.succeed(request)

    def _release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        else:
            # Releasing a never-granted or cancelled request: drop it from the
            # wait queue if it is still there.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
        self._grant()


class CpuPool:
    """A pool of CPU cores charging CPU-bound work to simulated time.

    ``execute(cost)`` occupies one core for ``cost`` simulated seconds.  With
    ``capacity=8`` up to eight pieces of work progress simultaneously, which
    is exactly how the paper's 8-vCPU executor nodes run non-conflicting
    transactions in parallel.
    """

    __slots__ = ("env", "cores", "_resource", "_busy_time")

    def __init__(self, env: Environment, cores: int) -> None:
        self.env = env
        self.cores = cores
        self._resource = Resource(env, capacity=cores)
        self._busy_time = 0.0

    @property
    def utilisation_seconds(self) -> float:
        """Total core-seconds of work executed so far."""
        return self._busy_time

    @property
    def queue_length(self) -> int:
        """Number of work items waiting for a core."""
        return self._resource.queue_length

    def execute(self, cost: float, result: Any = None) -> Generator[Event, Any, Any]:
        """Process generator: hold one core for ``cost`` seconds, return ``result``."""
        if cost < 0:
            raise SimulationError(f"cpu cost must be >= 0, got {cost}")
        with self._resource.request() as grant:
            yield grant
            if cost > 0:
                yield cost
            self._busy_time += cost
        return result

    def run(self, cost: float, result: Any = None) -> Event:
        """Convenience: start ``execute`` as a process and return its event."""
        return self.env.process(self.execute(cost, result), name="cpu-work")


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the oldest
    item as soon as one is available.  Multiple pending ``get`` requests are
    served in FIFO order.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Optional[Any]:
        """Pop an item if one is available, else return ``None``."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> List[Any]:
        """Remove and return every queued item."""
        items = list(self._items)
        self._items.clear()
        return items
