"""Deterministic fault-scenario testing for the three paradigms.

The adversarial counterpart of :mod:`repro.experiments`: where the experiment
layer measures the happy path, this package *attacks* a deployment with
seeded crash/partition/link-fault schedules and checks the paper's
correctness claims with safety and liveness oracles.  Everything reproduces
from a single ``(scenario config, seed)`` pair, failing schedules shrink to
minimal JSON repro artifacts, and the CI fault battery runs a seeded random
sweep per paradigm.  See ``docs/testing.md`` for the guided tour.
"""

from repro.testing.harness import PeerView, ScenarioConfig, ScenarioOutcome, run_scenario
from repro.testing.oracles import (
    OracleViolation,
    check_cross_shard_atomicity,
    check_ledger_prefix_agreement,
    check_liveness,
    check_no_loss_no_duplication,
    check_serializability,
    run_all_oracles,
)
from repro.testing.schedule import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    random_fault_schedule,
    resolve_fault_injector,
    scenario_roles,
)
from repro.testing.shrinker import dump_repro_artifact, shrink_schedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "OracleViolation",
    "PeerView",
    "ScenarioConfig",
    "ScenarioOutcome",
    "check_cross_shard_atomicity",
    "check_ledger_prefix_agreement",
    "check_liveness",
    "check_no_loss_no_duplication",
    "check_serializability",
    "dump_repro_artifact",
    "random_fault_schedule",
    "resolve_fault_injector",
    "run_all_oracles",
    "run_scenario",
    "scenario_roles",
    "shrink_schedule",
]
