"""The deterministic scenario harness: one (spec, seed) pair → one outcome.

:func:`run_scenario` drives a full paradigm deployment under a seeded fault
schedule and returns a :class:`ScenarioOutcome` snapshot the safety/liveness
oracles inspect: every peer's ledger and world state, the entry orderer's
counters, quiescence flags and the workload that was submitted.

Unlike the performance path (:meth:`repro.paradigms.base.Deployment.run`),
the harness does not stop at a fixed horizon: after the workload and drain it
keeps running *settle windows* until the deployment makes no further progress
(ledger heights, commit counts and ordered-block counts all stable).  With
recovery enabled that is the point where every catch-up mechanism has done
its work — the state the liveness oracle is entitled to judge.

Everything derives from ``ScenarioConfig.seed`` via labelled child seeds
(:mod:`repro.common.rng`): the workload stream, the arrival process, the
network jitter, fault verdicts and (for generated schedules) the fault
timings, so two runs of the same ``(config, schedule)`` are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.rng import child_rng
from repro.core.transaction import Transaction
from repro.ledger.ledger import Ledger
from repro.ledger.state import WorldState
from repro.paradigms.run import make_deployment, prepare_driver
from repro.testing.schedule import FaultInjector, FaultSchedule, random_fault_schedule
from repro.workload.generator import WorkloadConfig


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything one fault scenario needs besides its fault schedule."""

    paradigm: str = "OXII"
    seed: int = 7
    generator: str = "accounting"
    offered_load: float = 300.0
    duration: float = 1.0
    drain: float = 1.0
    contention: float = 0.3
    conflict_scope: str = "within_application"
    consensus: str = "kafka"
    num_orderers: int = 3
    max_faulty_orderers: int = 0
    #: Extra overrides on top of the harness defaults (nested dicts allowed).
    system: Mapping[str, Any] = field(default_factory=dict)
    workload: Mapping[str, Any] = field(default_factory=dict)
    settle_window: float = 1.5
    max_settle_windows: int = 20

    @property
    def horizon(self) -> float:
        """Earliest time the settle phase may begin."""
        return self.duration + self.drain

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form recorded in repro artifacts."""
        return {
            "paradigm": self.paradigm,
            "seed": self.seed,
            "generator": self.generator,
            "offered_load": self.offered_load,
            "duration": self.duration,
            "drain": self.drain,
            "contention": self.contention,
            "conflict_scope": self.conflict_scope,
            "consensus": self.consensus,
            "num_orderers": self.num_orderers,
            "max_faulty_orderers": self.max_faulty_orderers,
            "system": dict(self.system),
            "workload": dict(self.workload),
            # Settle parameters matter for replay: a liveness failure seen
            # with a tight settle budget must not vanish under the defaults.
            "settle_window": self.settle_window,
            "max_settle_windows": self.max_settle_windows,
        }

    def system_config(self) -> SystemConfig:
        """The deployment configuration the harness runs with.

        Recovery is enabled (the point of the harness is that faults heal)
        and blocks are cut small so short scenarios cross many block
        boundaries — where the interesting interleavings live.
        """
        base = SystemConfig(
            seed=self.seed,
            consensus_protocol=self.consensus,
            num_orderers=self.num_orderers,
            max_faulty_orderers=self.max_faulty_orderers,
        ).with_overrides(
            recovery={"enabled": True},
            block_cut={"max_transactions": 25, "max_delay": 0.1},
        )
        return base.with_overrides(**dict(self.system))

    def random_schedule(self, events: int = 4, **kwargs: Any) -> FaultSchedule:
        """A seeded random schedule sized to this scenario's horizon."""
        return random_fault_schedule(
            child_rng(self.seed, "fault-schedule"),
            self.system_config(),
            horizon=self.horizon,
            events=events,
            **kwargs,
        )


@dataclass
class PeerView:
    """One peer's end-of-scenario snapshot."""

    node_id: str
    ledger: Ledger
    state: WorldState
    quiescent: bool
    committed: int
    aborted: int

    @property
    def height(self) -> int:
        return self.ledger.height

    def chain_digests(self) -> List[str]:
        """Block digests, genesis first — the ledger-prefix fingerprint."""
        return [block.digest() for block in self.ledger]


@dataclass
class ScenarioOutcome:
    """Everything the oracles (and the determinism tests) inspect."""

    config: ScenarioConfig
    schedule: FaultSchedule
    injector: FaultInjector
    handles: Any
    deployment: Any
    transactions: Sequence[Transaction]
    initial_state: Mapping[str, Any]
    submitted_ids: Tuple[str, ...]
    peers: List[PeerView]
    blocks_ordered: int
    requests_deduplicated: int
    stable: bool
    settle_windows: int
    end_time: float
    #: :class:`repro.sharding.ShardingInfo` for sharded runs, else ``None``.
    sharding: Optional[Any] = None

    def peer(self, node_id: str) -> PeerView:
        for view in self.peers:
            if view.node_id == node_id:
                return view
        raise KeyError(node_id)

    def fingerprint(self) -> Tuple:
        """A hashable digest of the run for bit-identical determinism checks.

        Covers committed data (chains and states), progress counters and the
        exact times the injector applied each fault.  Sharded runs also cover
        the coordinator's global commit/abort decisions.
        """
        base = (
            tuple(
                (p.node_id, tuple(p.chain_digests()), tuple(sorted(p.state.as_dict().items())))
                for p in self.peers
            ),
            self.blocks_ordered,
            self.requests_deduplicated,
            tuple(self.injector.applied),
            self.end_time,
        )
        if self.sharding is not None:
            decisions = tuple(
                sorted((tx, aborted, reason)
                       for tx, (aborted, reason) in self.sharding.coordinator.decisions.items())
            )
            return base + (decisions,)
        return base


def _is_quiescent(peer: Any) -> bool:
    """True when a peer has no block mid-processing and no queued work."""
    if peer.interface.pending():
        return False
    active = getattr(peer, "_active_sequence", None)
    if active is not None:
        return False
    for queue_name in ("_execution_queue", "_validation_queue"):
        queue = getattr(peer, queue_name, None)
        if queue is not None and len(queue):
            return False
    return True


def _progress_fingerprint(handles) -> Tuple:
    peers = handles.peers
    return (
        tuple(p.ledger.height for p in peers),
        tuple(getattr(p, "transactions_committed", 0) for p in peers),
        tuple(getattr(p, "transactions_aborted", 0) for p in peers),
        tuple(o.blocks_ordered for o in handles.orderers),
        handles.collector.completed_count,
        # Cross-shard 2PC progress: a coordinator still retrying keeps the
        # run "in progress", so settle waits for the protocol to drain (or
        # flags a genuine wedge via max_settle_windows).
        tuple(
            (
                len(getattr(node, "pending", ())),
                getattr(node, "commits", 0),
                getattr(node, "aborts", 0),
                getattr(node, "retries_sent", 0),
            )
            for node in getattr(handles, "extra_nodes", ())
        ),
    )


def run_scenario(
    config: ScenarioConfig,
    schedule: Optional[FaultSchedule] = None,
) -> ScenarioOutcome:
    """Run one deployment under ``schedule`` and snapshot the outcome.

    Fully deterministic: the same ``(config, schedule)`` pair produces an
    identical :meth:`ScenarioOutcome.fingerprint` on every run.
    """
    schedule = schedule if schedule is not None else FaultSchedule()
    system_config = config.system_config()
    workload_config = WorkloadConfig(
        num_applications=system_config.num_applications,
        contention=config.contention,
        conflict_scope=config.conflict_scope,
        seed=config.seed,
    ).with_overrides(**dict(config.workload))
    # The shared run-path derivation (repro.paradigms.run): adversarial
    # scenarios drive exactly the workload a production run would submit —
    # open-loop schedules and closed-loop agent populations alike.
    system_config, driver, initial_state = prepare_driver(
        config.generator, system_config, workload_config,
        config.offered_load, config.duration,
    )

    deployment = make_deployment(config.paradigm, system_config)
    handles = deployment.build(initial_state=initial_state)
    injector = FaultInjector(schedule)
    injector.install(handles, deployment)
    for orderer in handles.orderers:
        orderer.start()
    for peer in handles.peers:
        peer.start()
    for node in handles.extra_nodes:
        node.start()
    driver.start(handles, deployment)

    env = handles.env
    env.run(until=config.horizon)
    # Settle: keep granting time until no replica makes further progress, so
    # every recovery mechanism (retries, tip announcements, retransmits) has
    # finished its catch-up before the oracles judge the outcome.
    stable = False
    windows = 0
    previous = _progress_fingerprint(handles)
    while windows < config.max_settle_windows:
        env.run(until=env.now + config.settle_window)
        windows += 1
        current = _progress_fingerprint(handles)
        if current == previous:
            stable = True
            break
        previous = current

    # Every fault run exercises the transport conservation law: sent traffic
    # must be fully explained as delivered, dropped, discarded at a crashed
    # recipient, or still in flight (raises NetworkError on violation).
    handles.network.reconcile()

    entry = handles.orderers[0]
    # Closed-loop drivers only know what they submitted after the run.
    transactions = list(driver.submitted_transactions())
    peers = [
        PeerView(
            node_id=peer.node_id,
            ledger=peer.ledger,
            state=peer.state,
            quiescent=_is_quiescent(peer),
            committed=getattr(peer, "transactions_committed", 0),
            aborted=getattr(peer, "transactions_aborted", 0),
        )
        for peer in handles.peers
    ]
    return ScenarioOutcome(
        config=config,
        schedule=schedule,
        injector=injector,
        handles=handles,
        deployment=deployment,
        transactions=transactions,
        initial_state=initial_state,
        submitted_ids=tuple(tx.tx_id for tx in transactions),
        peers=peers,
        blocks_ordered=entry.blocks_ordered,
        requests_deduplicated=sum(o.requests_deduplicated for o in handles.orderers),
        stable=stable,
        settle_windows=windows,
        end_time=env.now,
        sharding=getattr(deployment, "sharding_info", lambda: None)(),
    )
