"""Safety and liveness oracles over a :class:`~repro.testing.harness.ScenarioOutcome`.

Four invariants — the paper's correctness claims, phrased as checks that run
after (and, via the deployment's poll hook, optionally during) any scenario:

* **ledger prefix agreement** — all replicas agree on the committed chain
  prefix: no two ledgers diverge at any height they share.  Sharded runs have
  one chain per shard, so agreement is checked within each shard's replica
  group.
* **no loss / no double-apply** — no transaction is ordered twice into a
  chain, and nothing appears in a ledger that a client never submitted.  On a
  sharded cluster the per-shard vocabulary is derived from the router: a
  single-shard transaction may appear (once, bare) only in its home shard's
  chain; a cross-shard transaction never appears bare — only as one PREPARE
  (``b#p``) and one decision (``b#c``) record per *participant* shard.
* **serializability** — every quiescent replica's world state equals a
  sequential re-execution of its own ledger in block order.  For OXII this is
  exactly the dependency-graph claim: parallel, graph-driven execution across
  distrusting applications commits the state a serial execution would have.
  XOV replicas are replayed under MVCC validation semantics instead (stale
  read-versions abort), matching that paradigm's commit rule.  Sharded
  replicas replay from their shard's slice of the initial state; 2PC records
  replay through the same contract path the peers executed.
* **liveness** — once every fault has healed and the run has settled, every
  replica holds every block its shard ordered, nothing stays stuck mid-block,
  the coordinator's in-flight table is empty and every decided cross-shard
  transaction's decision record reached every participant shard.

Sharded runs get a fifth invariant, **cross-shard atomicity**: participant
shards carry identical decisions for each cross-shard transaction, a commit
decision implies a commit vote (a committed PREPARE) on every participant
shard, and the decision's committed writes equal an independent re-execution
of the transaction against the read values the PREPAREs stashed — so a
mutated commit rule (e.g. a coordinator that ignores abort votes) is caught
from the chains alone.

Each violated invariant yields an :class:`OracleViolation`; an empty list
means the scenario upholds all checked properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.contracts.base import (
    CROSS_SHARD_APP,
    cross_shard_lock_holder,
    cross_shard_lock_key,
)
from repro.core.transaction import Transaction
from repro.testing.harness import PeerView, ScenarioOutcome


@dataclass(frozen=True)
class OracleViolation:
    """One invariant breach, attributed to the oracle and (usually) a node."""

    oracle: str
    message: str
    node_id: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "message": self.message, "node_id": self.node_id}


def _peer_groups(outcome: ScenarioOutcome) -> List[Tuple[Optional[int], List[PeerView]]]:
    """Replica groups that share one chain: all peers, or one group per shard."""
    if outcome.sharding is None:
        return [(None, list(outcome.peers))]
    groups: Dict[int, List[PeerView]] = {}
    for view in outcome.peers:
        groups.setdefault(outcome.sharding.node_shard[view.node_id], []).append(view)
    return sorted(groups.items())


def _initial_state_for(outcome: ScenarioOutcome, shard: Optional[int]) -> Mapping[str, Any]:
    if shard is None or outcome.sharding is None:
        return outcome.initial_state
    return outcome.sharding.shard_initial_state.get(shard, {})


# ----------------------------------------------------------- prefix agreement
def check_ledger_prefix_agreement(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """No two replicas of one chain disagree on any prefix they both hold."""
    violations: List[OracleViolation] = []
    for shard, peers in _peer_groups(outcome):
        if not peers:
            continue
        reference = max(peers, key=lambda p: (p.height, p.node_id))
        reference_digests = reference.chain_digests()
        where = "" if shard is None else f" (shard {shard})"
        for peer in peers:
            digests = peer.chain_digests()
            for height, digest in enumerate(digests):
                if digest != reference_digests[height]:
                    violations.append(
                        OracleViolation(
                            oracle="prefix_agreement",
                            node_id=peer.node_id,
                            message=(
                                f"chain diverges from {reference.node_id} at height "
                                f"{height}{where}"
                            ),
                        )
                    )
                    break
    return violations


# ------------------------------------------------------- loss and duplication
def _allowed_ids_per_shard(outcome: ScenarioOutcome) -> Dict[int, Set[str]]:
    """What each shard's chain may contain, derived from the router.

    Single-shard transactions appear bare in their home shard only;
    cross-shard transactions appear only as ``#p``/``#c`` records on their
    participant shards.
    """
    from repro.sharding.protocol import DECISION_SUFFIX, PREPARE_SUFFIX

    info = outcome.sharding
    allowed: Dict[int, Set[str]] = {shard: set() for shard in range(info.num_shards)}
    for tx in outcome.transactions:
        if info.router.is_cross_shard(tx):
            for shard in info.router.shards_of(tx):
                allowed[shard].add(tx.tx_id + PREPARE_SUFFIX)
                allowed[shard].add(tx.tx_id + DECISION_SUFFIX)
        else:
            allowed[info.router.home_shard(tx)].add(tx.tx_id)
    return allowed


def check_no_loss_no_duplication(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """No transaction ordered twice; nothing committed that was not submitted."""
    violations: List[OracleViolation] = []
    if outcome.sharding is None:
        allowed: Dict[Optional[int], Set[str]] = {None: set(outcome.submitted_ids)}
    else:
        allowed = dict(_allowed_ids_per_shard(outcome))
    for shard, peers in _peer_groups(outcome):
        shard_allowed = allowed.get(shard, set())
        for peer in peers:
            seen: Dict[str, int] = {}
            for block in peer.ledger:
                for tx in block:
                    if tx.tx_id in seen:
                        violations.append(
                            OracleViolation(
                                oracle="no_duplication",
                                node_id=peer.node_id,
                                message=(
                                    f"{tx.tx_id} ordered twice (blocks {seen[tx.tx_id]} "
                                    f"and {block.sequence})"
                                ),
                            )
                        )
                    else:
                        seen[tx.tx_id] = block.sequence
                    if tx.tx_id not in shard_allowed:
                        detail = (
                            "committed but never submitted"
                            if shard is None
                            else f"not allowed in shard {shard}'s chain"
                        )
                        violations.append(
                            OracleViolation(
                                oracle="no_loss",
                                node_id=peer.node_id,
                                message=f"{tx.tx_id} {detail}",
                            )
                        )
    return violations


# ------------------------------------------------------------ serializability
class _VersionedReplay:
    """Replay state with per-key versions (mirrors :class:`WorldState`)."""

    def __init__(self, initial: Mapping[str, Any]) -> None:
        self.values: Dict[str, Any] = dict(initial)
        self.versions: Dict[str, int] = {key: 0 for key in initial}

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def version(self, key: str) -> int:
        return self.versions.get(key, -1)

    def write(self, key: str, value: Any) -> None:
        self.values[key] = value
        self.versions[key] = self.versions.get(key, -1) + 1


def _replay_chain(
    outcome: ScenarioOutcome,
    peer: PeerView,
    initial: Mapping[str, Any],
    on_record: Optional[Callable[[Transaction, Any], None]] = None,
) -> _VersionedReplay:
    """Re-execute ``peer``'s ledger serially under its paradigm's commit rule.

    OX/OXII replicas re-run every transaction through the contract registry;
    XOV replicas apply endorsed write sets under MVCC validation (plus the
    commit-time cross-shard lock probe the validator performs).  Cross-shard
    2PC records always execute through the contract path — on every paradigm —
    and are reported to ``on_record`` for the atomicity oracle.
    """
    xov = outcome.config.paradigm == "XOV"
    contracts = outcome.handles.contracts
    replay = _VersionedReplay(initial)

    def apply(result: Any) -> None:
        if not result.is_abort:
            for key, value in result.updates.items():
                replay.write(key, value)

    for block in peer.ledger:
        for tx in block:
            if tx.application == CROSS_SHARD_APP:
                result = contracts.execute(tx, replay, executed_by="oracle")
                if on_record is not None:
                    on_record(tx, result)
                apply(result)
                continue
            if not xov:
                apply(contracts.execute(tx, replay, executed_by="oracle"))
                continue
            endorsement = tx.payload.get("endorsement")
            if not isinstance(endorsement, Mapping) or endorsement.get("status") == "abort":
                continue
            read_versions: Mapping[str, int] = endorsement.get("read_versions", {})
            if any(replay.version(k) != v for k, v in read_versions.items()):
                continue  # stale read: validation aborts the transaction
            if contracts.cross_shard_locks_enabled and any(
                (holder := cross_shard_lock_holder(replay.get(cross_shard_lock_key(k))))
                and holder != tx.tx_id
                for k in tx.rw_set.writes
            ):
                continue  # writes a key locked by an in-flight 2PC
            for key, value in endorsement.get("updates", {}).items():
                replay.write(key, value)
    return replay


def check_serializability(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """Every quiescent replica's state equals its ledger's serial re-execution.

    Replicas still mid-block (e.g. a permanently partitioned peer in an
    unhealed schedule) are skipped — their state legitimately includes a
    partially committed block; the liveness oracle is the one that flags
    them when the schedule healed.
    """
    violations: List[OracleViolation] = []
    for shard, peers in _peer_groups(outcome):
        initial = _initial_state_for(outcome, shard)
        for peer in peers:
            if not peer.quiescent:
                continue
            replay = _replay_chain(outcome, peer, initial)
            actual = peer.state.as_dict()
            if actual != replay.values:
                changed = sorted(
                    k
                    for k in set(actual) | set(replay.values)
                    if actual.get(k, _MISSING) != replay.values.get(k, _MISSING)
                )
                violations.append(
                    OracleViolation(
                        oracle="serializability",
                        node_id=peer.node_id,
                        message=(
                            f"committed state diverges from serial re-execution of its own "
                            f"ledger on {len(changed)} key(s), e.g. {changed[:3]}"
                        ),
                    )
                )
    return violations


_MISSING = object()


# ------------------------------------------------------ cross-shard atomicity
def _analyse_shard_chains(
    outcome: ScenarioOutcome,
) -> Tuple[Dict[int, Dict[str, Dict[str, Any]]], Dict[int, Dict[str, Mapping[str, Any]]]]:
    """Per shard: each 2PC record's replayed vote/stash and decision payload.

    Derived purely from the reference replica's chain — independent of the
    coordinator's in-memory state, so a lying/mutated coordinator cannot hide.
    """
    from repro.sharding.protocol import record_info, stashed_reads

    prepares: Dict[int, Dict[str, Dict[str, Any]]] = {}
    decisions: Dict[int, Dict[str, Mapping[str, Any]]] = {}
    for shard, peers in _peer_groups(outcome):
        reference = max(peers, key=lambda p: (p.height, p.node_id))
        shard_prepares: Dict[str, Dict[str, Any]] = {}
        shard_decisions: Dict[str, Mapping[str, Any]] = {}

        def on_record(tx: Transaction, result: Any) -> None:
            info = record_info(tx)
            base = str(info.get("base", ""))
            if info.get("phase") == "prepare":
                shard_prepares.setdefault(
                    base,
                    {
                        "vote": "abort" if result.is_abort else "commit",
                        "reads": {} if result.is_abort else stashed_reads(tx, result),
                    },
                )
            elif info.get("phase") == "decision":
                shard_decisions.setdefault(base, dict(info))

        _replay_chain(outcome, reference, _initial_state_for(outcome, shard), on_record)
        prepares[shard] = shard_prepares
        decisions[shard] = shard_decisions
    return prepares, decisions


def check_cross_shard_atomicity(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """Cross-shard decisions are unanimous, vote-justified and re-executable."""
    info = outcome.sharding
    if info is None:
        return []
    violations: List[OracleViolation] = []
    transactions = {tx.tx_id: tx for tx in outcome.transactions}
    plans = {
        tx_id: info.router.shards_of(tx)
        for tx_id, tx in transactions.items()
        if info.router.is_cross_shard(tx)
    }
    prepares, decisions = _analyse_shard_chains(outcome)
    for shard, shard_decisions in sorted(decisions.items()):
        for base in shard_decisions:
            if shard not in plans.get(base, ()):
                violations.append(
                    OracleViolation(
                        oracle="cross_shard_atomicity",
                        message=f"{base} has a decision record on non-participant shard {shard}",
                    )
                )
    contracts = outcome.handles.contracts
    for base, plan in sorted(plans.items()):
        decided = {
            shard: decisions[shard][base]
            for shard in plan
            if base in decisions.get(shard, {})
        }
        if not decided:
            continue  # never decided — liveness's business, not atomicity's
        kinds = {str(d.get("decision")) for d in decided.values()}
        if len(kinds) > 1:
            violations.append(
                OracleViolation(
                    oracle="cross_shard_atomicity",
                    message=f"{base} committed on some participant shards and aborted on others",
                )
            )
            continue
        decision = next(iter(kinds))
        votes = {shard: prepares.get(shard, {}).get(base) for shard in plan}
        if any(vote is None for vote in votes.values()):
            if decision == "commit":
                missing = sorted(s for s, v in votes.items() if v is None)
                violations.append(
                    OracleViolation(
                        oracle="cross_shard_atomicity",
                        message=(
                            f"{base} committed without a successful PREPARE on "
                            f"shard(s) {missing}"
                        ),
                    )
                )
            continue
        refused = sorted(s for s, v in votes.items() if v["vote"] != "commit")
        if refused:
            if decision == "commit":
                violations.append(
                    OracleViolation(
                        oracle="cross_shard_atomicity",
                        message=(
                            f"{base} committed although shard(s) {refused} voted abort"
                        ),
                    )
                )
            continue
        # Unanimous commit votes: re-execute against the stashed snapshot and
        # compare with what the decision records actually applied.
        merged: Dict[str, Any] = {}
        for shard in plan:
            merged.update(votes[shard]["reads"])
        result = contracts.execute(transactions[base], merged, executed_by="oracle")
        expected = "abort" if result.is_abort else "commit"
        if decision != expected:
            violations.append(
                OracleViolation(
                    oracle="cross_shard_atomicity",
                    message=(
                        f"{base} decided {decision!r} but re-execution on the stashed "
                        f"snapshot says {expected!r}"
                    ),
                )
            )
            continue
        if decision == "commit":
            for shard in sorted(decided):
                embedded = dict(decided[shard].get("updates", {}))
                recomputed = {
                    key: value
                    for key, value in result.updates.items()
                    if info.router.shard_of_key(key) == shard
                }
                if embedded != recomputed:
                    violations.append(
                        OracleViolation(
                            oracle="cross_shard_atomicity",
                            message=(
                                f"{base}'s committed updates on shard {shard} differ "
                                f"from re-execution"
                            ),
                        )
                    )
    return violations


# ------------------------------------------------------------------- liveness
def check_liveness(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """After heal + settle: every ordered block committed on every replica.

    Only meaningful when the schedule fully heals and the run settled; the
    caller (:func:`run_all_oracles`) gates on that.  Sharded runs additionally
    require the coordinator's in-flight table to be empty and every decided
    cross-shard transaction's decision record to be on every participant
    shard's chain.
    """
    violations: List[OracleViolation] = []
    if not outcome.stable:
        violations.append(
            OracleViolation(
                oracle="liveness",
                message=(
                    f"run did not settle within {outcome.config.max_settle_windows} windows"
                ),
            )
        )
        return violations
    info = outcome.sharding
    for shard, peers in _peer_groups(outcome):
        if shard is None:
            ordered = outcome.blocks_ordered
        else:
            ordered = info.shard_orderers[shard][0].blocks_ordered
        for peer in peers:
            if peer.height != ordered:
                violations.append(
                    OracleViolation(
                        oracle="liveness",
                        node_id=peer.node_id,
                        message=f"holds {peer.height}/{ordered} ordered blocks after heal",
                    )
                )
            if not peer.quiescent:
                violations.append(
                    OracleViolation(
                        oracle="liveness",
                        node_id=peer.node_id,
                        message="still mid-block after faults healed and the run settled",
                    )
                )
    if info is not None:
        coordinator = info.coordinator
        if coordinator.pending:
            violations.append(
                OracleViolation(
                    oracle="liveness",
                    node_id=coordinator.node_id,
                    message=(
                        f"{len(coordinator.pending)} cross-shard transaction(s) still "
                        f"in flight after heal + settle"
                    ),
                )
            )
        _, decisions = _analyse_shard_chains(outcome)
        transactions = {tx.tx_id: tx for tx in outcome.transactions}
        for base, (aborted, _reason) in sorted(coordinator.decisions.items()):
            tx = transactions.get(base)
            if tx is None:
                continue
            missing = [
                shard
                for shard in info.router.shards_of(tx)
                if base not in decisions.get(shard, {})
            ]
            if missing:
                outcome_word = "abort" if aborted else "commit"
                violations.append(
                    OracleViolation(
                        oracle="liveness",
                        message=(
                            f"{base}'s {outcome_word} decision never reached "
                            f"shard(s) {missing}"
                        ),
                    )
                )
    return violations


# ------------------------------------------------------------------ composite
def run_all_oracles(
    outcome: ScenarioOutcome,
    include_liveness: Optional[bool] = None,
) -> List[OracleViolation]:
    """Run the safety oracles, plus liveness when the schedule fully heals."""
    if include_liveness is None:
        include_liveness = outcome.schedule.heal_time() != float("inf")
    violations = [
        *check_ledger_prefix_agreement(outcome),
        *check_no_loss_no_duplication(outcome),
        *check_serializability(outcome),
        *check_cross_shard_atomicity(outcome),
    ]
    if include_liveness:
        violations.extend(check_liveness(outcome))
    return violations
