"""Safety and liveness oracles over a :class:`~repro.testing.harness.ScenarioOutcome`.

Four invariants — the paper's correctness claims, phrased as checks that run
after (and, via the deployment's poll hook, optionally during) any scenario:

* **ledger prefix agreement** — all replicas agree on the committed chain
  prefix: no two ledgers diverge at any height they share.
* **no loss / no double-apply** — no transaction is ordered twice into the
  chain, and nothing appears in a ledger that a client never submitted.
* **serializability** — every quiescent replica's world state equals a
  sequential re-execution of its own ledger in block order.  For OXII this is
  exactly the dependency-graph claim: parallel, graph-driven execution across
  distrusting applications commits the state a serial execution would have.
  XOV replicas are replayed under MVCC validation semantics instead (stale
  read-versions abort), matching that paradigm's commit rule.
* **liveness** — once every fault has healed and the run has settled, every
  replica holds every ordered block (heights equal the ordered count, nothing
  stays stuck mid-block).

Each violated invariant yields an :class:`OracleViolation`; an empty list
means the scenario upholds all checked properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.testing.harness import PeerView, ScenarioOutcome


@dataclass(frozen=True)
class OracleViolation:
    """One invariant breach, attributed to the oracle and (usually) a node."""

    oracle: str
    message: str
    node_id: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "message": self.message, "node_id": self.node_id}


# ----------------------------------------------------------- prefix agreement
def check_ledger_prefix_agreement(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """No two replicas disagree on any chain prefix they both hold."""
    violations: List[OracleViolation] = []
    if not outcome.peers:
        return violations
    reference = max(outcome.peers, key=lambda p: p.height)
    reference_digests = reference.chain_digests()
    for peer in outcome.peers:
        digests = peer.chain_digests()
        for height, digest in enumerate(digests):
            if digest != reference_digests[height]:
                violations.append(
                    OracleViolation(
                        oracle="prefix_agreement",
                        node_id=peer.node_id,
                        message=(
                            f"chain diverges from {reference.node_id} at height {height}"
                        ),
                    )
                )
                break
    return violations


# ------------------------------------------------------- loss and duplication
def check_no_loss_no_duplication(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """No transaction ordered twice; nothing committed that was not submitted."""
    violations: List[OracleViolation] = []
    submitted = set(outcome.submitted_ids)
    for peer in outcome.peers:
        seen: Dict[str, int] = {}
        for block in peer.ledger:
            for tx in block:
                if tx.tx_id in seen:
                    violations.append(
                        OracleViolation(
                            oracle="no_duplication",
                            node_id=peer.node_id,
                            message=(
                                f"{tx.tx_id} ordered twice (blocks {seen[tx.tx_id]} "
                                f"and {block.sequence})"
                            ),
                        )
                    )
                else:
                    seen[tx.tx_id] = block.sequence
                if tx.tx_id not in submitted:
                    violations.append(
                        OracleViolation(
                            oracle="no_loss",
                            node_id=peer.node_id,
                            message=f"{tx.tx_id} committed but never submitted",
                        )
                    )
    return violations


# ------------------------------------------------------------ serializability
class _VersionedReplay:
    """Replay state with per-key versions (mirrors :class:`WorldState`)."""

    def __init__(self, initial: Mapping[str, Any]) -> None:
        self.values: Dict[str, Any] = dict(initial)
        self.versions: Dict[str, int] = {key: 0 for key in initial}

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def version(self, key: str) -> int:
        return self.versions.get(key, -1)

    def write(self, key: str, value: Any) -> None:
        self.values[key] = value
        self.versions[key] = self.versions.get(key, -1) + 1


def _replay_sequential(outcome: ScenarioOutcome, peer: PeerView) -> _VersionedReplay:
    """Re-execute the peer's ledger serially with the deployment's contracts."""
    replay = _VersionedReplay(outcome.initial_state)
    contracts = outcome.handles.contracts
    for block in peer.ledger:
        for tx in block:
            result = contracts.execute(tx, replay, executed_by="oracle")
            if not result.is_abort:
                for key, value in result.updates.items():
                    replay.write(key, value)
    return replay


def _replay_xov(outcome: ScenarioOutcome, peer: PeerView) -> _VersionedReplay:
    """Replay the peer's ledger under MVCC validation (the XOV commit rule)."""
    replay = _VersionedReplay(outcome.initial_state)
    for block in peer.ledger:
        for tx in block:
            endorsement = tx.payload.get("endorsement")
            if not isinstance(endorsement, Mapping) or endorsement.get("status") == "abort":
                continue
            read_versions: Mapping[str, int] = endorsement.get("read_versions", {})
            if any(replay.version(k) != v for k, v in read_versions.items()):
                continue  # stale read: validation aborts the transaction
            for key, value in endorsement.get("updates", {}).items():
                replay.write(key, value)
    return replay


def check_serializability(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """Every quiescent replica's state equals its ledger's serial re-execution.

    Replicas still mid-block (e.g. a permanently partitioned peer in an
    unhealed schedule) are skipped — their state legitimately includes a
    partially committed block; the liveness oracle is the one that flags
    them when the schedule healed.
    """
    violations: List[OracleViolation] = []
    replay_fn = _replay_xov if outcome.config.paradigm == "XOV" else _replay_sequential
    for peer in outcome.peers:
        if not peer.quiescent:
            continue
        replay = replay_fn(outcome, peer)
        actual = peer.state.as_dict()
        if actual != replay.values:
            changed = sorted(
                k
                for k in set(actual) | set(replay.values)
                if actual.get(k, _MISSING) != replay.values.get(k, _MISSING)
            )
            violations.append(
                OracleViolation(
                    oracle="serializability",
                    node_id=peer.node_id,
                    message=(
                        f"committed state diverges from serial re-execution of its own "
                        f"ledger on {len(changed)} key(s), e.g. {changed[:3]}"
                    ),
                )
            )
    return violations


_MISSING = object()


# ------------------------------------------------------------------- liveness
def check_liveness(outcome: ScenarioOutcome) -> List[OracleViolation]:
    """After heal + settle: every ordered block committed on every replica.

    Only meaningful when the schedule fully heals and the run settled; the
    caller (:func:`run_all_oracles`) gates on that.
    """
    violations: List[OracleViolation] = []
    if not outcome.stable:
        violations.append(
            OracleViolation(
                oracle="liveness",
                message=(
                    f"run did not settle within {outcome.config.max_settle_windows} windows"
                ),
            )
        )
        return violations
    ordered = outcome.blocks_ordered
    for peer in outcome.peers:
        if peer.height != ordered:
            violations.append(
                OracleViolation(
                    oracle="liveness",
                    node_id=peer.node_id,
                    message=f"holds {peer.height}/{ordered} ordered blocks after heal",
                )
            )
        if not peer.quiescent:
            violations.append(
                OracleViolation(
                    oracle="liveness",
                    node_id=peer.node_id,
                    message="still mid-block after faults healed and the run settled",
                )
            )
    return violations


# ------------------------------------------------------------------ composite
def run_all_oracles(
    outcome: ScenarioOutcome,
    include_liveness: Optional[bool] = None,
) -> List[OracleViolation]:
    """Run the safety oracles, plus liveness when the schedule fully heals."""
    if include_liveness is None:
        include_liveness = outcome.schedule.heal_time() != float("inf")
    violations = [
        *check_ledger_prefix_agreement(outcome),
        *check_no_loss_no_duplication(outcome),
        *check_serializability(outcome),
    ]
    if include_liveness:
        violations.extend(check_liveness(outcome))
    return violations
