"""Seeded fault schedules: declarative crash/partition/link events over time.

A :class:`FaultSchedule` is the adversary of one scenario run: a sorted list
of :class:`FaultEvent` entries, each applying (or healing) one fault at an
absolute simulated time.  Schedules are plain data — they serialise to/from
JSON dicts, which is what makes a failing schedule a *repro artifact* the
shrinker can minimise and a test can replay.

Targets are **roles**, not node ids, so one schedule drives any paradigm:

* ``orderer:<i>`` — the i-th ordering-service node
* ``leader`` — the entry orderer (primary / partition lead)
* ``peer:<i>`` / ``executor:<i>`` — the i-th executor/committing peer
* ``gateway`` — the client gateway
* ``orderers`` / ``peers`` — whole groups, ``all`` — every node
* ``coordinator`` — the cross-shard 2PC coordinator (sharded deployments)
* ``shard:<k>`` — every node of shard ``k`` (sharded deployments)

:class:`FaultInjector` resolves roles against a built deployment and registers
each event with the simulated clock (:meth:`Environment.call_at`), so fault
timing is exact and deterministic.  :func:`random_fault_schedule` generates a
schedule from a seeded RNG — every fault it injects heals by ``heal_by``, the
precondition for the liveness oracle.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import child_rng

#: Actions a fault event may carry; ``heal_*`` actions undo their counterpart.
ACTIONS = ("crash", "restart", "partition", "heal_partition", "degrade_link", "heal_link")

#: Fields of a link degradation, with their neutral defaults.
_LINK_FIELDS = ("drop_probability", "extra_delay", "duplicate_probability", "reorder_window")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault action at an absolute simulated time.

    ``target`` names the node role for ``crash``/``restart``; ``sender`` and
    ``recipient`` name the (directed) link endpoints for the link actions;
    ``groups`` lists the partition's explicit groups — nodes in none of them
    form an implicit remainder group, so a single listed group means "isolate
    these from everyone else".
    """

    at: float
    action: str
    target: str = ""
    sender: str = ""
    recipient: str = ""
    groups: Tuple[Tuple[str, ...], ...] = ()
    drop_probability: float = 0.0
    extra_delay: float = 0.0
    duplicate_probability: float = 0.0
    reorder_window: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"fault event time must be >= 0, got {self.at}")
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {list(ACTIONS)}"
            )
        if self.action in ("crash", "restart") and not self.target:
            raise ConfigurationError(f"{self.action} event needs a target role")
        if self.action == "partition" and not self.groups:
            raise ConfigurationError("partition event needs at least one group")
        if self.action in ("degrade_link", "heal_link") and not (self.sender and self.recipient):
            raise ConfigurationError(f"{self.action} event needs sender and recipient roles")
        object.__setattr__(self, "groups", tuple(tuple(g) for g in self.groups))

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict form: only non-neutral fields are emitted."""
        out: Dict[str, Any] = {"at": self.at, "action": self.action}
        if self.target:
            out["target"] = self.target
        if self.sender:
            out["sender"] = self.sender
        if self.recipient:
            out["recipient"] = self.recipient
        if self.groups:
            out["groups"] = [list(g) for g in self.groups]
        for name in _LINK_FIELDS:
            value = getattr(self, name)
            if value:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"fault event must be a mapping, got {type(data).__name__}")
        valid = {
            "at", "action", "target", "sender", "recipient", "groups", *_LINK_FIELDS,
        }
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(f"unknown fault event field(s) {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e) for e in self.events
        )
        object.__setattr__(self, "events", tuple(sorted(events, key=lambda e: e.at)))

    def __len__(self) -> int:
        return len(self.events)

    def heal_time(self) -> float:
        """Time after which no injected fault is active (``inf`` if never).

        The liveness oracle only applies to schedules that fully heal: a
        crash without a later restart, a partition without a heal, or a link
        degradation without a heal keeps the fault active forever.
        """
        healed = 0.0
        crashed: Dict[str, float] = {}
        partition_since: Optional[float] = None
        links: Dict[Tuple[str, str], float] = {}
        for event in self.events:
            if event.action == "crash":
                crashed[event.target] = event.at
            elif event.action == "restart":
                crashed.pop(event.target, None)
                healed = max(healed, event.at)
            elif event.action == "partition":
                partition_since = event.at
            elif event.action == "heal_partition":
                partition_since = None
                healed = max(healed, event.at)
            elif event.action == "degrade_link":
                links[(event.sender, event.recipient)] = event.at
            elif event.action == "heal_link":
                links.pop((event.sender, event.recipient), None)
                healed = max(healed, event.at)
        if crashed or partition_since is not None or links:
            return float("inf")
        return healed

    # -------------------------------------------------------------- serialise
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault schedule must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"events"}
        if unknown:
            raise ConfigurationError(f"unknown fault schedule field(s) {sorted(unknown)}")
        return cls(events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())))

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(payload + "\n", encoding="utf-8")
        return payload

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th event removed (shrinker primitive)."""
        events = self.events
        return FaultSchedule(events=events[:index] + events[index + 1 :])


# --------------------------------------------------------------- role language
def resolve_role(
    role: str,
    orderer_names: Sequence[str],
    peer_names: Sequence[str],
    gateway: str,
) -> List[str]:
    """Expand one role string into the node ids it names."""
    if role == "all":
        return [*orderer_names, *peer_names, gateway]
    if role == "orderers":
        return list(orderer_names)
    if role in ("peers", "executors"):
        return list(peer_names)
    if role == "gateway":
        return [gateway]
    if role == "leader":
        return [orderer_names[0]]
    for prefix, names in (("orderer", orderer_names), ("peer", peer_names), ("executor", peer_names)):
        if role.startswith(prefix + ":"):
            index = int(role.split(":", 1)[1])
            if not 0 <= index < len(names):
                raise ConfigurationError(
                    f"role {role!r} out of range: deployment has {len(names)} {prefix}s"
                )
            return [names[index]]
    # Literal node id as an escape hatch.
    if role in orderer_names or role in peer_names or role == gateway:
        return [role]
    raise ConfigurationError(f"unknown fault target role {role!r}")


class FaultInjector:
    """Installs a :class:`FaultSchedule` into a built deployment.

    ``install(handles, deployment)`` resolves every role against the actual
    node names, then registers each event with the environment's clock via
    :meth:`~repro.simulation.Environment.call_at`.  The injector records what
    it applied (``applied``) and which nodes any fault ever touched
    (``affected_nodes``) for the oracles' diagnostics.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.applied: List[Tuple[float, str]] = []
        self.affected_nodes: Set[str] = set()
        self._handles = None
        self._nodes: Dict[str, Any] = {}
        self._orderer_names: List[str] = []
        self._peer_names: List[str] = []
        self._gateway = ""
        self._extra_names: List[str] = []
        self._groups: Dict[str, List[str]] = {}

    # ------------------------------------------------------------ installation
    def install(self, handles, deployment) -> None:
        """Resolve roles and register every event against the simulated clock."""
        self._handles = handles
        self._orderer_names = [o.node_id for o in handles.orderers]
        self._peer_names = [p.node_id for p in handles.peers]
        self._gateway = handles.gateway.node_id
        extras = list(getattr(handles, "extra_nodes", ()))
        self._extra_names = [n.node_id for n in extras]
        # Sharded deployments expose shard membership for the "shard:<k>"
        # group role; unsharded ones leave it empty.
        self._groups = {
            f"shard:{shard}": list(members)
            for shard, members in getattr(deployment, "shard_members", {}).items()
        }
        self._nodes = {
            n.node_id: n
            for n in (*handles.orderers, *handles.peers, handles.gateway, *extras)
        }
        env = handles.env
        # allow_past: a schedule may name an instant the clock has already
        # passed (e.g. an action at t=0 installed after deployment warm-up);
        # such actions apply immediately, in schedule order.
        for event in self.schedule.events:
            env.call_at(event.at, lambda event=event: self._apply(event), allow_past=True)

    def _resolve(self, role: str) -> List[str]:
        if role == "coordinator":
            if not self._extra_names:
                raise ConfigurationError(
                    "role 'coordinator' needs a sharded deployment "
                    "(shards.num_shards > 1); this deployment has no coordinator"
                )
            return list(self._extra_names)
        if role in self._groups:
            return list(self._groups[role])
        if role.startswith("shard:"):
            raise ConfigurationError(
                f"unknown shard role {role!r}; this deployment has "
                f"{sorted(self._groups) if self._groups else 'no shard groups'}"
            )
        if role in self._extra_names:
            return [role]
        return resolve_role(role, self._orderer_names, self._peer_names, self._gateway)

    # ------------------------------------------------------------- application
    def _apply(self, event: FaultEvent) -> None:
        faults = self._handles.network.faults
        if event.action == "crash":
            for node_id in self._resolve(event.target):
                self._nodes[node_id].crash()
                self.affected_nodes.add(node_id)
        elif event.action == "restart":
            for node_id in self._resolve(event.target):
                self._nodes[node_id].restart()
        elif event.action == "partition":
            groups: List[Set[str]] = []
            members: Set[str] = set()
            for group in event.groups:
                resolved = {node_id for role in group for node_id in self._resolve(role)}
                groups.append(resolved)
                members |= resolved
            # Nodes in no listed group keep talking to each other: they form
            # the implicit remainder group.
            remainder = set(self._nodes) - members
            if remainder:
                groups.append(remainder)
            # Every group that does not contain the entry orderer is cut off
            # from ordering — those nodes may miss blocks until the heal.
            entry = self._orderer_names[0]
            for group in groups:
                if entry not in group:
                    self.affected_nodes |= group
            faults.partition(*groups)
        elif event.action == "heal_partition":
            faults.heal_partition()
        elif event.action == "degrade_link":
            for sender in self._resolve(event.sender):
                for recipient in self._resolve(event.recipient):
                    if sender == recipient:
                        continue
                    faults.degrade_link(
                        sender,
                        recipient,
                        drop_probability=event.drop_probability,
                        extra_delay=event.extra_delay,
                        duplicate_probability=event.duplicate_probability,
                        reorder_window=event.reorder_window,
                    )
                    if event.drop_probability > 0:
                        self.affected_nodes.add(recipient)
        elif event.action == "heal_link":
            for sender in self._resolve(event.sender):
                for recipient in self._resolve(event.recipient):
                    if sender != recipient:
                        faults.heal_link(sender, recipient)
        self.applied.append((self._handles.env.now, event.action))


# ---------------------------------------------------------- random generation
def scenario_roles(config: SystemConfig) -> Dict[str, List[str]]:
    """The role vocabulary a deployment of ``config`` offers the generator."""
    orderers = [f"orderer:{i}" for i in range(config.num_orderers)]
    peers = [f"peer:{i}" for i in range(config.num_executors + config.num_non_executors)]
    return {"orderers": orderers, "peers": peers}


def random_fault_schedule(
    rng: random.Random,
    config: SystemConfig,
    horizon: float,
    events: int = 4,
    heal_by: Optional[float] = None,
    kinds: Sequence[str] = ("crash", "partition", "link"),
    min_duration: float = 0.1,
) -> FaultSchedule:
    """Generate a seeded schedule of ``events`` fault arcs that all heal.

    Each arc is a (fault, heal) pair: crash→restart, partition→heal,
    degrade→heal.  Every heal lands by ``heal_by`` (default ``0.7 *
    horizon``), so a run that settles after the horizon satisfies the
    liveness oracle's precondition.  All randomness comes from ``rng``.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    heal_by = 0.7 * horizon if heal_by is None else heal_by
    if not 0 < heal_by <= horizon:
        raise ConfigurationError(f"heal_by must lie in (0, horizon], got {heal_by}")
    roles = scenario_roles(config)
    crashable = roles["orderers"] + roles["peers"]
    link_endpoints = ["gateway", *crashable]
    out: List[FaultEvent] = []
    for _ in range(events):
        latest_start = max(min_duration, heal_by - min_duration)
        start = rng.uniform(min(min_duration, latest_start), latest_start)
        end = rng.uniform(min(start + min_duration, heal_by), heal_by)
        kind = rng.choice(list(kinds))
        if kind == "crash":
            target = rng.choice(crashable)
            out.append(FaultEvent(at=start, action="crash", target=target))
            out.append(FaultEvent(at=end, action="restart", target=target))
        elif kind == "partition":
            size = rng.randint(1, max(1, len(crashable) // 2))
            group = tuple(rng.sample(crashable, size))
            out.append(FaultEvent(at=start, action="partition", groups=(group,)))
            out.append(FaultEvent(at=end, action="heal_partition"))
        else:  # link degradation
            sender, recipient = rng.sample(link_endpoints, 2)
            out.append(
                FaultEvent(
                    at=start,
                    action="degrade_link",
                    sender=sender,
                    recipient=recipient,
                    drop_probability=rng.choice([0.0, rng.uniform(0.2, 1.0)]),
                    extra_delay=rng.choice([0.0, rng.uniform(0.0, 0.02)]),
                    duplicate_probability=rng.choice([0.0, rng.uniform(0.2, 0.8)]),
                    reorder_window=rng.choice([0.0, rng.uniform(0.0, 0.02)]),
                )
            )
            out.append(
                FaultEvent(at=end, action="heal_link", sender=sender, recipient=recipient)
            )
    return FaultSchedule(events=tuple(out))


def resolve_fault_injector(
    faults: object,
    seed: int,
    system_config: Optional[SystemConfig] = None,
    default_horizon: float = 2.0,
) -> FaultInjector:
    """Coerce any accepted ``faults`` value into an installable injector.

    Accepts a ready :class:`FaultInjector`, a :class:`FaultSchedule`, or the
    dict form an experiment spec carries: ``{"events": [...]}`` for explicit
    schedules, ``{"random": {"events": N, "horizon": H, ...}}`` for seeded
    random ones (derived from the scenario seed, label ``fault-schedule``).
    """
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSchedule):
        return FaultInjector(faults)
    if isinstance(faults, Mapping):
        if "random" in faults:
            params = dict(faults["random"])
            unknown = set(faults) - {"random"}
            if unknown:
                raise ConfigurationError(f"unknown faults field(s) {sorted(unknown)}")
            valid = {"horizon", "events", "heal_by", "kinds", "min_duration"}
            unknown = set(params) - valid
            if unknown:
                raise ConfigurationError(
                    f"unknown faults.random field(s) {sorted(unknown)}; "
                    f"expected a subset of {sorted(valid)}"
                )
            horizon = float(params.pop("horizon", default_horizon))
            schedule = random_fault_schedule(
                child_rng(seed, "fault-schedule"),
                system_config or SystemConfig(),
                horizon,
                **params,
            )
            return FaultInjector(schedule)
        return FaultInjector(FaultSchedule.from_dict(faults))
    raise ConfigurationError(
        f"faults must be a FaultInjector, FaultSchedule or mapping, got {type(faults).__name__}"
    )
