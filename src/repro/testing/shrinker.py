"""Greedy schedule shrinking and JSON repro artifacts.

When a fault battery run violates an oracle, the full random schedule is
rarely the smallest demonstration.  :func:`shrink_schedule` minimises it with
a greedy delta-debugging pass: repeatedly drop events (latest first, so the
failing *prefix* shrinks first) while the caller's predicate still reports
the failure.  The result — typically a handful of events — is dumped with
:func:`dump_repro_artifact` as a JSON file a human (or CI) can replay via
``FaultSchedule.from_file`` and :func:`~repro.testing.harness.run_scenario`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.testing.harness import ScenarioConfig
from repro.testing.schedule import FaultSchedule

#: Schema stamp written into repro artifacts so replay tooling can evolve.
ARTIFACT_SCHEMA_VERSION = 1


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_attempts: int = 200,
) -> FaultSchedule:
    """Minimise ``schedule`` while ``still_fails`` keeps returning True.

    Greedy one-event-at-a-time removal, scanning from the last event to the
    first (suffix truncation happens first, so the surviving schedule is the
    smallest failing prefix), repeated until a full pass removes nothing.
    ``still_fails`` must be deterministic — it re-runs the scenario — and is
    invoked at most ``max_attempts`` times, which bounds shrinking cost for
    pathologically long schedules.
    """
    if not still_fails(schedule):
        raise ValueError("shrink_schedule needs a schedule that currently fails")
    attempts = 0
    current = schedule
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for index in reversed(range(len(current))):
            if attempts >= max_attempts:
                break
            candidate = current.without(index)
            attempts += 1
            if still_fails(candidate):
                current = candidate
                improved = True
    return current


def dump_repro_artifact(
    path: Union[str, Path],
    config: ScenarioConfig,
    schedule: FaultSchedule,
    violations: Sequence[Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a self-contained JSON repro of a failing scenario.

    The artifact carries everything needed to replay the failure: the
    scenario parameters, the (shrunken) fault schedule and the violations it
    produced.  CI uploads these on fault-battery failures.
    """
    payload = {
        "artifact_schema_version": ARTIFACT_SCHEMA_VERSION,
        "scenario": config.to_dict(),
        "schedule": schedule.to_dict(),
        "violations": [
            v.to_dict() if hasattr(v, "to_dict") else str(v) for v in violations
        ],
        **dict(extra or {}),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
