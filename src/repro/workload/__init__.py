"""Workload generation for the evaluation experiments.

The paper evaluates all three paradigms on a simple accounting application
with workloads of varying *degree of contention* — the fraction of conflicting
transactions in each block — both within a single application and across
applications.  :class:`~repro.workload.generator.WorkloadGenerator` produces
exactly those workloads: it pre-creates the account population, then emits
transfer transactions where a configurable fraction write a designated hot
account (creating a dependency chain) while the rest touch unique accounts
(fully parallelisable).
"""

from repro.workload.generator import ConflictScope, WorkloadConfig, WorkloadGenerator
from repro.workload.arrivals import ArrivalSchedule, constant_rate, poisson_rate
from repro.workload.zipfian import ZipfianSampler

__all__ = [
    "ArrivalSchedule",
    "ConflictScope",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ZipfianSampler",
    "constant_rate",
    "poisson_rate",
]
