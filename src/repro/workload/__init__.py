"""Workload generation for the evaluation experiments.

A pluggable suite of benchmark workloads built on one general conflict model
(:mod:`repro.workload.conflict`): Zipfian/uniform key selection over
configurable per-application keyspaces, tunable read/write-set sizes, a
hot-set fraction and cross-application spill.  Four generators ship built in
(all registered in :data:`repro.common.registry.workload_registry` and
selectable by name from experiment specs):

* ``accounting`` — the paper's Section V hot-account workload: a fraction
  ``contention`` of transfers write a designated hot account and form a
  dependency chain (Figures 5–7).
* ``smallbank`` — a SmallBank-style banking mix over a shared account
  population: multi-leg transfers, skewed destinations, organic
  read-modify-write contention.
* ``kvstore`` — read-heavy skewed reads with rare hot-set writes; blocks
  carry near-conflict-free graphs.
* ``supply_chain`` — asset lifecycles whose ship/inspect steps form natural
  multi-hop dependency chains hopping across applications.
* ``agents`` — the closed-loop agent-population workload
  (:mod:`repro.agents`): stateful agents with behaviour policies react to
  per-transaction commit/abort feedback instead of replaying a fixed list.

See docs/workloads.md for the knob-by-knob guide.
"""

from repro.workload.arrivals import ArrivalSchedule, constant_rate, poisson_rate
from repro.workload.base import WorkloadBase
from repro.workload.conflict import ConflictModel, KeyChooser
from repro.workload.generator import ConflictScope, WorkloadConfig, WorkloadGenerator
from repro.workload.kvworkload import KeyValueWorkload
from repro.workload.smallbank import SmallBankWorkload
from repro.workload.supply import SupplyChainWorkload
from repro.workload.zipfian import ZipfianSampler

__all__ = [
    "ArrivalSchedule",
    "ConflictModel",
    "ConflictScope",
    "KeyChooser",
    "KeyValueWorkload",
    "SmallBankWorkload",
    "SupplyChainWorkload",
    "WorkloadBase",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ZipfianSampler",
    "constant_rate",
    "poisson_rate",
]

# Registered last: repro.agents imports this package (WorkloadBase), so the
# plain module import — not a from-import — tolerates the half-initialised
# module when repro.agents is what triggered our import in the first place.
import repro.agents.workload  # noqa: E402,F401
