"""Client request arrival schedules (open-loop load generation).

The paper reports throughput "just below saturation" by increasing the number
of clients until end-to-end throughput saturates.  The reproduction drives
each run with an open-loop arrival schedule at a configurable offered rate and
sweeps the rate to find the saturation knee (see
:mod:`repro.metrics.saturation`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class ArrivalSchedule:
    """Submission times (seconds from the start of the run) for each transaction."""

    times: tuple

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[float]:
        return iter(self.times)

    @property
    def duration(self) -> float:
        """Time of the last arrival."""
        return self.times[-1] if self.times else 0.0

    @property
    def offered_rate(self) -> float:
        """Average offered load in transactions per second."""
        if not self.times or self.duration == 0:
            return 0.0
        return len(self.times) / self.duration


def constant_rate(count: int, rate: float) -> ArrivalSchedule:
    """Evenly spaced arrivals at ``rate`` transactions per second."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be positive")
    interval = 1.0 / rate
    return ArrivalSchedule(times=tuple(i * interval for i in range(count)))


def poisson_rate(count: int, rate: float, seed: int = 7) -> ArrivalSchedule:
    """Poisson arrivals at mean ``rate`` transactions per second."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    times: List[float] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return ArrivalSchedule(times=tuple(times))
