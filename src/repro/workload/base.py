"""Shared machinery for workload generators.

A workload generator is any factory registered with ``@register_workload``
that, given a :class:`~repro.workload.generator.WorkloadConfig`, produces

* ``generate(count)`` — a list of :class:`~repro.core.transaction.Transaction`
  with fresh ids on every call,
* ``initial_state(transactions)`` — the world state those transactions need,
* optionally ``describe()`` and ``expected_conflict_fraction()`` for reports.

:class:`WorkloadBase` implements the shared parts — seeded RNG, client and
application cycling, sequence numbering, a :class:`~repro.workload.conflict.KeyChooser`
built from the config's conflict model — so a concrete workload only writes
``_build_transaction`` plus its state bootstrap.  Subclasses declare the
registered smart contract their transactions execute against via the
``contract`` class attribute; the run layer then aligns the deployment's
installed contract with it automatically.  Left at ``None``, the deployment's
own ``SystemConfig.contract`` is respected as-is.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.core.transaction import Transaction
from repro.workload.conflict import KeyChooser

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (generator imports us)
    from repro.workload.generator import WorkloadConfig


class WorkloadBase(abc.ABC):
    """Template for workload generators driven by one seeded RNG."""

    #: Registered contract name the generated transactions are written for
    #: (``None`` — no declaration; the deployment keeps its configured one).
    contract: Optional[str] = None
    #: True for closed-loop generators that drive the run through a workload
    #: driver (``build_driver``) instead of a pre-generated transaction list.
    population_driven: bool = False
    #: Short multi-line summary of the WorkloadConfig knobs this generator
    #: reads, shown by ``bench list`` as a schema hint for spec authors.
    config_hint: str = ""

    def __init__(self, config: "WorkloadConfig") -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._generated = 0
        self._applications = config.application_names()
        self._clients = config.client_names()
        self._chooser = KeyChooser(config.conflict, self._rng)

    # --------------------------------------------------------------- workload
    def generate(self, count: int) -> List[Transaction]:
        """Generate ``count`` transactions (timestamps left to the orderers).

        Transaction ids encode the generator sequence number, so repeated
        calls keep producing fresh, non-overlapping identifiers.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count!r}")
        transactions: List[Transaction] = []
        for _ in range(count):
            index = self._generated
            self._generated += 1
            transactions.append(self._build_transaction(index))
        return transactions

    @abc.abstractmethod
    def _build_transaction(self, index: int) -> Transaction:
        """Build the ``index``-th transaction of the stream."""

    @abc.abstractmethod
    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, object]:
        """World state required for ``transactions`` to execute."""

    # ----------------------------------------------------------------- shared
    def client_for(self, index: int) -> str:
        """Issuing client of the ``index``-th transaction (round-robin)."""
        return self._clients[index % len(self._clients)]

    def application_for(self, index: int) -> str:
        """Home application of the ``index``-th transaction (round-robin)."""
        return self._applications[index % len(self._applications)]

    # -------------------------------------------------------------- analytics
    def expected_conflict_fraction(self) -> float:
        """The configured degree of contention."""
        return self.config.contention

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by the benchmark reports."""
        conflict = self.config.conflict
        return {
            "contract": self.contract,
            "applications": self.config.num_applications,
            "clients": self.config.num_clients,
            "contention": self.config.contention,
            "conflict_scope": self.config.conflict_scope.value,
            "keyspace": conflict.keyspace,
            "selection": conflict.selection,
            "spill": conflict.spill,
            "generated": self._generated,
        }
