"""A general conflict model for benchmark workloads.

Every built-in workload (and any third-party one) shapes its contention with
the same small set of knobs, collected in :class:`ConflictModel`:

* ``keyspace`` — how many records each application owns.
* ``selection`` — how keys are drawn from a keyspace: ``"uniform"`` or
  ``"zipfian"`` (key 0 most popular, skew set by ``zipf_exponent``).
* ``hot_fraction`` — the leading fraction of each keyspace treated as the
  *hot set*; workloads direct their conflicting accesses there.
* ``read_set_size`` / ``write_set_size`` — how many records one transaction
  reads / writes (workloads interpret these; e.g. the SmallBank mix uses the
  write-set size as the number of transfer legs).
* ``spill`` — probability that a key access lands in *another* application's
  keyspace, creating cross-application dependencies on the shared datastore
  (the paper's OXII* scenario generalised beyond one global hot account).

:class:`KeyChooser` turns a model into concrete draws.  It deliberately takes
the workload's own ``random.Random`` so that a generator's entire output is a
pure function of ``WorkloadConfig.seed`` — the engine's bit-identical
serial/parallel guarantee rests on that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.config import check_fraction, check_non_negative, check_positive_int
from repro.common.errors import ConfigurationError
from repro.workload.zipfian import ZipfianSampler

#: Accepted values of :attr:`ConflictModel.selection`.
KEY_SELECTIONS = ("uniform", "zipfian")


@dataclass(frozen=True)
class ConflictModel:
    """How a workload picks the records its transactions touch."""

    keyspace: int = 1024
    selection: str = "uniform"
    zipf_exponent: float = 0.99
    hot_fraction: float = 0.01
    read_set_size: int = 1
    write_set_size: int = 1
    spill: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int("keyspace", self.keyspace)
        if self.selection not in KEY_SELECTIONS:
            raise ConfigurationError(
                f"selection must be one of {list(KEY_SELECTIONS)}, got {self.selection!r}"
            )
        check_non_negative("zipf_exponent", self.zipf_exponent)
        check_fraction("hot_fraction", self.hot_fraction)
        check_positive_int("read_set_size", self.read_set_size)
        check_positive_int("write_set_size", self.write_set_size)
        check_fraction("spill", self.spill)

    @property
    def hot_set_size(self) -> int:
        """Number of hot keys per application (at least 1)."""
        return max(1, int(self.keyspace * self.hot_fraction))


class KeyChooser:
    """Draws key indices and applications according to a :class:`ConflictModel`.

    All randomness comes from the ``rng`` handed in by the owning workload
    generator, so draws interleave deterministically with the generator's
    other decisions.
    """

    def __init__(self, model: ConflictModel, rng: random.Random) -> None:
        self.model = model
        self.rng = rng
        self._zipf: Optional[ZipfianSampler] = (
            ZipfianSampler(model.keyspace, model.zipf_exponent)
            if model.selection == "zipfian"
            else None
        )

    # ------------------------------------------------------------------ keys
    def key_index(self) -> int:
        """One key index drawn by the configured selection over the keyspace."""
        if self._zipf is not None:
            return self._zipf.sample_from(self.rng)
        return self.rng.randrange(self.model.keyspace)

    def hot_index(self) -> int:
        """A key index from the hot set (uniform within the hot prefix)."""
        return self.rng.randrange(self.model.hot_set_size)

    def cold_index(self) -> int:
        """A key index guaranteed to be outside the hot set (when one exists)."""
        hot = self.model.hot_set_size
        if hot >= self.model.keyspace:
            return self.rng.randrange(self.model.keyspace)
        return self.rng.randrange(hot, self.model.keyspace)

    def distinct_indices(self, count: int, hot: bool = False) -> List[int]:
        """``count`` distinct key indices (hot-set draws when ``hot``).

        ``count`` is clamped to the size of the sampled region so degenerate
        models (tiny keyspaces) still terminate.
        """
        region = self.model.hot_set_size if hot else self.model.keyspace
        count = min(count, region)
        picked: List[int] = []
        seen = set()
        while len(picked) < count:
            index = self.hot_index() if hot else self.key_index()
            if index not in seen:
                seen.add(index)
                picked.append(index)
        return picked

    # ---------------------------------------------------------- applications
    def keyspace_application(self, home: str, applications: Sequence[str]) -> str:
        """Which application's keyspace a key access targets.

        Normally the transaction's home application; with probability
        ``spill`` a uniformly-chosen *other* application, which makes the
        transaction depend on records maintained by a different agent group.
        """
        if self.model.spill <= 0.0 or len(applications) < 2:
            return home
        if self.rng.random() >= self.model.spill:
            return home
        others = [app for app in applications if app != home]
        return others[self.rng.randrange(len(others))]
