"""Contention-controlled accounting workload (Section V of the paper).

Every generated transaction transfers assets between accounts of the paper's
accounting application.  The generator controls exactly which transactions
conflict:

* A fraction ``contention`` of the transactions write a designated *hot*
  account.  All of them therefore conflict pairwise and form a dependency
  chain in every block, which is precisely the paper's notion of an
  X%-contention workload (0 % — no edges, 100 % — the block's graph is a
  chain).
* The remaining transactions draw from / deposit to accounts used by no other
  transaction, so they never conflict with anything.

``conflict_scope`` selects where the conflicting transactions live:

* ``WITHIN_APPLICATION`` — all conflicting transactions belong to one
  application and write that application's hot account (the solid OXII line
  in Figure 6), so a single agent group can resolve the whole chain locally.
* ``CROSS_APPLICATION`` — conflicting transactions are assigned round-robin
  across applications but share one global hot account (the dashed OXII* line),
  so consecutive transactions of the chain belong to different applications
  and their agents must exchange commit messages during execution.

:class:`WorkloadConfig` is shared by every registered workload generator; the
richer contention knobs (Zipfian key selection, keyspace sizes, read/write-set
sizes, cross-application spill) live in its nested
:class:`~repro.workload.conflict.ConflictModel` — see docs/workloads.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import (
    apply_overrides,
    check_fraction,
    check_positive,
    check_positive_int,
)
from repro.common.errors import ConfigurationError
from repro.common.registry import register_workload
from repro.contracts.accounting import AccountingContract, Transfer, account_key
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase
from repro.workload.conflict import ConflictModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (agents imports workload)
    from repro.agents.population import AgentPopulationConfig


class ConflictScope(str, Enum):
    """Where conflicting transactions live relative to application boundaries."""

    WITHIN_APPLICATION = "within_application"
    CROSS_APPLICATION = "cross_application"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one generated workload (shared by every generator)."""

    num_applications: int = 3
    num_clients: int = 12
    contention: float = 0.0
    conflict_scope: ConflictScope = ConflictScope.WITHIN_APPLICATION
    transfer_amount: float = 1.0
    initial_balance: float = 1.0e9
    seed: int = 7
    #: Number of hot accounts per contention domain (1 reproduces the paper's
    #: chain-shaped graphs; larger values spread the contention).
    hot_accounts: int = 1
    #: General conflict-model knobs (keyspace, Zipf skew, rw-set sizes, spill).
    conflict: ConflictModel = field(default_factory=ConflictModel)
    #: Agent-population description for the closed-loop "agents" workload
    #: (cohorts, diurnal/churn curves, flash events); ``None`` means the
    #: generator falls back to its built-in single-cohort default.
    agents: Optional["AgentPopulationConfig"] = None

    def __post_init__(self) -> None:
        check_positive_int("num_applications", self.num_applications)
        check_positive_int("num_clients", self.num_clients)
        check_fraction("contention", self.contention)
        check_positive("transfer_amount", self.transfer_amount)
        check_positive("initial_balance", self.initial_balance)
        check_positive_int("hot_accounts", self.hot_accounts)
        if isinstance(self.conflict_scope, str):
            object.__setattr__(self, "conflict_scope", _coerce_scope(self.conflict_scope))
        if isinstance(self.conflict, Mapping):
            # apply_overrides rejects unknown keys with a field-naming error.
            object.__setattr__(self, "conflict", apply_overrides(ConflictModel(), self.conflict))
        if not isinstance(self.conflict, ConflictModel):
            raise ConfigurationError(
                f"conflict must be a ConflictModel (or a mapping of its fields), "
                f"got {self.conflict!r}"
            )
        if self.agents is not None:
            from repro.agents.population import AgentPopulationConfig

            if isinstance(self.agents, Mapping):
                object.__setattr__(
                    self, "agents", apply_overrides(AgentPopulationConfig(), self.agents)
                )
            if not isinstance(self.agents, AgentPopulationConfig):
                raise ConfigurationError(
                    f"agents must be an AgentPopulationConfig (or a mapping of its "
                    f"fields), got {self.agents!r}"
                )

    def with_overrides(self, **overrides: Any) -> "WorkloadConfig":
        """Validated copy with ``overrides`` applied.

        ``conflict_scope`` may be given as the enum or its string value, and
        ``conflict`` as a (partial) dict of :class:`ConflictModel` fields —
        the forms they take in JSON/TOML experiment specs; ``__post_init__``
        coerces both on the copy.
        """
        return apply_overrides(self, overrides)

    def application_names(self) -> List[str]:
        """Canonical application ids."""
        return [f"app-{i}" for i in range(self.num_applications)]

    def client_names(self) -> List[str]:
        """Canonical client ids."""
        return [f"client-{i}" for i in range(self.num_clients)]


def _coerce_scope(value: str) -> ConflictScope:
    try:
        return ConflictScope(value)
    except ValueError:
        raise ConfigurationError(
            f"conflict_scope must be one of {[s.value for s in ConflictScope]}, got {value!r}"
        ) from None


@register_workload("accounting")
class WorkloadGenerator(WorkloadBase):
    """Generates transfer transactions plus the initial state they need."""

    contract = "accounting"
    config_hint = (
        "contention (0..1 hot-account fraction), conflict_scope "
        "(within_application|cross_application), hot_accounts, transfer_amount, "
        "initial_balance, conflict.{keyspace,selection,zipf_s,...}"
    )

    def __init__(self, config: WorkloadConfig) -> None:
        super().__init__(config)
        #: Which application hosts the within-application contention chain.
        self._hot_application = self._applications[0]
        #: application -> its hot-account pool (the pool is deterministic per
        #: application, so building the name list once per app instead of
        #: once per conflicting transaction keeps generation linear).
        self._hot_pools: Dict[str, List[str]] = {}

    # ------------------------------------------------------------- hot keys
    def hot_account_name(self, index: int, application: Optional[str] = None) -> str:
        """Name of the ``index``-th hot account for ``application`` (or global)."""
        if self.config.conflict_scope is ConflictScope.CROSS_APPLICATION or application is None:
            return f"hot-global-{index}"
        return f"hot-{application}-{index}"

    def _hot_accounts_for(self, application: str) -> List[str]:
        pool = self._hot_pools.get(application)
        if pool is None:
            pool = [
                self.hot_account_name(i, application)
                for i in range(self.config.hot_accounts)
            ]
            self._hot_pools[application] = pool
        return pool

    # --------------------------------------------------------------- workload
    def _build_transaction(self, index: int) -> Transaction:
        conflicting = self._rng.random() < self.config.contention
        client = self.client_for(index)
        application = self._pick_application(index, conflicting)
        source = f"src-{index}"
        if conflicting:
            hot_pool = self._hot_accounts_for(application)
            destination = hot_pool[index % len(hot_pool)]
        else:
            destination = f"sink-{index}"
        return AccountingContract.make_transfer_transaction(
            tx_id=f"tx-{index}",
            application=application,
            client=client,
            transfers=[
                Transfer(source=source, destination=destination, amount=self.config.transfer_amount)
            ],
        )

    def _pick_application(self, index: int, conflicting: bool) -> str:
        if conflicting and self.config.conflict_scope is ConflictScope.WITHIN_APPLICATION:
            return self._hot_application
        return self.application_for(index)

    # ------------------------------------------------------------------ state
    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, Dict[str, object]]:
        """Build the world state every account touched by ``transactions`` needs.

        Source accounts are owned by the issuing client (so ownership checks
        pass) and funded generously; destination and hot accounts start at
        zero balance with a neutral owner.
        """
        accounts: Dict[str, Tuple[float, str]] = {}
        for tx in transactions:
            for leg in tx.payload.get("transfers", ()):
                source_key = account_key(leg["source"])
                destination_key = account_key(leg["destination"])
                if source_key not in accounts:
                    accounts[source_key] = (self.config.initial_balance, tx.client)
                if destination_key not in accounts:
                    accounts[destination_key] = (0.0, "treasury")
        return {
            key: {"balance": balance, "owner": owner}
            for key, (balance, owner) in accounts.items()
        }

    # -------------------------------------------------------------- analytics
    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by the benchmark reports."""
        summary = super().describe()
        summary["hot_accounts"] = self.config.hot_accounts
        return summary
