"""Contention-controlled accounting workload (Section V of the paper).

Every generated transaction transfers assets between accounts of the paper's
accounting application.  The generator controls exactly which transactions
conflict:

* A fraction ``contention`` of the transactions write a designated *hot*
  account.  All of them therefore conflict pairwise and form a dependency
  chain in every block, which is precisely the paper's notion of an
  X%-contention workload (0 % — no edges, 100 % — the block's graph is a
  chain).
* The remaining transactions draw from / deposit to accounts used by no other
  transaction, so they never conflict with anything.

``conflict_scope`` selects where the conflicting transactions live:

* ``WITHIN_APPLICATION`` — all conflicting transactions belong to one
  application and write that application's hot account (the solid OXII line
  in Figure 6), so a single agent group can resolve the whole chain locally.
* ``CROSS_APPLICATION`` — conflicting transactions are assigned round-robin
  across applications but share one global hot account (the dashed OXII* line),
  so consecutive transactions of the chain belong to different applications
  and their agents must exchange commit messages during execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import apply_overrides
from repro.common.errors import ConfigurationError
from repro.common.registry import register_workload
from repro.contracts.accounting import AccountingContract, Transfer, account_key
from repro.core.transaction import Transaction


class ConflictScope(str, Enum):
    """Where conflicting transactions live relative to application boundaries."""

    WITHIN_APPLICATION = "within_application"
    CROSS_APPLICATION = "cross_application"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one generated workload."""

    num_applications: int = 3
    num_clients: int = 12
    contention: float = 0.0
    conflict_scope: ConflictScope = ConflictScope.WITHIN_APPLICATION
    transfer_amount: float = 1.0
    initial_balance: float = 1.0e9
    seed: int = 7
    #: Number of hot accounts per contention domain (1 reproduces the paper's
    #: chain-shaped graphs; larger values spread the contention).
    hot_accounts: int = 1

    def __post_init__(self) -> None:
        if self.num_applications <= 0:
            raise ConfigurationError("num_applications must be positive")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigurationError("contention must be in [0, 1]")
        if self.transfer_amount <= 0:
            raise ConfigurationError("transfer_amount must be positive")
        if self.hot_accounts <= 0:
            raise ConfigurationError("hot_accounts must be positive")

    def with_overrides(self, **overrides: Any) -> "WorkloadConfig":
        """Validated copy with ``overrides`` applied.

        ``conflict_scope`` may be given as the enum or its string value (as it
        appears in JSON/TOML experiment specs).
        """
        scope = overrides.get("conflict_scope")
        if isinstance(scope, str):
            try:
                overrides = {**overrides, "conflict_scope": ConflictScope(scope)}
            except ValueError:
                raise ConfigurationError(
                    f"unknown conflict_scope {scope!r}; expected one of "
                    f"{[s.value for s in ConflictScope]}"
                ) from None
        return apply_overrides(self, overrides)

    def application_names(self) -> List[str]:
        """Canonical application ids."""
        return [f"app-{i}" for i in range(self.num_applications)]

    def client_names(self) -> List[str]:
        """Canonical client ids."""
        return [f"client-{i}" for i in range(self.num_clients)]


@register_workload("accounting")
class WorkloadGenerator:
    """Generates transfer transactions plus the initial state they need."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._generated = 0
        self._applications = config.application_names()
        self._clients = config.client_names()
        #: Which application hosts the within-application contention chain.
        self._hot_application = self._applications[0]

    # ------------------------------------------------------------- hot keys
    def hot_account_name(self, index: int, application: Optional[str] = None) -> str:
        """Name of the ``index``-th hot account for ``application`` (or global)."""
        if self.config.conflict_scope is ConflictScope.CROSS_APPLICATION or application is None:
            return f"hot-global-{index}"
        return f"hot-{application}-{index}"

    def _hot_accounts_for(self, application: str) -> List[str]:
        return [self.hot_account_name(i, application) for i in range(self.config.hot_accounts)]

    # --------------------------------------------------------------- workload
    def generate(self, count: int) -> List[Transaction]:
        """Generate ``count`` transfer transactions (timestamps left to orderers).

        Transaction ids encode the generator sequence number so repeated calls
        keep producing fresh, non-overlapping identifiers and accounts.
        """
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        transactions: List[Transaction] = []
        for _ in range(count):
            index = self._generated
            self._generated += 1
            conflicting = self._rng.random() < self.config.contention
            client = self._clients[index % len(self._clients)]
            application = self._pick_application(index, conflicting)
            source = f"src-{index}"
            if conflicting:
                hot_pool = self._hot_accounts_for(application)
                destination = hot_pool[index % len(hot_pool)]
            else:
                destination = f"sink-{index}"
            tx = AccountingContract.make_transfer_transaction(
                tx_id=f"tx-{index}",
                application=application,
                client=client,
                transfers=[Transfer(source=source, destination=destination, amount=self.config.transfer_amount)],
            )
            transactions.append(tx)
        return transactions

    def _pick_application(self, index: int, conflicting: bool) -> str:
        if conflicting and self.config.conflict_scope is ConflictScope.WITHIN_APPLICATION:
            return self._hot_application
        return self._applications[index % len(self._applications)]

    # ------------------------------------------------------------------ state
    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, Dict[str, object]]:
        """Build the world state every account touched by ``transactions`` needs.

        Source accounts are owned by the issuing client (so ownership checks
        pass) and funded generously; destination and hot accounts start at
        zero balance with a neutral owner.
        """
        accounts: Dict[str, Tuple[float, str]] = {}
        for tx in transactions:
            for leg in tx.payload.get("transfers", ()):
                source_key = account_key(leg["source"])
                destination_key = account_key(leg["destination"])
                if source_key not in accounts:
                    accounts[source_key] = (self.config.initial_balance, tx.client)
                if destination_key not in accounts:
                    accounts[destination_key] = (0.0, "treasury")
        return {
            key: {"balance": balance, "owner": owner}
            for key, (balance, owner) in accounts.items()
        }

    # -------------------------------------------------------------- analytics
    def expected_conflict_fraction(self) -> float:
        """The configured degree of contention."""
        return self.config.contention

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by the benchmark reports."""
        return {
            "applications": self.config.num_applications,
            "clients": self.config.num_clients,
            "contention": self.config.contention,
            "conflict_scope": self.config.conflict_scope.value,
            "hot_accounts": self.config.hot_accounts,
            "generated": self._generated,
        }
