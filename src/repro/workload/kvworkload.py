"""A read-heavy key-value workload over the generic KV contract.

Models the cache / analytics side of a permissioned deployment: most
transactions only *read* (skewed towards a small popular set), and a small
fraction write.  Because read-only transactions never conflict — dependency
edges need a write on at least one side — the resulting blocks carry
near-conflict-free graphs no matter how skewed the reads are.  That is the
regime where OXII's graph overhead has to pay for itself, and where XOV's
optimistic validation almost never aborts: the interesting comparison is the
opposite end of Figure 6.

Knob mapping (see docs/workloads.md):

* ``contention`` — probability that a transaction also writes
  (``0.05`` ⇒ 95 % read-only transactions).
* ``conflict.read_set_size`` / ``conflict.write_set_size`` — keys read /
  written per transaction.
* ``conflict.selection`` + ``conflict.zipf_exponent`` — read skew; writes are
  drawn from the hot set so the rare writes land where the reads are, which
  is what makes XOV's occasional validation aborts possible at all.
* ``conflict.spill`` — reads that cross into another application's keyspace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.registry import register_workload
from repro.contracts.kvstore import KeyValueContract
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase


@register_workload("kvstore")
class KeyValueWorkload(WorkloadBase):
    """Skewed reads with rare hot-set writes over ``KeyValueContract``."""

    contract = "kvstore"
    config_hint = (
        "contention (hot-set write probability), "
        "conflict.{keyspace,selection,zipf_s,read_set_size,hot_fraction,spill}"
    )

    def key_name(self, application: str, index: int) -> str:
        """Canonical name of the ``index``-th record of ``application``."""
        return f"kv-{application}-{index}"

    def _read_keys(self, application: str) -> List[str]:
        keys: List[str] = []
        for index in self._chooser.distinct_indices(self.config.conflict.read_set_size):
            target_app = self._chooser.keyspace_application(application, self._applications)
            keys.append(self.key_name(target_app, index))
        return keys

    def _build_transaction(self, index: int) -> Transaction:
        application = self.application_for(index)
        reads = self._read_keys(application)
        writes: Dict[str, object] = {}
        if self._rng.random() < self.config.contention:
            hot = self._chooser.distinct_indices(self.config.conflict.write_set_size, hot=True)
            writes = {self.key_name(application, i): index for i in hot}
        return KeyValueContract.make_transaction(
            tx_id=f"kv-{index}",
            application=application,
            reads=reads,
            writes=writes,
            client=self.client_for(index),
        )

    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, object]:
        """Seed every read key with a deterministic integer value."""
        state: Dict[str, object] = {}
        for tx in transactions:
            for key in tx.rw_set.keys:
                state.setdefault(key, int(key.rsplit("-", 1)[1]))
        return state
