"""A SmallBank-style banking mix over the accounting contract.

SmallBank (the H-Store / Blockbench benchmark family) stresses OLTP systems
with short read-modify-write transactions over a fixed account population.
This workload reproduces that shape on top of
:class:`~repro.contracts.accounting.AccountingContract`:

* Each application owns ``conflict.keyspace`` accounts, ``sb-<app>-<i>``.
* Every transaction is a multi-leg transfer (``conflict.write_set_size``
  legs).  Source accounts are always owned by the issuing client, so the
  contract's ownership checks pass; *destination* accounts are where the
  contention lives.
* With probability ``contention`` a leg deposits into the application's hot
  set (the leading ``conflict.hot_fraction`` of the keyspace); otherwise the
  destination is drawn by ``conflict.selection`` over the whole keyspace, so
  a Zipfian model produces smooth skew on top of the hot set.
* ``conflict.spill`` sends a leg's destination into another application's
  keyspace, creating cross-application dependencies that OXII resolves with
  agent-to-agent commit messages.

Unlike the paper's hot-account workload (conflict-free except for one
designated chain), SmallBank transactions *reuse* a finite account
population, so read-modify-write conflicts arise organically and grow with
skew — the regime where OXII's dependency graphs earn their keep.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.registry import register_workload
from repro.contracts.accounting import AccountingContract, Transfer, account_key
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase


@register_workload("smallbank")
class SmallBankWorkload(WorkloadBase):
    """Multi-op transfers over a shared, skew-accessed account population."""

    contract = "accounting"
    config_hint = (
        "contention (multi-leg hot-transfer fraction), transfer_amount, "
        "initial_balance, conflict.{keyspace,selection,zipf_s,write_set_size}"
    )

    def account_name(self, application: str, index: int) -> str:
        """Canonical name of the ``index``-th account of ``application``."""
        return f"sb-{application}-{index}"

    def _client_account(self, application: str, client_index: int) -> str:
        """A source account deterministically owned by the issuing client.

        Each client owns the stride ``client_index mod num_clients`` of every
        keyspace; drawing the source there keeps the contract's ownership
        check satisfied without coordinating owners across transactions.
        """
        stride = len(self._clients)
        slots = self.config.conflict.keyspace // stride
        if slots == 0:
            # Degenerate keyspace (< num_clients): give each client one
            # private source slot just past the shared population.
            return self.account_name(application, client_index)
        index = self._rng.randrange(slots) * stride + client_index
        return self.account_name(application, index)

    def _destination_account(self, application: str) -> str:
        """A destination account: hot with probability ``contention``."""
        target_app = self._chooser.keyspace_application(application, self._applications)
        if self._rng.random() < self.config.contention:
            return self.account_name(target_app, self._chooser.hot_index())
        return self.account_name(target_app, self._chooser.key_index())

    def _build_transaction(self, index: int) -> Transaction:
        client_index = index % len(self._clients)
        client = self._clients[client_index]
        application = self.application_for(index)
        legs: List[Transfer] = []
        for _ in range(self.config.conflict.write_set_size):
            legs.append(
                Transfer(
                    source=self._client_account(application, client_index),
                    destination=self._destination_account(application),
                    amount=self.config.transfer_amount,
                )
            )
        return AccountingContract.make_transfer_transaction(
            tx_id=f"sb-{index}",
            application=application,
            client=client,
            transfers=legs,
        )

    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, Dict[str, object]]:
        """Fund every touched account; owners follow the client-stride rule."""
        stride = len(self._clients)
        state: Dict[str, Dict[str, object]] = {}
        for tx in transactions:
            for leg in tx.payload.get("transfers", ()):
                for name in (leg["source"], leg["destination"]):
                    key = account_key(name)
                    if key in state:
                        continue
                    index = int(name.rsplit("-", 1)[1])
                    state[key] = {
                        "balance": self.config.initial_balance,
                        "owner": self._clients[index % stride],
                    }
        return state
