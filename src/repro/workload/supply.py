"""A multi-step supply-chain workload with cross-application dependency chains.

The paper motivates permissioned blockchains with supply-chain management:
organisations record custody transfers of assets on a shared ledger.  This
workload drives :class:`~repro.contracts.supply_chain.SupplyChainContract`
with asset *lifecycles*:

* With probability ``contention`` a transaction advances the lifecycle of a
  **tracked asset** (drawn from the hot set of ``conflict.keyspace``
  pre-registered assets): custody ships alternate with inspections, and each
  step both reads and writes the asset record, so the k-th step depends on
  the (k-1)-th — consecutive steps form a *multi-hop dependency chain*.
* Each step of a chain is assigned to the **next application round-robin**,
  so the chain hops across agent groups: under OXII the agents must exchange
  commit messages along the chain (the generalisation of the paper's OXII*
  cross-application scenario from one hot account to many multi-hop chains).
* The remaining transactions register brand-new assets — conflict-free by
  construction, like the paper's non-conflicting transfers.

Ship steps are issued by the asset's current custodian (the generator tracks
custody as it emits steps), so ownership checks pass when steps execute in
dependency order — and genuinely abort when an optimistic paradigm executes
them against stale state, which is exactly how XOV degrades on dependent
workloads.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.common.registry import register_workload
from repro.contracts.supply_chain import SupplyChainContract, asset_key
from repro.core.transaction import Transaction
from repro.workload.base import WorkloadBase


@register_workload("supply_chain")
class SupplyChainWorkload(WorkloadBase):
    """Register / ship / inspect lifecycles over a shared asset population."""

    contract = "supply_chain"
    config_hint = (
        "contention (tracked-asset lifecycle fraction), "
        "conflict.{keyspace,selection,zipf_s,spill} (asset population + skew)"
    )

    def __init__(self, config) -> None:
        super().__init__(config)
        #: Lifecycle step counter per tracked asset index.
        self._steps: Dict[int, int] = {}
        #: Current custodian per tracked asset index (orgs are client names).
        self._custodian: Dict[int, str] = {}
        #: Tracked assets whose records must be pre-seeded in initial_state.
        self._preseeded: Dict[int, str] = {}

    # ------------------------------------------------------------------ names
    def asset_name(self, index: int) -> str:
        """Name of the ``index``-th tracked asset (shared by all applications)."""
        return f"asset-{index}"

    def _initial_org(self, index: int) -> str:
        return self._clients[index % len(self._clients)]

    # --------------------------------------------------------------- workload
    def _build_transaction(self, index: int) -> Transaction:
        if self._rng.random() < self.config.contention:
            return self._chain_step(index)
        return self._register_fresh(index)

    def _register_fresh(self, index: int) -> Transaction:
        """A conflict-free registration of a brand-new asset."""
        org = self.client_for(index)
        return SupplyChainContract.make_register(
            tx_id=f"sc-{index}",
            application=self.application_for(index),
            asset_id=f"fresh-{index}",
            owner=org,
        )

    def _chain_step(self, index: int) -> Transaction:
        """Advance the lifecycle of a hot asset by one ship/inspect step."""
        asset_index = self._chooser.hot_index()
        step = self._steps.get(asset_index, 0)
        self._steps[asset_index] = step + 1
        if asset_index not in self._custodian:
            owner = self._initial_org(asset_index)
            self._custodian[asset_index] = owner
            self._preseeded[asset_index] = owner
        # Consecutive steps of one asset's chain hop across applications.
        application = self._applications[(asset_index + step) % len(self._applications)]
        asset_id = self.asset_name(asset_index)
        if step % 2 == 0:
            sender = self._custodian[asset_index]
            recipient = self._clients[(self._clients.index(sender) + 1) % len(self._clients)]
            self._custodian[asset_index] = recipient
            return SupplyChainContract.make_ship(
                tx_id=f"sc-{index}",
                application=application,
                asset_id=asset_id,
                sender=sender,
                recipient=recipient,
            )
        verdict = "passed" if self._rng.random() < 0.9 else "flagged"
        return SupplyChainContract.make_inspect(
            tx_id=f"sc-{index}",
            application=application,
            asset_id=asset_id,
            inspector=self.client_for(index),
            verdict=verdict,
        )

    # ------------------------------------------------------------------ state
    def initial_state(self, transactions: Sequence[Transaction]) -> Dict[str, object]:
        """Pre-register every tracked asset a chain step touches.

        Freshly registered assets must *not* exist beforehand (the contract
        aborts duplicate registrations), so only chain assets are seeded.
        """
        state: Dict[str, object] = {}
        for asset_index, owner in self._preseeded.items():
            state[asset_key(self.asset_name(asset_index))] = {
                "owner": owner,
                "history": ("registered",),
                "status": "in_stock",
            }
        return state

    # -------------------------------------------------------------- analytics
    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["tracked_assets"] = len(self._steps)
        summary["chain_steps"] = sum(self._steps.values())
        return summary
