"""Zipfian key sampling.

Hot-spot access patterns in transactional workloads are commonly modelled with
a Zipf distribution; the workload generator can use this sampler instead of a
single hot key when a smoother contention profile is wanted (e.g. for the
ablation benchmarks).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfianSampler:
    """Samples indices ``0 .. n-1`` with probability proportional to ``1/(i+1)^s``."""

    def __init__(self, population: int, exponent: float = 1.0, seed: int = 7) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        self.population = population
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / ((i + 1) ** exponent) for i in range(population)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one index."""
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def sample_from(self, rng: random.Random) -> int:
        """Draw one index using an external RNG (ignores the sampler's own seed).

        Workload generators use this so every draw comes from one shared,
        seeded ``random.Random`` and the whole workload stays a pure function
        of its configured seed.
        """
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` indices."""
        return [self.sample() for _ in range(count)]

    def probability(self, index: int) -> float:
        """Probability mass of ``index``."""
        if not 0 <= index < self.population:
            raise IndexError(f"index {index} out of range")
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - previous

    def pick(self, items: Sequence[str]) -> str:
        """Pick an item from ``items`` (must have length ``population``)."""
        if len(items) != self.population:
            raise ValueError("items length must equal the sampler population")
        return items[self.sample()]
