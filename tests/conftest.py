"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import BlockCutPolicy, CostModel, LatencyConfig, SystemConfig
from repro.contracts.accounting import AccountingContract, Transfer
from repro.core.transaction import ReadWriteSet, Transaction
from repro.crypto.signatures import KeyRegistry
from repro.network.transport import Network
from repro.simulation import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def registry() -> KeyRegistry:
    """A key registry seeded for reproducibility."""
    return KeyRegistry(seed="tests")


@pytest.fixture
def network(env: Environment) -> Network:
    """A single-datacenter network on the fresh environment."""
    return Network(env)


@pytest.fixture
def small_config() -> SystemConfig:
    """A small, fast deployment configuration used by integration tests."""
    return SystemConfig(
        num_orderers=3,
        num_applications=3,
        executors_per_application=1,
        cores_per_node=4,
        block_cut=BlockCutPolicy(max_transactions=20, max_bytes=1_000_000, max_delay=0.2),
        cost_model=CostModel(),
        latency=LatencyConfig(),
    )


def make_tx(
    tx_id: str,
    reads=(),
    writes=(),
    application: str = "app-0",
    timestamp: int = 0,
    client: str = "client-0",
    payload=None,
) -> Transaction:
    """Convenience transaction constructor used across the unit tests."""
    return Transaction(
        tx_id=tx_id,
        application=application,
        rw_set=ReadWriteSet.build(reads=reads, writes=writes),
        timestamp=timestamp,
        payload=payload or {},
        client=client,
    )


def make_transfer(tx_id: str, source: str, destination: str, amount: float = 1.0,
                  application: str = "app-0", client: str = "client-0") -> Transaction:
    """Convenience transfer-transaction constructor."""
    return AccountingContract.make_transfer_transaction(
        tx_id=tx_id,
        application=application,
        client=client,
        transfers=[Transfer(source=source, destination=destination, amount=amount)],
    )
