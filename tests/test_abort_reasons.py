"""End-to-end abort-reason plumbing: contracts → peers → collector → metrics."""

from __future__ import annotations

import pytest

from repro.contracts.accounting import AccountingContract, Transfer
from repro.contracts.base import ContractRegistry
from repro.ledger.state import WorldState
from repro.metrics.collector import CompletionEvent, MetricsCollector
from repro.paradigms.run import execute_run
from repro.workload.generator import WorkloadConfig


def make_state(**accounts):
    from repro.contracts.accounting import account_key

    return WorldState({account_key(k): v for k, v in accounts.items()})


def transfer_tx(tx_id, source, destination, amount=1.0, client="client-0"):
    return AccountingContract.make_transfer_transaction(
        tx_id=tx_id,
        application="app-0",
        client=client,
        transfers=[Transfer(source=source, destination=destination, amount=amount)],
    )


# ------------------------------------------------------------ contract layer
class TestContractReasons:
    def setup_method(self):
        self.contract = AccountingContract("app-0")

    def test_missing_account(self):
        result = self.contract.execute(transfer_tx("t", "ghost", "b"), make_state())
        assert result.is_abort and result.abort_reason == "missing_account"

    def test_not_owner(self):
        state = make_state(
            a={"balance": 10.0, "owner": "someone-else"}, b={"balance": 0.0, "owner": "x"}
        )
        result = self.contract.execute(transfer_tx("t", "a", "b"), state)
        assert result.abort_reason == "not_owner"

    def test_insufficient_funds(self):
        state = make_state(
            a={"balance": 0.5, "owner": "client-0"}, b={"balance": 0.0, "owner": "x"}
        )
        result = self.contract.execute(transfer_tx("t", "a", "b", amount=2.0), state)
        assert result.abort_reason == "insufficient_funds"

    def test_registry_execute_preserves_abort_reason(self):
        """The executed_by re-stamp must not drop the reason (regression)."""
        registry = ContractRegistry()
        registry.install(self.contract, agents=["exec-0"])
        result = registry.execute(transfer_tx("t", "ghost", "b"), make_state(), executed_by="exec-0")
        assert result.executed_by == "exec-0"
        assert result.abort_reason == "missing_account"

    def test_supply_chain_reasons(self):
        from repro.contracts.supply_chain import SupplyChainContract

        contract = SupplyChainContract("app-0")
        tx = SupplyChainContract.make_ship(
            tx_id="t", application="app-0", asset_id="missing", sender="a", recipient="b"
        )
        result = contract.execute(tx, WorldState({}))
        assert result.abort_reason == "missing_asset"


# ------------------------------------------------------------ collector layer
class TestCollectorReasons:
    def test_stable_reason_majority_vote(self):
        collector = MetricsCollector(measurement_peers=["p0", "p1", "p2"])
        collector.record_commit("p0", "t", 1.0, aborted=True, reason="mvcc_conflict")
        collector.record_commit("p1", "t", 1.1, aborted=True, reason="mvcc_conflict")
        collector.record_commit("p2", "t", 1.2, aborted=True, reason="contract_abort")
        assert collector.abort_reason_of("t") == "mvcc_conflict"

    def test_stable_reason_tie_breaks_lexicographically(self):
        collector = MetricsCollector(measurement_peers=["p0", "p1"])
        collector.record_commit("p0", "t", 1.0, aborted=True, reason="zeta")
        collector.record_commit("p1", "t", 1.1, aborted=True, reason="alpha")
        assert collector.abort_reason_of("t") == "alpha"

    def test_empty_reason_defaults_to_abort(self):
        collector = MetricsCollector(measurement_peers=["p0"])
        collector.record_commit("p0", "t", 1.0, aborted=True)
        assert collector.abort_reason_of("t") == "abort"

    def test_committed_tx_has_no_reason(self):
        collector = MetricsCollector(measurement_peers=["p0"])
        collector.record_commit("p0", "t", 1.0)
        assert collector.abort_reason_of("t") == ""

    def test_subscribers_get_completion_events(self):
        collector = MetricsCollector(measurement_peers=["p0", "p1"])
        events = []
        collector.subscribe(events.append)
        collector.record_submission("t", 0.5)
        collector.record_commit("p0", "t", 1.0, aborted=True, reason="mvcc_conflict")
        assert events == []  # not complete yet: one peer missing
        collector.record_commit("p1", "t", 1.5, aborted=True, reason="mvcc_conflict")
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, CompletionEvent)
        assert event.tx_id == "t"
        assert event.completed_at == 1.5
        assert event.aborted and event.reason == "mvcc_conflict"
        assert event.submitted_at == 0.5

    def test_partial_abort_is_not_a_completion_abort(self):
        """A tx aborted on one peer but committed on another is not 'aborted'."""
        collector = MetricsCollector(measurement_peers=["p0", "p1"])
        events = []
        collector.subscribe(events.append)
        collector.record_commit("p0", "t", 1.0, aborted=True, reason="mvcc_conflict")
        collector.record_commit("p1", "t", 1.1)
        assert events[0].aborted is False
        assert collector.abort_reason_of("t") == ""

    def test_summarise_counts_reasons_and_merges_extras(self):
        collector = MetricsCollector(measurement_peers=["p0"])
        for i, reason in enumerate(["mvcc_conflict", "mvcc_conflict", "contract_abort"]):
            collector.record_submission(f"t{i}", 0.1)
            collector.record_commit("p0", f"t{i}", 0.5, aborted=True, reason=reason)
        metrics = collector.summarise(
            paradigm="X",
            offered_load=10.0,
            warmup=0.0,
            horizon=1.0,
            extra_abort_reasons={"dedup_drop": 4},
        )
        assert metrics.abort_reasons == {
            "contract_abort": 1,
            "dedup_drop": 4,
            "mvcc_conflict": 2,
        }
        assert metrics.as_dict()["abort_reasons"] == metrics.abort_reasons


# ------------------------------------------------------------------ run layer
class TestRunLayerReasons:
    def test_xov_contention_reports_mvcc_conflict(self):
        row = execute_run(
            "XOV",
            generator="accounting",
            workload_config=WorkloadConfig(contention=0.8),
            offered_load=400.0,
            duration=1.0,
            drain=6.0,
            seed=7,
        ).as_dict()
        assert row["aborted"] > 0
        assert row["abort_reasons"].get("mvcc_conflict", 0) > 0
        # Every windowed abort carries a stable reason string.
        assert sum(row["abort_reasons"].values()) >= row["aborted"]

    @pytest.mark.parametrize("paradigm", ["OX", "OXII"])
    def test_order_execute_paradigms_report_contract_reasons(self, paradigm):
        """Agents overdrawing tiny balances abort with insufficient_funds."""
        row = execute_run(
            paradigm,
            generator="agents",
            workload_config=WorkloadConfig(
                initial_balance=2.0,
                agents={"cohorts": [{"name": "poor", "sessions": 4}]},
            ),
            offered_load=300.0,
            duration=1.0,
            drain=6.0,
            seed=7,
        ).as_dict()
        assert row["abort_reasons"].get("insufficient_funds", 0) > 0

    def test_xov_endorsed_abort_carries_contract_reason(self):
        """Under XOV a contract abort at endorsement time keeps its reason.

        Endorsers simulate against committed state, so exhausting a balance
        only surfaces as mvcc_conflict; a balance that can never cover one
        transfer aborts at endorsement itself with the contract's reason.
        """
        row = execute_run(
            "XOV",
            generator="agents",
            workload_config=WorkloadConfig(
                initial_balance=0.5,
                agents={"cohorts": [{"name": "poor", "sessions": 4}]},
            ),
            offered_load=300.0,
            duration=1.0,
            drain=6.0,
            seed=7,
        ).as_dict()
        reasons = row["abort_reasons"]
        assert reasons.get("insufficient_funds", 0) > 0, reasons
