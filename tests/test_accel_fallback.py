"""The numpy acceleration layer must be optional and behaviour-preserving.

``repro.core._accel`` resolves numpy once at import (honouring
``REPRO_NO_NUMPY``), so the fallback paths are exercised in a subprocess with
the flag set and their outputs compared bit-for-bit against the default
import.  On an interpreter without numpy both runs take the pure-python path
and the comparison is trivially true — which is exactly the claim: results
never depend on whether numpy is installed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# Computes every numpy-accelerated quantity for a fixed contended block and
# prints them as JSON: wave partition, depth histogram, edge arrays and the
# cross-application successor flags.
_PROBE = """
import json
from repro.core._accel import HAVE_NUMPY
from repro.core.dependency_graph import GraphConstruction, build_dependency_graph
from repro.core.transaction import ReadWriteSet, Transaction
import random

rng = random.Random(11)
txs = [
    Transaction(
        tx_id=f"t{i}",
        application=f"app-{i % 3}",
        rw_set=ReadWriteSet.build(
            reads={f"k{rng.randrange(8)}"}, writes={f"k{rng.randrange(8)}"}
        ),
        timestamp=i + 1,
    )
    for i in range(64)
]
out = {"have_numpy": HAVE_NUMPY}
for construction in (GraphConstruction.ALL_PAIRS, GraphConstruction.SPARSE):
    graph = build_dependency_graph(txs, construction=construction)
    arrays = graph.dag.edge_index_arrays()
    out[construction.value] = {
        "waves": graph.dag.wave_partition(),
        "histogram": graph.parallelism_profile(),
        "flags": list(graph.cross_application_successor_flags()),
        "edges": sorted([u, v] for u, v in graph.dag.edges()),
        "edge_arrays": None
        if arrays is None
        else [arrays[0].tolist(), arrays[1].tolist()],
    }
print(json.dumps(out))
"""


def _run_probe(no_numpy: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_NO_NUMPY", None)
    if no_numpy:
        env["REPRO_NO_NUMPY"] = "1"
    result = subprocess.run(
        [sys.executable, "-c", _PROBE], capture_output=True, text=True, env=env, check=True
    )
    return json.loads(result.stdout)


def test_fallback_paths_match_accelerated_paths():
    default = _run_probe(no_numpy=False)
    fallback = _run_probe(no_numpy=True)
    assert fallback["have_numpy"] is False
    for construction in ("all_pairs", "sparse"):
        got, want = fallback[construction], default[construction]
        assert got["waves"] == want["waves"]
        assert got["histogram"] == want["histogram"]
        assert got["flags"] == want["flags"]
        assert got["edges"] == want["edges"]
        # edge_index_arrays is a numpy-only accessor: None without numpy, and
        # when numpy is present its arrays must list the same edges the
        # adjacency lists hold.
        assert got["edge_arrays"] is None
        if default["have_numpy"]:
            sources, targets = want["edge_arrays"]
            assert sorted([u, v] for u, v in zip(sources, targets)) == want["edges"]


def test_sparse_and_dense_agree_without_numpy():
    fallback = _run_probe(no_numpy=True)
    assert fallback["all_pairs"]["waves"] == fallback["sparse"]["waves"]
    assert fallback["all_pairs"]["histogram"] == fallback["sparse"]["histogram"]
