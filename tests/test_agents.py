"""Unit tests for the agent-population subsystem (repro.agents)."""

from __future__ import annotations

import math
import tracemalloc

import pytest

from repro.agents import (
    AgentPopulationConfig,
    ChurnConfig,
    CohortSpec,
    DiurnalConfig,
    FlashEvent,
    Population,
    PopulationEngine,
    agent_policy_registry,
    build_population_engine,
)
from repro.common.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig

APPS = ["app-0", "app-1", "app-2"]


# ---------------------------------------------------------------- config layer
class TestConfig:
    def test_defaults_round_trip(self):
        config = AgentPopulationConfig()
        assert config.total_users == 1000
        assert config.total_sessions == 8
        assert config.cohorts[0].policy == "steady"

    def test_cohorts_coerced_from_mappings(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "a", "users": 10}, {"name": "b", "tx_rate": 2.0}]
        )
        assert [c.name for c in config.cohorts] == ["a", "b"]
        assert config.cohorts[0].users == 10
        assert config.cohorts[1].tx_rate == 2.0

    def test_duplicate_cohort_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            AgentPopulationConfig(cohorts=[{"name": "x"}, {"name": "x"}])

    def test_unknown_cohort_field_rejected(self):
        with pytest.raises(ConfigurationError, match="tx_rte"):
            AgentPopulationConfig(cohorts=[{"name": "a", "tx_rte": 1.0}])

    def test_empirical_rate_model_needs_weights(self):
        with pytest.raises(ConfigurationError, match="rate_weights"):
            CohortSpec(rate_model="empirical")

    def test_unknown_rate_model_rejected(self):
        with pytest.raises(ConfigurationError, match="rate_model"):
            CohortSpec(rate_model="gamma")

    def test_churn_clamp_must_bracket_one(self):
        with pytest.raises(ConfigurationError, match="bracket"):
            ChurnConfig(sigma=0.1, min_factor=1.2)

    def test_workload_config_coerces_agents_mapping(self):
        config = WorkloadConfig(agents={"cohorts": [{"name": "only", "users": 5}]})
        assert isinstance(config.agents, AgentPopulationConfig)
        assert config.agents.cohorts[0].users == 5

    def test_workload_config_rejects_non_mapping_agents(self):
        with pytest.raises(ConfigurationError, match="agents"):
            WorkloadConfig(agents=42)

    def test_unknown_policy_name_fails_fast_with_registry_error(self):
        from repro.agents.workload import AgentWorkload

        config = WorkloadConfig(agents={"cohorts": [{"name": "a", "policy": "yolo-retry"}]})
        with pytest.raises(ConfigurationError, match=r"unknown agent policy 'yolo-retry'"):
            AgentWorkload(config)

    def test_unknown_policy_error_lists_known_policies(self):
        with pytest.raises(ConfigurationError, match="backoff-retry"):
            agent_policy_registry.get("nope")

    def test_unknown_policy_param_rejected(self):
        policy_cls = agent_policy_registry.get("backoff-retry")
        import random

        with pytest.raises(ConfigurationError, match="base_dely"):
            policy_cls({"base_dely": 0.2}, random.Random(1))


# ------------------------------------------------------------- rate modifiers
class TestRateShaping:
    def test_diurnal_factor_sinusoid(self):
        diurnal = DiurnalConfig(amplitude=0.5, period=2.0)
        assert diurnal.factor(0.0) == pytest.approx(1.0)
        assert diurnal.factor(0.5) == pytest.approx(1.5)
        assert diurnal.factor(1.5) == pytest.approx(0.5)
        assert diurnal.max_factor == pytest.approx(1.5)

    def test_flash_event_window_and_cohort_filter(self):
        event = FlashEvent(at=1.0, duration=0.5, multiplier=3.0, cohort="grinders")
        assert event.applies("grinders", 1.2)
        assert not event.applies("grinders", 1.6)
        assert not event.applies("crowd", 1.2)

    def test_rate_at_composes_all_modifiers(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "c", "users": 100, "tx_rate": 1.0}],
            diurnal={"amplitude": 0.5, "period": 2.0},
            events=[{"at": 0.0, "duration": 10.0, "multiplier": 2.0}],
            scale_to_offered=False,
        )
        cohort = Population(config, APPS, seed=3).cohorts[0]
        cohort.throttle = 0.5
        # base 100 * diurnal(0.5)=1.5 * flash 2.0 * throttle 0.5
        assert cohort.rate_at(0.5) == pytest.approx(150.0)
        assert cohort.max_rate() >= cohort.rate_at(0.5)

    def test_max_rate_envelopes_churn_only_when_enabled(self):
        quiet = AgentPopulationConfig(cohorts=[{"name": "c"}], scale_to_offered=False)
        churny = AgentPopulationConfig(
            cohorts=[{"name": "c"}], churn={"sigma": 0.2}, scale_to_offered=False
        )
        base = Population(quiet, APPS, seed=3).cohorts[0].max_rate()
        enveloped = Population(churny, APPS, seed=3).cohorts[0].max_rate()
        assert enveloped == pytest.approx(base * ChurnConfig(sigma=0.2).max_factor)

    def test_churn_step_is_clamped_and_seeded(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "c"}], churn={"sigma": 5.0}, scale_to_offered=False
        )
        cohort = Population(config, APPS, seed=3).cohorts[0]
        factors = [cohort.churn_step() for _ in range(50)]
        assert all(0.5 <= f <= 1.5 for f in factors)
        cohort2 = Population(config, APPS, seed=3).cohorts[0]
        assert factors == [cohort2.churn_step() for _ in range(50)]


# ------------------------------------------------------------------ population
class TestPopulation:
    def test_scale_to_offered_preserves_cohort_shares(self):
        config = AgentPopulationConfig(
            cohorts=[
                {"name": "a", "users": 100, "tx_rate": 1.0},
                {"name": "b", "users": 300, "tx_rate": 1.0},
            ]
        )
        population = Population(config, APPS, seed=3, offered_load=800.0)
        assert population.total_rate == pytest.approx(800.0)
        assert population.cohort("a").base_rate == pytest.approx(200.0)
        assert population.cohort("b").base_rate == pytest.approx(600.0)

    def test_agent_count_is_sessions_not_users(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "big", "users": 1_000_000, "sessions": 16}]
        )
        population = Population(config, APPS, seed=3)
        assert population.total_users == 1_000_000
        assert population.agent_count() == 16

    def test_session_weights_sum_to_one_for_each_model(self):
        for extra in (
            {"rate_model": "constant"},
            {"rate_model": "lognormal", "rate_sigma": 1.0},
            {"rate_model": "empirical", "rate_weights": [1.0, 2.0, 4.0]},
        ):
            config = AgentPopulationConfig(cohorts=[dict({"name": "c", "sessions": 12}, **extra)])
            cohort = Population(config, APPS, seed=3).cohorts[0]
            assert sum(a.weight for a in cohort.agents) == pytest.approx(1.0)

    def test_lognormal_weights_are_heterogeneous_and_seeded(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "c", "sessions": 12, "rate_model": "lognormal", "rate_sigma": 1.0}]
        )
        first = [a.weight for a in Population(config, APPS, seed=3).cohorts[0].agents]
        again = [a.weight for a in Population(config, APPS, seed=3).cohorts[0].agents]
        other = [a.weight for a in Population(config, APPS, seed=4).cohorts[0].agents]
        assert first == again
        assert first != other
        assert len(set(first)) > 1

    def test_pick_agent_follows_weights(self):
        config = AgentPopulationConfig(
            cohorts=[
                {"name": "c", "sessions": 2, "rate_model": "empirical", "rate_weights": [9.0, 1.0]}
            ]
        )
        cohort = Population(config, APPS, seed=3).cohorts[0]
        picks = [cohort.pick_agent().slot for _ in range(2000)]
        share = picks.count(0) / len(picks)
        assert 0.85 < share < 0.95

    def test_application_assignment_round_robin_and_pinned(self):
        config = AgentPopulationConfig(
            cohorts=[{"name": "a"}, {"name": "b"}, {"name": "pinned", "application": "app-2"}]
        )
        population = Population(config, APPS, seed=3)
        assert population.cohort("a").application == "app-0"
        assert population.cohort("b").application == "app-1"
        assert population.cohort("pinned").application == "app-2"

    def test_initial_state_funds_agents_and_seeds_shared_accounts(self):
        from repro.contracts.accounting import account_key

        config = AgentPopulationConfig(cohorts=[{"name": "c", "sessions": 2}], hot_keys=2, sinks=3)
        population = Population(config, APPS, seed=3, initial_balance=500.0)
        state = population.initial_state()
        agent = population.cohorts[0].agents[0]
        assert state[account_key(agent.account)] == {"balance": 500.0, "owner": agent.client}
        assert state[account_key("hot-agent-1")]["owner"] == "treasury"
        assert len(state) == 2 + 2 + 3

    def test_cohort_memory_is_o_sessions_not_o_users(self):
        """1M modeled users must not cost meaningfully more than 10k users."""

        def peak(users: int) -> int:
            config = AgentPopulationConfig(
                cohorts=[
                    {"name": f"c{i}", "users": users // 10, "sessions": 8} for i in range(10)
                ]
            )
            tracemalloc.start()
            population = Population(config, APPS, seed=3)
            state = population.initial_state()
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert population.total_users == users
            assert len(state) == population.agent_count() + 1 + 32
            return peak_bytes

        small, large = peak(10_000), peak(1_000_000)
        assert large < small * 2 + 64_000, (small, large)


# ---------------------------------------------------------------- engine layer
class TestEngine:
    def make_engine(self, duration=1.0, **config_kwargs) -> PopulationEngine:
        config = AgentPopulationConfig(**config_kwargs) if config_kwargs else AgentPopulationConfig()
        return build_population_engine(
            config, APPS, seed=3, offered_load=100.0, duration=duration
        )

    def test_driver_protocol_surface(self):
        engine = self.make_engine()
        assert engine.duration == 1.0
        assert engine.offered_rate == pytest.approx(100.0)
        assert engine.submitted_transactions() == ()

    def test_unknown_policy_rejected_at_engine_build(self):
        with pytest.raises(ConfigurationError, match="unknown agent policy"):
            self.make_engine(cohorts=[{"name": "c", "policy": "wat"}])

    def test_events_digest_stable_and_seed_sensitive(self):
        from repro.paradigms.run import execute_run

        kwargs = dict(generator="agents", offered_load=150.0, duration=0.6, drain=4.0)
        one = execute_run("OXII", seed=5, **kwargs).as_dict()
        two = execute_run("OXII", seed=5, **kwargs).as_dict()
        other = execute_run("OXII", seed=6, **kwargs).as_dict()
        assert one == two
        assert one["population_events_digest"] != other["population_events_digest"]

    def test_extra_metrics_shape(self):
        from repro.paradigms.run import execute_run

        row = execute_run(
            "OXII", generator="agents", offered_load=150.0, duration=0.6, drain=4.0, seed=5
        ).as_dict()
        assert row["population_users"] == 1000.0
        assert row["population_agents"] == 8.0
        assert row["population_submitted"] > 0
        assert row["ledger_tip"]
        rollup = row["population"]["cohort"]
        assert rollup["submitted"] == row["population_submitted"]
        assert rollup["policy"] == "steady"
        assert math.isclose(rollup["base_rate"], 150.0)
