"""Integration tests: the agent engine through the run layer, sweeps and faults."""

from __future__ import annotations

import pytest

from repro.experiments import SweepEngine
from repro.experiments.spec import ExperimentSpec
from repro.paradigms.run import execute_run
from repro.testing import FaultEvent, FaultSchedule, ScenarioConfig, run_all_oracles, run_scenario

STORM_COHORTS = [
    {
        "name": "grinders",
        "users": 4000,
        "tx_rate": 0.05,
        "sessions": 10,
        "policy": "naive-retry",
        "application": "app-0",
        "policy_params": {"hot_probability": 1.0, "retry_limit": 4},
    },
    {"name": "crowd", "users": 6000, "tx_rate": 0.04, "sessions": 24, "policy": "steady"},
]


def agents_spec(**overrides) -> ExperimentSpec:
    base = {
        "schema_version": 1,
        "name": "agents-it",
        "loads": [250.0],
        "duration": 1.0,
        "drain": 6.0,
        "seeds": [7],
        "scenarios": [
            {
                "name": "oxii",
                "paradigm": "OXII",
                "generator": "agents",
                "workload": {"agents": {"cohorts": STORM_COHORTS}},
            },
            {
                "name": "xov",
                "paradigm": "XOV",
                "generator": "agents",
                "workload": {"agents": {"cohorts": STORM_COHORTS}},
            },
        ],
    }
    base.update(overrides)
    return ExperimentSpec.from_dict(base)


# ----------------------------------------------------------------- run layer
class TestExecuteRun:
    @pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
    def test_agents_workload_commits_on_every_paradigm(self, paradigm):
        row = execute_run(
            paradigm, generator="agents", offered_load=200.0, duration=1.0, drain=6.0, seed=7
        ).as_dict()
        assert row["committed"] > 0
        assert row["population_submitted"] == row["submitted"]

    def test_closed_loop_feedback_differs_between_paradigms(self):
        """The feedback channel makes the event stream paradigm-dependent."""
        kwargs = dict(generator="agents", offered_load=200.0, duration=1.0, drain=6.0, seed=7)
        ox = execute_run("OX", **kwargs).as_dict()
        xov = execute_run("XOV", **kwargs).as_dict()
        assert ox["population_events_digest"] != xov["population_events_digest"]

    def test_diurnal_curve_shifts_submission_volume(self):
        from repro.workload.generator import WorkloadConfig

        def run_with(agents):
            return execute_run(
                "OXII",
                generator="agents",
                offered_load=300.0,
                duration=1.0,
                drain=5.0,
                seed=7,
                workload_config=WorkloadConfig(agents=agents),
            ).as_dict()["population_submitted"]

        # Peak phase (sin>0 over most of [0,1]) vs trough phase.
        peak = run_with({"diurnal": {"amplitude": 0.9, "period": 2.0, "phase": 0.0}})
        trough = run_with({"diurnal": {"amplitude": 0.9, "period": 2.0, "phase": 1.0}})
        assert peak > trough * 1.3, (peak, trough)

    def test_flash_crowd_adds_volume(self):
        from repro.workload.generator import WorkloadConfig

        def run_with(agents):
            return execute_run(
                "OXII",
                generator="agents",
                offered_load=250.0,
                duration=1.0,
                drain=5.0,
                seed=7,
                workload_config=WorkloadConfig(agents=agents),
            ).as_dict()["population_submitted"]

        calm = run_with({"scale_to_offered": True})
        flash = run_with(
            {
                "scale_to_offered": True,
                "events": [{"at": 0.2, "duration": 0.5, "multiplier": 3.0}],
            }
        )
        assert flash > calm * 1.5, (calm, flash)

    def test_churn_perturbs_the_event_stream_deterministically(self):
        from repro.workload.generator import WorkloadConfig

        def run_with(sigma):
            return execute_run(
                "OXII",
                generator="agents",
                offered_load=250.0,
                duration=1.0,
                drain=5.0,
                seed=7,
                workload_config=WorkloadConfig(agents={"churn": {"sigma": sigma, "interval": 0.1}}),
            ).as_dict()

        churned, again, quiet = run_with(0.8), run_with(0.8), run_with(0.0)
        assert churned == again
        assert churned["population_events_digest"] != quiet["population_events_digest"]
        assert churned["population"]["cohort"]["churn_factor"] != 1.0

    def test_session_burst_policy_generates_followups(self):
        from repro.workload.generator import WorkloadConfig

        row = execute_run(
            "OXII",
            generator="agents",
            offered_load=250.0,
            duration=1.0,
            drain=5.0,
            seed=7,
            workload_config=WorkloadConfig(
                agents={
                    "cohorts": [
                        {
                            "name": "bursty",
                            "policy": "session-burst",
                            "policy_params": {"burst_probability": 0.9, "burst_length": 3},
                        }
                    ]
                }
            ),
        ).as_dict()
        assert row["population"]["bursty"]["bursts"] > 0

    def test_latency_throttle_policy_reduces_rate_under_load(self):
        from repro.workload.generator import WorkloadConfig

        row = execute_run(
            "XOV",
            generator="agents",
            offered_load=400.0,
            duration=1.5,
            drain=6.0,
            seed=7,
            workload_config=WorkloadConfig(
                agents={
                    "cohorts": [
                        {
                            "name": "cautious",
                            "sessions": 12,
                            "policy": "latency-throttle",
                            "policy_params": {"latency_threshold": 0.05, "backoff": 0.5},
                        }
                    ]
                }
            ),
        ).as_dict()
        assert row["population"]["cautious"]["throttle"] < 1.0

    def test_duplicate_submitter_exercises_orderer_dedup(self):
        from repro.workload.generator import WorkloadConfig

        row = execute_run(
            "OXII",
            generator="agents",
            offered_load=250.0,
            duration=1.0,
            drain=5.0,
            seed=7,
            workload_config=WorkloadConfig(
                agents={
                    "cohorts": [
                        {
                            "name": "dupes",
                            "policy": "duplicate-submitter",
                            "policy_params": {"duplicate_probability": 1.0, "delay": 0.01},
                        }
                    ]
                }
            ),
        ).as_dict()
        assert row["population_duplicates"] > 0
        assert row["requests_deduplicated"] == row["population_duplicates"]
        assert row["abort_reasons"]["dedup_drop"] == int(row["population_duplicates"])
        # Deduplicated copies must not inflate the submission count: the
        # collector tracks unique tx_ids only (completions are windowed, so
        # committed + aborted can undershoot but never exceed it).
        assert row["submitted"] == row["population_submitted"]
        assert row["committed"] + row["aborted"] <= row["submitted"]


# -------------------------------------------------------------- sweep backends
class TestSweepDeterminism:
    def test_serial_and_parallel_sweeps_are_bit_identical(self):
        spec = agents_spec()
        serial = SweepEngine(parallel=False).run(spec)
        parallel = SweepEngine(workers=2, parallel=True).run(spec)
        serial_rows = [row.as_dict() for row in serial.rows]
        parallel_rows = [row.as_dict() for row in parallel.rows]
        assert serial_rows == parallel_rows
        digests = {row["scenario"]: row["population_events_digest"] for row in serial_rows}
        assert len(digests) == 2

    def test_rerun_is_bit_identical(self):
        spec = agents_spec()
        one = [row.as_dict() for row in SweepEngine(parallel=False).run(spec).rows]
        two = [row.as_dict() for row in SweepEngine(parallel=False).run(spec).rows]
        assert one == two


# ------------------------------------------------------------------- faults
class TestFaultComposition:
    def scenario_config(self, paradigm="OXII") -> ScenarioConfig:
        return ScenarioConfig(
            paradigm=paradigm,
            generator="agents",
            offered_load=200.0,
            duration=1.0,
            drain=4.0,
            workload={
                "agents": {
                    "cohorts": [
                        {
                            "name": "retriers",
                            "sessions": 12,
                            "policy": "backoff-retry",
                            "policy_params": {"hot_probability": 0.3},
                        }
                    ]
                }
            },
        )

    def test_agents_survive_orderer_crash_and_restart(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.3, action="crash", target="orderer-1"),
                FaultEvent(at=0.8, action="restart", target="orderer-1"),
            )
        )
        outcome = run_scenario(self.scenario_config(), schedule)
        assert outcome.stable
        assert run_all_oracles(outcome) == []
        assert any(peer.committed > 0 for peer in outcome.peers)

    def test_agents_fault_run_is_deterministic(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.3, action="crash", target="orderer-1"),
                FaultEvent(at=0.8, action="restart", target="orderer-1"),
            )
        )
        one = run_scenario(self.scenario_config(), schedule).fingerprint()
        two = run_scenario(self.scenario_config(), schedule).fingerprint()
        assert one == two

    @pytest.mark.parametrize("paradigm", ["OX", "XOV", "OXII"])
    def test_fault_free_agents_scenarios_satisfy_oracles(self, paradigm):
        outcome = run_scenario(self.scenario_config(paradigm))
        assert run_all_oracles(outcome) == []
