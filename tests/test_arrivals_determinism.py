"""Determinism of the arrival machinery under labelled child-seed derivation."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import child_rng, child_seed
from repro.workload.arrivals import constant_rate, poisson_rate


class TestPoissonDeterminism:
    def test_same_seed_reproduces_schedule(self):
        one = poisson_rate(200, 500.0, seed=child_seed(7, "arrivals"))
        two = poisson_rate(200, 500.0, seed=child_seed(7, "arrivals"))
        assert one.times == two.times

    def test_relabelling_decorrelates_streams(self):
        """Different child labels over the same base seed give distinct streams."""
        a = poisson_rate(200, 500.0, seed=child_seed(7, "arrivals"))
        b = poisson_rate(200, 500.0, seed=child_seed(7, "agents/crowd/arrivals"))
        assert a.times != b.times
        # ... and neither matches the raw base seed's stream.
        raw = poisson_rate(200, 500.0, seed=7)
        assert a.times != raw.times

    def test_label_derivation_is_stable_across_processes(self):
        """child_seed is a pure sha256 hash — no interpreter/session salt."""
        assert child_seed(7, "arrivals") == child_seed(7, "arrivals")
        assert child_seed(7, "agents/c/arrivals") != child_seed(7, "agents/c/policy")
        assert child_seed(7, "x") != child_seed(8, "x")

    def test_child_rng_streams_match_child_seed(self):
        rng = child_rng(7, "agents/c/arrivals")
        import random

        reference = random.Random(child_seed(7, "agents/c/arrivals"))
        assert [rng.random() for _ in range(5)] == [reference.random() for _ in range(5)]

    def test_poisson_statistics_sane(self):
        schedule = poisson_rate(5000, 1000.0, seed=child_seed(3, "arrivals"))
        assert len(schedule) == 5000
        assert schedule.offered_rate == pytest.approx(1000.0, rel=0.1)
        assert all(b > a for a, b in zip(schedule.times, schedule.times[1:]))

    def test_constant_rate_spacing(self):
        schedule = constant_rate(5, 10.0)
        assert schedule.times == pytest.approx((0.0, 0.1, 0.2, 0.3, 0.4))


class TestSpecPolicyErrors:
    def test_unknown_policy_in_spec_raises_registry_error(self):
        """A bad policy name in a spec fails with the standard registry message."""
        from repro.experiments import SweepEngine
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict(
            {
                "schema_version": 1,
                "name": "bad-policy",
                "loads": [100.0],
                "duration": 0.5,
                "seeds": [7],
                "scenarios": [
                    {
                        "name": "bad",
                        "paradigm": "OXII",
                        "generator": "agents",
                        "workload": {
                            "agents": {"cohorts": [{"name": "c", "policy": "retry-hard"}]}
                        },
                    }
                ],
            }
        )
        with pytest.raises(ConfigurationError, match=r"unknown agent policy 'retry-hard'"):
            SweepEngine(parallel=False).run(spec)

    def test_registry_error_lists_valid_choices(self):
        from repro.agents import agent_policy_registry

        with pytest.raises(ConfigurationError) as excinfo:
            agent_policy_registry.get("retry-hard")
        message = str(excinfo.value)
        for name in ("steady", "naive-retry", "backoff-retry", "session-burst"):
            assert name in message
