"""Regression tests for the bench CLI argument parser.

The shared flags are accepted both before and after the subcommand.  That
contract is easy to break: ``parents=[common]`` shares action objects
between the main parser and every subcommand parser, so a
``parser.set_defaults`` for a shared dest would mutate the subcommands'
``SUPPRESS`` defaults and make the subparser clobber any flag given
*before* the subcommand (``bench --quick quick`` silently dropped
``--quick``).  Defaults are therefore applied post-parse by
:func:`repro.bench.cli.parse_args`; these tests pin the contract.
"""

from __future__ import annotations

from repro.bench.cli import parse_args


class TestSharedFlagPlacement:
    def test_flags_before_subcommand_survive(self) -> None:
        args = parse_args(["--quick", "--duration", "0.5", "--json", "out.json", "quick"])
        assert args.command == "quick"
        assert args.quick is True
        assert args.duration == 0.5
        assert args.json_path == "out.json"

    def test_flags_after_subcommand_bind(self) -> None:
        args = parse_args(["quick", "--quick", "--backend", "asyncio"])
        assert args.quick is True
        assert args.backend == "asyncio"

    def test_after_subcommand_overrides_before(self) -> None:
        args = parse_args(["--duration", "1.0", "quick", "--duration", "2.0"])
        assert args.duration == 2.0

    def test_unset_flags_get_defaults(self) -> None:
        args = parse_args(["quick"])
        assert args.quick is False
        assert args.duration is None
        assert args.json_path is None
        assert args.workers is None
        assert args.backend == "sim"
        assert args.realtime_speed is None

    def test_smoke_without_subcommand(self) -> None:
        args = parse_args(["--smoke", "--backend", "asyncio"])
        assert args.smoke is True
        assert args.command is None
        assert args.backend == "asyncio"


class TestBackendFlags:
    def test_backend_before_subcommand(self) -> None:
        args = parse_args(["--backend", "asyncio-tcp", "--realtime-speed", "25", "run", "figure5"])
        assert args.backend == "asyncio-tcp"
        assert args.realtime_speed == 25.0
        assert args.spec == "figure5"

    def test_subcommand_locals_unaffected(self) -> None:
        args = parse_args(["--backend", "asyncio", "figure6", "--contention", "0", "0.8"])
        assert args.backend == "asyncio"
        assert args.contention == [0.0, 0.8]
