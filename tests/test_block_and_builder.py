"""Tests for blocks, the hash chain linkage and the block-cut conditions."""

from __future__ import annotations

import pytest

from repro.common.config import BlockCutPolicy
from repro.common.errors import LedgerError
from repro.core.block import Block
from repro.core.block_builder import BlockBuilder, CutReason
from repro.core.dependency_graph import build_dependency_graph
from tests.conftest import make_tx


def _stamped(n, prefix="t"):
    return [make_tx(f"{prefix}{i}", writes=[f"k{i}"], timestamp=i + 1) for i in range(n)]


class TestBlock:
    def test_genesis_block(self):
        genesis = Block.genesis()
        assert genesis.sequence == 0
        assert len(genesis) == 0
        assert genesis.verify_merkle_root()

    def test_create_and_verify_chain_link(self):
        genesis = Block.genesis()
        block = Block.create(sequence=1, transactions=_stamped(3), previous_hash=genesis.digest())
        assert block.verify_links_to(genesis)
        assert block.verify_merkle_root()

    def test_header_count_must_match(self):
        block = Block.create(sequence=1, transactions=_stamped(2), previous_hash="00")
        with pytest.raises(LedgerError):
            Block(header=block.header, transactions=block.transactions[:1])

    def test_applications_and_filtering(self):
        txs = [
            make_tx("a", application="app-0", timestamp=1),
            make_tx("b", application="app-1", timestamp=2),
            make_tx("c", application="app-0", timestamp=3),
        ]
        block = Block.create(sequence=1, transactions=txs, previous_hash="00")
        assert block.applications() == {"app-0", "app-1"}
        assert [t.tx_id for t in block.transactions_for("app-0")] == ["a", "c"]

    def test_dependency_graph_must_cover_block(self):
        txs = _stamped(3)
        graph = build_dependency_graph(txs[:2])
        with pytest.raises(LedgerError):
            Block.create(sequence=1, transactions=txs, previous_hash="00", dependency_graph=graph)

    def test_with_dependency_graph(self):
        txs = _stamped(3)
        block = Block.create(sequence=1, transactions=txs, previous_hash="00")
        graph = build_dependency_graph(txs)
        assert block.with_dependency_graph(graph).dependency_graph is graph

    def test_digest_changes_with_content(self):
        a = Block.create(sequence=1, transactions=_stamped(2), previous_hash="00")
        b = Block.create(sequence=1, transactions=_stamped(3), previous_hash="00")
        assert a.digest() != b.digest()

    def test_canonical_bytes_memoised_and_consistent(self):
        from repro.crypto.hashing import canonical_bytes, content_hash

        block = Block.create(sequence=1, transactions=_stamped(2), previous_hash="00")
        first = block.canonical_bytes()
        assert block.canonical_bytes() is first  # computed once per sealed block
        # The memo must be byte-identical to the generic canonical_tuple()
        # encoding, so message hashes (NEWBLOCK bodies, consensus proposals)
        # agree whichever path encodes the block.
        assert canonical_bytes(block) == first
        # And two equal blocks hash identically through either path.
        same = Block.create(sequence=1, transactions=block.transactions, previous_hash="00")
        assert content_hash(same) == content_hash(block)


class TestBlockBuilderCutConditions:
    def test_cut_on_max_transactions(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=3, max_bytes=10**9, max_delay=10))
        assert builder.add(make_tx("a"), now=0.0) is None
        assert builder.add(make_tx("b"), now=0.1) is None
        pending = builder.add(make_tx("c"), now=0.2)
        assert pending is not None
        assert pending.reason is CutReason.MAX_TRANSACTIONS
        assert len(pending.transactions) == 3
        assert builder.pending_count == 0

    def test_cut_on_max_bytes(self):
        builder = BlockBuilder(
            BlockCutPolicy(max_transactions=1000, max_bytes=512, max_delay=10), tx_size_bytes=256
        )
        assert builder.add(make_tx("a"), now=0.0) is None
        pending = builder.add(make_tx("b"), now=0.1)
        assert pending is not None
        assert pending.reason is CutReason.MAX_BYTES

    def test_cut_on_timeout(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=100, max_bytes=10**9, max_delay=0.5))
        builder.add(make_tx("a"), now=0.0)
        assert not builder.timeout_due(0.3)
        assert builder.timeout_due(0.6)
        pending = builder.cut_on_timeout(0.6)
        assert pending is not None
        assert pending.reason is CutReason.TIMEOUT

    def test_timeout_with_empty_block_is_noop(self):
        builder = BlockBuilder(BlockCutPolicy(max_delay=0.1))
        assert not builder.timeout_due(5.0)
        assert builder.cut_on_timeout(5.0) is None

    def test_force_cut(self):
        builder = BlockBuilder(BlockCutPolicy())
        builder.add(make_tx("a"), now=0.0)
        pending = builder.force_cut(1.0)
        assert pending is not None
        assert pending.reason is CutReason.FORCED
        assert builder.force_cut(2.0) is None

    def test_timestamps_are_strictly_increasing_across_blocks(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=2))
        first = builder.add(make_tx("a"), now=0.0) or builder.add(make_tx("b"), now=0.0)
        second = builder.add(make_tx("c"), now=0.0) or builder.add(make_tx("d"), now=0.0)
        stamps = [tx.timestamp for tx in first.transactions] + [
            tx.timestamp for tx in second.transactions
        ]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)


class TestBlockBuilderSealing:
    def test_seal_chains_blocks(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=2), generate_graphs=False)
        pending1 = builder.add(make_tx("a"), 0.0) or builder.add(make_tx("b"), 0.0)
        block1 = builder.seal(pending1, now=0.1)
        pending2 = builder.add(make_tx("c"), 0.2) or builder.add(make_tx("d"), 0.2)
        block2 = builder.seal(pending2, now=0.3)
        assert block1.sequence == 1
        assert block2.sequence == 2
        assert block2.verify_links_to(block1)

    def test_seal_generates_dependency_graph_when_enabled(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=2), generate_graphs=True)
        pending = builder.add(make_tx("a", writes=["x"]), 0.0) or builder.add(
            make_tx("b", writes=["x"]), 0.0
        )
        block = builder.seal(pending, now=0.1)
        assert block.dependency_graph is not None
        assert block.dependency_graph.edge_count == 1

    def test_cut_attaches_incrementally_grown_graph(self):
        """The orderer grows the graph as the block fills; seal reuses it."""
        builder = BlockBuilder(BlockCutPolicy(max_transactions=3), generate_graphs=True)
        pending = None
        for i in range(3):
            pending = builder.add(make_tx(f"t{i}", reads=["hot"], writes=["hot"]), 0.0) or pending
        assert pending.graph is not None
        assert len(pending.graph) == 3
        block = builder.seal(pending, now=0.1)
        assert block.dependency_graph is pending.graph
        # The incrementally grown graph equals the batch build of the same
        # construction (sparse by default: a 3-writer chain keeps 2 edges, the
        # t0->t2 edge is transitively implied).
        batch = build_dependency_graph(
            pending.transactions, construction=builder.graph_construction
        )
        assert block.dependency_graph.canonical_tuple() == batch.canonical_tuple()
        assert block.dependency_graph.edge_count == 2
        all_pairs = build_dependency_graph(pending.transactions)
        assert all_pairs.edge_count == 3
        assert block.dependency_graph.critical_path_length() == all_pairs.critical_path_length()

    def test_builder_can_keep_all_pairs_construction(self):
        from repro.core.dependency_graph import GraphConstruction

        builder = BlockBuilder(
            BlockCutPolicy(max_transactions=3),
            generate_graphs=True,
            graph_construction=GraphConstruction.ALL_PAIRS,
        )
        pending = None
        for i in range(3):
            pending = builder.add(make_tx(f"t{i}", reads=["hot"], writes=["hot"]), 0.0) or pending
        block = builder.seal(pending, now=0.1)
        assert block.dependency_graph.construction is GraphConstruction.ALL_PAIRS
        assert block.dependency_graph.edge_count == 3

    def test_seal_rebuilds_graph_on_construction_mismatch(self):
        """A pending graph of the wrong construction is rebuilt, not reused."""
        from repro.core.block_builder import PendingBlock
        from repro.core.dependency_graph import GraphConstruction

        builder = BlockBuilder(BlockCutPolicy(max_transactions=10), generate_graphs=True)
        assert builder.graph_construction is GraphConstruction.SPARSE
        txs = tuple(
            make_tx(f"t{i}", reads=["hot"], writes=["hot"], timestamp=i + 1) for i in range(3)
        )
        foreign = build_dependency_graph(txs)  # all-pairs
        pending = PendingBlock(
            transactions=txs, reason=CutReason.FORCED, opened_at=0.0, cut_at=0.0, graph=foreign
        )
        block = builder.seal(pending, now=0.1)
        assert block.dependency_graph is not foreign
        assert block.dependency_graph.construction is GraphConstruction.SPARSE
        assert block.dependency_graph.edge_count == 2

    def test_incremental_graph_does_not_leak_across_blocks(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=1), generate_graphs=True)
        first = builder.add(make_tx("a", writes=["hot"]), 0.0)
        second = builder.add(make_tx("b", reads=["hot"]), 0.1)
        # "b" reads what "a" wrote, but they sit in different blocks: no edge.
        assert first.graph.edge_count == 0
        assert second.graph.edge_count == 0
        assert len(second.graph) == 1

    def test_seal_rebuilds_graph_for_foreign_pending(self):
        from repro.core.block_builder import PendingBlock

        builder = BlockBuilder(BlockCutPolicy(max_transactions=10), generate_graphs=True)
        txs = tuple(make_tx(f"t{i}", writes=["hot"], timestamp=i + 1) for i in range(2))
        pending = PendingBlock(transactions=txs, reason=CutReason.FORCED, opened_at=0.0, cut_at=0.0)
        block = builder.seal(pending, now=0.1)
        assert block.dependency_graph is not None
        assert block.dependency_graph.edge_count == 1

    def test_seal_without_graphs(self):
        builder = BlockBuilder(BlockCutPolicy(max_transactions=1), generate_graphs=False)
        pending = builder.add(make_tx("a"), 0.0)
        assert builder.seal(pending, 0.0).dependency_graph is None

    def test_identical_inputs_produce_identical_blocks_on_two_builders(self):
        """Determinism across orderers: same order in, same sealed blocks out."""
        policy = BlockCutPolicy(max_transactions=3)
        builders = [BlockBuilder(policy), BlockBuilder(policy)]
        blocks = []
        for builder in builders:
            pending = None
            for i in range(3):
                pending = builder.add(make_tx(f"t{i}", writes=["hot"]), now=0.0) or pending
            blocks.append(builder.seal(pending, now=1.0))
        assert blocks[0].digest() == blocks[1].digest()
