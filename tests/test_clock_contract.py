"""Regression tests for the absolute-time scheduling contract.

``Environment.call_at`` used to clamp past target times silently while
``timeout_at`` raised — two entry points, two contracts.  Both now raise
:class:`SimulationError` on a past ``when`` unless the caller opts in with
``allow_past=True`` (which clamps to the current time).  The fault injector
is the one legitimate ``allow_past`` user: a schedule may name an instant
the clock has already passed.
"""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.simulation import Environment


def advance_to(env: Environment, when: float) -> None:
    """Drive the clock forward to ``when`` via a throwaway timeout."""
    env.timeout(when - env.now)
    env.run()
    assert env.now == when


class TestTimeoutAtContract:
    def test_future_time_fires_at_target(self) -> None:
        env = Environment()
        event = env.timeout_at(2.5, value="late")
        env.run()
        assert env.now == 2.5
        assert event.value == "late"

    def test_exactly_now_is_allowed(self) -> None:
        env = Environment()
        advance_to(env, 1.0)
        event = env.timeout_at(1.0, value="on-time")
        env.run()
        assert env.now == 1.0
        assert event.value == "on-time"

    def test_past_time_raises_by_default(self) -> None:
        env = Environment()
        advance_to(env, 3.0)
        with pytest.raises(SimulationError, match="past"):
            env.timeout_at(1.0)

    def test_past_time_clamps_with_allow_past(self) -> None:
        env = Environment()
        advance_to(env, 3.0)
        event = env.timeout_at(1.0, value="clamped", allow_past=True)
        env.run()
        # Clamped to the time of scheduling, not rewound.
        assert env.now == 3.0
        assert event.value == "clamped"

    def test_allow_past_preserves_fifo_with_queued_work(self) -> None:
        """A clamped event fires after entries already queued at ``now``."""
        env = Environment()
        advance_to(env, 2.0)
        order = []
        env.schedule_callback(0.0, lambda: order.append("queued-first"))
        event = env.timeout_at(0.5, allow_past=True)
        event.add_callback(lambda _e: order.append("clamped-second"))
        env.run()
        assert order == ["queued-first", "clamped-second"]


class TestCallAtContract:
    def test_future_callback_runs_at_target(self) -> None:
        env = Environment()
        fired = []
        env.call_at(1.5, lambda: fired.append(env.now))
        env.run()
        assert fired == [1.5]

    def test_past_time_raises_by_default(self) -> None:
        env = Environment()
        advance_to(env, 2.0)
        with pytest.raises(SimulationError, match="past"):
            env.call_at(0.5, lambda: None)

    def test_past_time_runs_now_with_allow_past(self) -> None:
        env = Environment()
        advance_to(env, 2.0)
        fired = []
        env.call_at(0.5, lambda: fired.append(env.now), allow_past=True)
        env.run()
        assert fired == [2.0]

    def test_contract_matches_timeout_at(self) -> None:
        """Both entry points now agree: raise on past, clamp on opt-in."""
        env = Environment()
        advance_to(env, 1.0)
        with pytest.raises(SimulationError):
            env.call_at(0.0, lambda: None)
        with pytest.raises(SimulationError):
            env.timeout_at(0.0)
        # Both accept the same opt-out.
        env.call_at(0.0, lambda: None, allow_past=True)
        env.timeout_at(0.0, allow_past=True)
        env.run()


class TestFaultInjectorUsesAllowPast:
    def test_install_after_clock_advanced_applies_immediately(self) -> None:
        """An event at an instant the clock already passed still applies.

        The injector opts into ``allow_past``: a schedule may name t=0 while
        being installed into a deployment whose clock has already run (e.g.
        after a warm-up phase).  The action must fire immediately, not raise.
        """
        from repro.common.config import SystemConfig
        from repro.paradigms.run import make_deployment
        from repro.testing.schedule import FaultEvent, FaultInjector, FaultSchedule

        deployment = make_deployment("OX", SystemConfig())
        handles = deployment.build(initial_state={})
        advance_to(handles.env, 1.0)

        schedule = FaultSchedule(events=(FaultEvent(at=0.0, action="crash", target="peer:0"),))
        injector = FaultInjector(schedule)
        injector.install(handles, deployment)
        handles.env.run()
        assert [action for _at, action in injector.applied] == ["crash"]
        crashed_peer = handles.peers[0].node_id
        assert handles.network.faults.is_crashed(crashed_peer)

    def test_scenario_with_t0_crash_runs_to_completion(self) -> None:
        from repro.testing import run_scenario
        from repro.testing.harness import ScenarioConfig
        from repro.testing.schedule import FaultEvent, FaultSchedule

        schedule = FaultSchedule(
            events=(
                FaultEvent(at=0.0, action="crash", target="peer:1"),
                FaultEvent(at=0.5, action="restart", target="peer:1"),
            )
        )
        outcome = run_scenario(
            ScenarioConfig(paradigm="OX", duration=0.4, offered_load=25.0, seed=11),
            schedule,
        )
        assert outcome.stable
        applied = [action for _at, action in outcome.injector.applied]
        assert applied == ["crash", "restart"]
