"""Tests for the configuration objects and cost model."""

from __future__ import annotations

import pytest

from repro.common.config import (
    BlockCutPolicy,
    CostModel,
    LatencyConfig,
    SystemConfig,
    default_tau,
)
from repro.common.errors import ConfigurationError


class TestCostModel:
    def test_dependency_graph_cost_is_quadratic(self):
        cost = CostModel()
        assert cost.dependency_graph_cost(0) == 0.0
        assert cost.dependency_graph_cost(1) == 0.0
        small = cost.dependency_graph_cost(100)
        large = cost.dependency_graph_cost(200)
        assert large / small == pytest.approx(200 * 199 / (100 * 99), rel=1e-6)

    def test_negative_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().dependency_graph_cost(-1)

    def test_scaled(self):
        base = CostModel()
        doubled = base.scaled(2.0)
        assert doubled.tx_execution == pytest.approx(2 * base.tx_execution)
        assert doubled.signature == pytest.approx(2 * base.signature)
        with pytest.raises(ConfigurationError):
            base.scaled(0.0)


class TestLatencyConfig:
    def test_transfer_delay(self):
        latency = LatencyConfig(bandwidth_bytes_per_sec=1000.0)
        assert latency.transfer_delay(500) == pytest.approx(0.5)
        assert latency.transfer_delay(0) == 0.0


class TestBlockCutPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockCutPolicy(max_transactions=0)
        with pytest.raises(ConfigurationError):
            BlockCutPolicy(max_delay=0.0)


class TestSystemConfig:
    def test_defaults_match_paper_testbed(self):
        config = SystemConfig()
        assert config.num_orderers == 3
        assert config.num_applications == 3
        assert config.num_executors == 3
        assert config.cores_per_node == 8
        assert config.block_cut.max_transactions == 200

    def test_with_block_size(self):
        config = SystemConfig().with_block_size(100)
        assert config.block_cut.max_transactions == 100
        assert SystemConfig().block_cut.max_transactions == 200  # original untouched

    def test_with_far_groups_validation(self):
        config = SystemConfig().with_far_groups(["clients"])
        assert config.far_groups == ("clients",)
        with pytest.raises(ConfigurationError):
            SystemConfig(far_groups=["mars"])

    def test_consensus_quorum_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(consensus_protocol="pbft", max_faulty_orderers=1, num_orderers=3)
        config = SystemConfig(consensus_protocol="pbft", max_faulty_orderers=1, num_orderers=4)
        assert config.max_faulty_orderers == 1
        with pytest.raises(ConfigurationError):
            SystemConfig(consensus_protocol="tendermint")

    def test_tau_defaults_and_overrides(self):
        config = SystemConfig(tau={"app-0": 2})
        assert config.tau_for("app-0") == 2
        assert config.tau_for("app-1") == 1
        assert default_tau(["a", "b"], 3) == {"a": 3, "b": 3}
        with pytest.raises(ConfigurationError):
            default_tau(["a"], 0)

    def test_application_names(self):
        assert SystemConfig(num_applications=2).application_names() == ["app-0", "app-1"]


class TestWithOverrides:
    def test_flat_and_nested_overrides(self):
        config = SystemConfig().with_overrides(
            num_orderers=5, block_cut={"max_transactions": 100, "max_delay": 0.1}
        )
        assert config.num_orderers == 5
        assert config.block_cut.max_transactions == 100
        assert config.block_cut.max_delay == 0.1
        assert config.block_cut.max_bytes == SystemConfig().block_cut.max_bytes

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SystemConfig field"):
            SystemConfig().with_overrides(blok_size=100)
        with pytest.raises(ConfigurationError, match="unknown BlockCutPolicy field"):
            SystemConfig().with_overrides(block_cut={"max_txs": 100})

    def test_overrides_are_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().with_overrides(num_orderers=0)
        with pytest.raises(ConfigurationError):
            SystemConfig().with_overrides(far_groups=["mars"])

    def test_one_off_helpers_route_through_overrides(self):
        assert SystemConfig().with_block_size(100) == SystemConfig().with_overrides(
            block_cut={"max_transactions": 100}
        )
        assert SystemConfig().with_consensus("raft") == SystemConfig().with_overrides(
            consensus_protocol="raft"
        )
        assert SystemConfig().with_far_groups(["clients"]).far_groups == ("clients",)

    def test_list_coerced_to_tuple_field(self):
        config = SystemConfig().with_overrides(far_groups=["clients", "orderers"])
        assert config.far_groups == ("clients", "orderers")

    def test_workload_config_overrides(self):
        from repro.workload.generator import ConflictScope, WorkloadConfig

        workload = WorkloadConfig().with_overrides(
            contention=0.8, conflict_scope="cross_application", hot_accounts=2
        )
        assert workload.contention == 0.8
        assert workload.conflict_scope is ConflictScope.CROSS_APPLICATION
        assert workload.hot_accounts == 2
        with pytest.raises(ConfigurationError, match="conflict_scope must be one of"):
            WorkloadConfig().with_overrides(conflict_scope="sideways")
        with pytest.raises(ConfigurationError, match="unknown WorkloadConfig field"):
            WorkloadConfig().with_overrides(block_size=10)

    def test_benchmark_settings_overrides(self):
        from repro.bench.runner import BenchmarkSettings

        settings = BenchmarkSettings().with_overrides(duration=5.0, quick=True)
        assert settings.duration == 5.0
        assert settings.quick is True
        assert BenchmarkSettings().with_duration(5.0).duration == 5.0
        with pytest.raises(ConfigurationError, match="unknown BenchmarkSettings field"):
            BenchmarkSettings().with_overrides(durration=5.0)
